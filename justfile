# Developer task runner. `just ci` mirrors .github/workflows/ci.yml.

# Build, test, lint — the full gate.
ci: build test clippy

build:
    cargo build --release

test:
    cargo test -q --workspace

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Quick seeded campaign: 5 schedulers x 200 seeds over phased racing.
smoke-campaign:
    cargo run --release -- campaign --procs 3 --runs 200 \
        --sched rr,random,quantum:2,obstruction:2,crash:1 --json

# Fault-injection certificate: the exhaustive single-crash sweep plus
# the §3 non-blocking certification (mirrors CI's smoke-faults job).
smoke-faults:
    cargo run --release -- campaign --faults sweep --procs 3 --runs 4 \
        --budget 4000 --sched rr --json
    cargo run --release -- aug --f 3 --m 2 --certify

# Shrink a known violation into a replay bundle, replay it at several
# thread counts, and prove a tampered bundle is rejected (mirrors CI's
# smoke-replay job).
smoke-replay:
    cargo run --release -- campaign --protocol racing --procs 3 --m 2 \
        --sched random --runs 100 --bundle cex.bundle.json
    cargo run --release -- replay cex.bundle.json
    cargo run --release -- replay cex.bundle.json --threads 8
    sed 's/"fingerprint": [0-9]*/"fingerprint": 1/' cex.bundle.json \
        > tampered.bundle.json
    ! cargo run --release -- replay tampered.bundle.json

# Chaos determinism gate for the multi-process campaign service: a
# service run with a worker SIGKILLed mid-unit and a torn journal
# write injected must merge to a report byte-identical to the
# single-process no-fault reference, every corpus bundle must replay,
# and a second run over the same state dir must converge from the
# journal alone (mirrors CI's smoke-service job).
smoke-service:
    rm -rf svc-state
    cargo run --release -- campaign --protocol racing --procs 3 --m 2 \
        --sched rr,random --runs 40 --threads 1 --json-out svc-ref.json
    cargo run --release -- campaign-service --protocol racing --procs 3 --m 2 \
        --sched rr,random --runs 40 --workers 2 --unit-runs 8 \
        --state svc-state --chaos kill@unit:1,torn@result:3 \
        --json-out svc-merged.json
    cmp svc-ref.json svc-merged.json
    for b in svc-state/corpus/*.bundle.json; do \
        cargo run --release -- replay "$b" || exit 1; done
    cargo run --release -- campaign-service --protocol racing --procs 3 --m 2 \
        --sched rr,random --runs 40 --state svc-state --json-out svc-rerun.json
    cmp svc-ref.json svc-rerun.json

# TCP transport determinism gate: workers dial the coordinator over a
# real socket while the chaos proxy drops, delays, duplicates,
# corrupts and partitions frames and one worker is SIGKILLed — the
# merged report must stay byte-identical to the single-process
# reference, and a --faults matrix must shard across TCP workers with
# the same guarantee (mirrors CI's smoke-service-tcp job).
smoke-service-tcp:
    rm -rf svc-tcp-state svc-tcp-faults-state
    cargo run --release -- campaign --protocol racing --procs 3 --m 2 \
        --sched rr,random --runs 40 --threads 1 --json-out svc-tcp-ref.json
    cargo run --release -- campaign-service --protocol racing --procs 3 --m 2 \
        --sched rr,random --runs 40 --listen 127.0.0.1:0 --workers 2 \
        --unit-runs 8 --lease-timeout 2 --max-lease-attempts 10 \
        --state svc-tcp-state --summary \
        --chaos kill@unit:2,drop@4,delay@6,dup@9,corrupt@11,partition@14-16 \
        --json-out svc-tcp-merged.json
    cmp svc-tcp-ref.json svc-tcp-merged.json
    cargo run --release -- campaign --protocol racing --procs 3 --m 2 \
        --sched rr --runs 4 --faults sweep:2 --threads 1 \
        --json-out svc-tcp-faults-ref.json
    cargo run --release -- campaign-service --protocol racing --procs 3 --m 2 \
        --sched rr --runs 4 --faults sweep:2 --listen 127.0.0.1:0 \
        --workers 2 --unit-runs 2 --state svc-tcp-faults-state --summary \
        --json-out svc-tcp-faults-merged.json
    cmp svc-tcp-faults-ref.json svc-tcp-faults-merged.json

# Pre-flight analyzer smoke: every shipped protocol must analyze clean
# (deny-level), the ill-formed fixture must be rejected with its stable
# lint codes, the static-interference pass must warn (and gate under
# --deny) on the serializable fixture, and the analyzer module must be
# clippy-clean (mirrors CI's analyze-smoke job).
analyze-smoke:
    cargo run --release -- analyze --protocol racing
    cargo run --release -- analyze --protocol contrarian
    cargo run --release -- analyze --protocol ladder
    cargo run --release -- analyze --protocol serializable --matrix
    ! cargo run --release -- analyze --protocol serializable --deny RS-W010
    cargo run --release -- analyze --explain RS-W008
    ! cargo run --release -- analyze --protocol illformed
    ! cargo run --release -- campaign --protocol illformed --runs 1
    cargo clippy -p rsim-smr --all-targets -- -D warnings

# Miri smoke over the pointer-heavy suites (trace arena, fingerprint
# cache, journaled work queue). Needs a nightly toolchain with the
# miri component (`rustup +nightly component add miri`); isolation is
# off because the queue tests touch the real filesystem. Non-blocking
# in CI — run locally before touching unsafe or aliasing-sensitive
# code.
miri-smoke:
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -p rsim-smr --lib trace::
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -p rsim-smr --lib fingerprint::
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -p rsim-smr --lib service::queue::

# Generated-protocol mutation-kill fuzzing: every base must pass
# pre-flight, every predicted-fatal mutant must be killed + shrunk +
# bundled into fuzz-corpus/, analyzer-reject mutants must die at
# pre-flight, and one stored bundle must replay bit-for-bit (mirrors
# CI's fuzz-smoke job). Exit is nonzero if any prediction fails.
fuzz-smoke:
    cargo run --release -- fuzz --seeds 0..16 --mutants \
        --corpus fuzz-corpus --json-out FUZZ_smoke.json
    cargo run --release -- replay fuzz-corpus/gen-0-shrink-m.bundle.json --threads 4

# Per-experiment Criterion benches (CRITERION_SAMPLES trims sample count).
bench:
    cargo bench -p rsim-bench

# Quick hot-path benchmark: one sample per arm, machine-readable
# summary (with baked-in pre-optimisation baselines and speedups) to
# BENCH_e14.json at the repo root (mirrors CI's bench-smoke job).
bench-smoke: bench-e16
    CRITERION_SAMPLES=1 BENCH_E14_OUT={{justfile_directory()}}/BENCH_e14.json \
        cargo bench -p rsim-bench --bench e14_hotpath

# Quick DPOR benchmark: reduction factor + on/off wall-clock over the
# phased-racing family, with report-equality asserts baked in. Writes
# BENCH_e16.json at the repo root (mirrors CI's bench-smoke job).
bench-e16:
    CRITERION_SAMPLES=1 BENCH_E16_OUT={{justfile_directory()}}/BENCH_e16.json \
        cargo bench -p rsim-bench --bench e16_dpor

# Regenerate the numbers in EXPERIMENTS.md.
report:
    cargo run --release --example experiments_report
