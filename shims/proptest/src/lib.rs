//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! The build container has no crates.io access, so the workspace
//! vendors a miniature property-testing harness with the same surface
//! syntax as upstream proptest:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * strategies: integer ranges (`0usize..7`, `1..=9`), tuples of
//!   strategies, [`collection::vec`], [`collection::btree_set`],
//!   [`strategy::Just`], and [`Strategy::prop_map`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and seed, not a minimised input), and case generation is
//! deterministic per test name — repeated runs see the same inputs
//! unless `PROPTEST_CASES` changes the count. For a reproduction
//! repository whose properties are expected to *hold*, deterministic
//! coverage matters more than minimisation.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies over containers.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `size` and
    /// elements drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy (upstream `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with *target* size drawn from
    /// `size`; like upstream, collisions may make the set smaller.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` strategy (upstream `proptest::collection::btree_set`).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.below(self.size.start, self.size.end);
            let mut set = BTreeSet::new();
            // Bounded retries so sparse domains cannot loop forever.
            for _ in 0..target.saturating_mul(8).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            if set.is_empty() && self.size.start > 0 {
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Everything test files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The entry-point macro: a block of `#[test] fn name(arg in strategy,
/// ...) { body }` items, optionally preceded by
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut failures: Option<String> = None;
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name), case,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    // Rendered before the body, which may consume the
                    // inputs by value.
                    let inputs_rendered: ::std::string::String =
                        [$(format!("{} = {:?}", stringify!($arg), &$arg)),*]
                            .join(", ");
                    let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    match run() {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            failures = Some(format!(
                                "property `{}` failed at case {case}/{cases}: {msg}\n  inputs: {inputs_rendered}",
                                stringify!($name),
                            ));
                            break;
                        }
                    }
                }
                if let Some(msg) = failures {
                    panic!("{msg}");
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)` — fail the
/// current case (without panicking across generator state).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// `prop_assume!(cond)` — silently discard the current case when the
/// precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    stringify!($cond).to_string(),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(format!($($fmt)+)),
            );
        }
    };
}
