//! The miniature test runner: per-case deterministic RNG and config.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition failed — the case is discarded.
    Reject(String),
    /// `prop_assert!` failed — the property is falsified.
    Fail(String),
}

/// Runner configuration (upstream `ProptestConfig`). Only `cases` is
/// supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override (used by CI smoke runs).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Deterministic per-case RNG: seeded from the property name and case
/// index so each property sees a stable, independent input stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// The RNG for case `case` of property `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))),
        }
    }

    /// Uniform draw in `[0, span)`; `span` must be `1..=2^64`.
    pub fn draw(&mut self, span: u128) -> u128 {
        assert!(span >= 1, "empty draw span");
        if span >= 1 << 64 {
            return u128::from(self.rng.next_u64());
        }
        u128::from(self.rng.gen_range(0..span as u64))
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_case_same_stream() {
        let mut a = TestRng::for_case("p", 3);
        let mut b = TestRng::for_case("p", 3);
        for _ in 0..64 {
            assert_eq!(a.draw(1000), b.draw(1000));
        }
    }

    #[test]
    fn cases_get_distinct_streams() {
        let mut a = TestRng::for_case("p", 0);
        let mut b = TestRng::for_case("p", 1);
        let same = (0..32).filter(|_| a.draw(1 << 40) == b.draw(1 << 40)).count();
        assert!(same < 4);
    }

    #[test]
    fn with_cases_sets_count() {
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
    }
}
