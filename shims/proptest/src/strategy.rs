//! Strategies: composable recipes for generating test inputs.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking; a
/// strategy is just a deterministic function of the [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (upstream `prop_filter`);
    /// panics if the predicate rejects too often.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter created by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates in a row", self.whence);
    }
}

/// Always produces a clone of the given value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.draw(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.draw(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let a = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-4i64..=4).generate(&mut rng);
            assert!((-4..=4).contains(&b));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = (0i64..10, 1u32..5).prop_map(|(n, e)| n * e as i64);
        let mut rng = TestRng::for_case("compose", 1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((0..40).contains(&v));
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = TestRng::for_case("just", 0);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = crate::collection::vec(0usize..100, 1..10);
        let a = strat.generate(&mut TestRng::for_case("det", 7));
        let b = strat.generate(&mut TestRng::for_case("det", 7));
        let c = strat.generate(&mut TestRng::for_case("det", 8));
        assert_eq!(a, b);
        // Different cases overwhelmingly differ.
        let _ = c;
    }
}
