//! Offline shim for the subset of `criterion` 0.5 used by the bench
//! crate: `Criterion`, benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Each benchmark is timed as a plain wall-clock mean over
//! `sample_size` iterations (after one warm-up call) and printed as a
//! single line. There are no statistics, outlier analysis, plots, or
//! CLI filters. The `CRITERION_SAMPLES` environment variable overrides
//! the per-benchmark iteration count (CI smoke runs set it to 1).

pub use std::hint::black_box;
use std::fmt::Display;
use std::time::Instant;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: usize,
    total_ns: &'a mut u128,
    iters: &'a mut u64,
}

impl Bencher<'_> {
    /// Times `sample` iterations of `routine` (plus one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        *self.total_ns += start.elapsed().as_nanos();
        *self.iters += self.samples as u64;
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn report(path: &str, total_ns: u128, iters: u64) {
    if iters == 0 {
        println!("{path:<56} (not measured)");
        return;
    }
    let mean = total_ns as f64 / iters as f64;
    let (value, unit) = if mean >= 1e9 {
        (mean / 1e9, "s ")
    } else if mean >= 1e6 {
        (mean / 1e6, "ms")
    } else if mean >= 1e3 {
        (mean / 1e3, "µs")
    } else {
        (mean, "ns")
    };
    println!("{path:<56} {value:>10.3} {unit}/iter  ({iters} iters)");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples(n);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (mut total_ns, mut iters) = (0u128, 0u64);
        routine(&mut Bencher {
            samples: self.samples,
            total_ns: &mut total_ns,
            iters: &mut iters,
        });
        report(&format!("{}/{}", self.name, id.id), total_ns, iters);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let (mut total_ns, mut iters) = (0u128, 0u64);
        routine(
            &mut Bencher {
                samples: self.samples,
                total_ns: &mut total_ns,
                iters: &mut iters,
            },
            input,
        );
        report(&format!("{}/{}", self.name, id.id), total_ns, iters);
        self
    }

    /// Ends the group (a no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: env_samples(10),
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (mut total_ns, mut iters) = (0u128, 0u64);
        let samples = env_samples(10);
        routine(&mut Bencher {
            samples,
            total_ns: &mut total_ns,
            iters: &mut iters,
        });
        report(name, total_ns, iters);
        self
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iterations() {
        let (mut total_ns, mut iters) = (0u128, 0u64);
        let mut b = Bencher { samples: 5, total_ns: &mut total_ns, iters: &mut iters };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(iters, 5);
        assert_eq!(count, 6); // warm-up + samples
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::from_parameter(1), &3usize, |b, &x| {
            b.iter(|| ran += x)
        });
        group.finish();
        assert!(ran > 0);
    }
}
