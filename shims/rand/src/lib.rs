//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a tiny, self-contained replacement: [`rngs::StdRng`] is an
//! xoshiro256++ generator seeded through SplitMix64 (the standard
//! seeding recipe), and [`Rng`] provides `gen_range` over integer
//! ranges plus `gen_bool`. Runs are deterministic per seed, which is
//! all the repository relies on — schedulers, sweeps, and campaigns
//! only need reproducibility, not any particular stream.
//!
//! The stream differs from upstream `rand`'s `StdRng` (ChaCha12), so
//! seed-indexed *outcomes* differ from a build against crates.io; every
//! test in the repo treats seeds as opaque reproducibility handles.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

mod sealed {
    /// SplitMix64: expands a 64-bit seed into a well-mixed stream; used
    /// only to initialise the xoshiro state.
    pub fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly (upstream's
/// `SampleUniform` analogue). The `i128` round-trip covers every
/// primitive integer type up to 64 bits.
pub trait SampleUniform: Copy {
    /// Widens to `i128` for span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows back from `i128` (always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[allow(clippy::cast_possible_truncation)]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be drawn from uniformly by [`Rng::gen_range`].
/// Mirrors upstream's `SampleRange<T>` shape — a single generic impl —
/// so the element type is inferred from the call site
/// (`rng.gen_range(0..2)` is `usize` when the result is used as one).
pub trait SampleRange<T> {
    /// Draws a uniform sample using `next` as the word source.
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        let draw = widening_draw((hi - lo) as u128, next);
        T::from_i128(lo + draw as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        let draw = widening_draw((hi - lo) as u128 + 1, next);
        T::from_i128(lo + draw as i128)
    }
}

/// Uniform draw in `[0, span)` by rejection sampling 64-bit words
/// (span 0 means the full 2^64 range).
fn widening_draw(span: u128, next: &mut dyn FnMut() -> u64) -> u128 {
    debug_assert!(span > 0 && span <= 1 << 64);
    if span == 1 << 64 {
        return next() as u128;
    }
    let span64 = span as u64;
    // Largest multiple of span that fits in u64, for unbiased rejection.
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let word = next();
        if word <= zone {
            return (word % span64) as u128;
        }
    }
}

/// The user-facing generator trait: the subset of `rand::Rng` the
/// workspace uses.
pub trait Rng {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 bits of the word give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{sealed::splitmix64, Rng, SeedableRng};

    /// xoshiro256++ generator — the shim's stand-in for `rand`'s
    /// `StdRng`. Fast, 256-bit state, deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; SplitMix64
            // cannot produce four zero words from any seed, but guard
            // anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..7);
            assert!(x < 7);
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(6);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
