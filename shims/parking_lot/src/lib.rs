//! Offline shim for the subset of `parking_lot` used by this
//! workspace: `Mutex`/`RwLock` with non-poisoning `lock()`/`read()`/
//! `write()` signatures, backed by `std::sync`. Poison from a panicked
//! holder is ignored (parking_lot has no poisoning), matching the
//! upstream semantics closely enough for the snapshot thread mode.

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
