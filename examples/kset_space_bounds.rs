//! The Corollary 33 bound table: lower vs upper bounds on the number
//! of registers for x-obstruction-free k-set agreement, with the
//! simulation-feasibility mechanism checked at every grid point.
//!
//! Run with `cargo run --example kset_space_bounds`.

use revisionist_simulations::core::bounds::{
    b_bound, kset_space_lower_bound, kset_space_upper_bound, simulation_feasible,
    simulation_step_bound,
};

fn main() {
    println!("Corollary 33: x-obstruction-free k-set agreement among n processes");
    println!("needs at least ⌊(n−x)/(k+1−x)⌋ + 1 registers (upper bound: n−k+x).\n");
    println!("{:>4} {:>4} {:>4} | {:>6} {:>6} {:>6} | {:<9}", "n", "k", "x", "lower", "upper", "gap", "tight?");
    println!("{}", "-".repeat(52));
    for n in [4usize, 8, 16, 32] {
        for k in [1usize, 2, n / 2, n - 1] {
            if k == 0 || k >= n {
                continue;
            }
            for x in [1usize, k] {
                if x > k {
                    continue;
                }
                let lo = kset_space_lower_bound(n, k, x);
                let hi = kset_space_upper_bound(n, k, x);
                println!(
                    "{:>4} {:>4} {:>4} | {:>6} {:>6} {:>6} | {}",
                    n,
                    k,
                    x,
                    lo,
                    hi,
                    hi - lo,
                    if lo == hi { "tight" } else { "" }
                );
            }
        }
        println!();
    }

    println!("Mechanism check: f = k+1 simulators (d = x direct) can partition the");
    println!("n simulated processes exactly when m is below the lower bound:\n");
    let (n, k, x) = (16, 3, 2);
    let f = k + 1;
    let bound = kset_space_lower_bound(n, k, x);
    println!("n = {n}, k = {k}, x = {x} (f = {f}, bound = {bound}):");
    for m in bound.saturating_sub(3)..=bound + 2 {
        println!(
            "  m = {m:>2}: partition {}  ({})",
            if simulation_feasible(n, m, f, x) { "FEASIBLE  " } else { "infeasible" },
            if m < bound { "m < bound: the reduction applies" } else { "m ≥ bound: not enough processes" }
        );
    }

    println!("\nBlock-Update budgets of the simulation (Lemmas 29–31):");
    println!("{:>3} {:>3} | {:>12} {:>16}", "m", "f", "b(f)", "step bound");
    for m in 2..=4 {
        for f in 2..=4 {
            println!(
                "{:>3} {:>3} | {:>12} {:>16}",
                m,
                f,
                b_bound(m, f),
                simulation_step_bound(m, f)
            );
        }
    }
}
