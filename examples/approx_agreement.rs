//! Corollary 34: ε-approximate agreement — upper-bound step complexity
//! vs the Hoest–Shavit lower bound, and the space-bound crossover.
//!
//! Sweeps ε = 2^{-e}: measures the 2-process wait-free protocol's solo
//! step complexity (Θ(log₂ 1/ε)), prints the ½·log₃(1/ε) step lower
//! bound it must exceed, and evaluates the paper's space lower bound
//! `min{⌊n/2⌋+1, √(log₂ log₃(1/ε) − 2)}` showing where the partition
//! term and the step term cross over.
//!
//! Run with `cargo run --example approx_agreement`.

use revisionist_simulations::core::bounds::{
    approx_space_lower_bound, approx_step_lower_bound,
};
use revisionist_simulations::protocols::approx::{approx_system, rounds_for_epsilon};
use revisionist_simulations::smr::process::ProcessId;
use revisionist_simulations::smr::sched::Random;
use revisionist_simulations::smr::value::Dyadic;
use revisionist_simulations::tasks::agreement::ApproximateAgreement;
use revisionist_simulations::tasks::task::ColorlessTask;
use revisionist_simulations::smr::value::Value;

fn main() {
    println!("ε-approximate agreement, inputs {{0, 1}}, two processes.\n");
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>12}",
        "e", "ε=2^-e", "solo steps", "L = ½log₃(1/ε)", "steps ≥ L?"
    );
    println!("{}", "-".repeat(58));
    for e in [2u32, 4, 8, 12, 16, 20] {
        let rounds = rounds_for_epsilon(e);
        let mut sys = approx_system(&[Dyadic::zero(), Dyadic::one()], rounds);
        sys.run_solo(ProcessId(0), 100_000).unwrap();
        let steps = sys.trace().len();
        let l = approx_step_lower_bound(e);
        println!(
            "{:>6} {:>8} {:>12} {:>14.2} {:>12}",
            e,
            format!("2^-{e}"),
            steps,
            l,
            if steps as f64 >= l { "yes" } else { "NO!" }
        );
    }

    println!("\nCorrectness under contention (400 random schedules each):");
    for e in [4u32, 8] {
        let task = ApproximateAgreement::new(Dyadic::two_to_minus(e));
        let inputs = [Dyadic::zero(), Dyadic::one()];
        let input_vals: Vec<Value> =
            inputs.iter().map(|&d| Value::Dyadic(d)).collect();
        let mut violations = 0;
        for seed in 0..400 {
            let mut sys = approx_system(&inputs, rounds_for_epsilon(e));
            sys.run(&mut Random::seeded(seed), 100_000).unwrap();
            let outs: Vec<Value> = sys.outputs().into_iter().flatten().collect();
            if task.validate(&input_vals, &outs).is_err() {
                violations += 1;
            }
        }
        println!("  ε = 2^-{e}: {violations} violations / 400 runs");
    }

    println!("\nCorollary 34 space bound: min{{⌊n/2⌋+1, √(log₂ log₃(1/ε) − 2)}}");
    println!("{:>6} | bound at e = 8, 64, 4096, 2^20", "n");
    for n in [4usize, 16, 64, 256] {
        let row: Vec<String> = [8u32, 64, 4096, 1 << 20]
            .iter()
            .map(|&e| format!("{:6.2}", approx_space_lower_bound(n, e)))
            .collect();
        println!("{:>6} | {}", n, row.join(" "));
    }
    println!("\nFor small ε the partition term ⌊n/2⌋+1 dominates: Ω(n) registers.");
}
