//! The protocol complex, drawn: the terminal-configuration adjacency
//! graph of the 2-process approximate-agreement protocol is the
//! subdivided path of combinatorial topology. This example prints it.
//!
//! Run with `cargo run --release --example protocol_complex`.

use revisionist_simulations::protocols::approx::approx_system;
use revisionist_simulations::smr::explore::Limits;
use revisionist_simulations::smr::value::{Dyadic, Value};
use revisionist_simulations::tasks::chain::terminal_adjacency;
use revisionist_simulations::tasks::valence::{analyze, ValenceLimits};
use revisionist_simulations::protocols::racing::racing_system;

fn main() {
    println!("== The ε-agreement protocol complex is a subdivided path ==\n");
    for rounds in 1..=3u32 {
        let sys = approx_system(&[Dyadic::zero(), Dyadic::one()], rounds);
        let report = terminal_adjacency(
            &sys,
            Limits { max_depth: 40, max_configs: 3_000_000 },
        )
        .unwrap();
        println!(
            "rounds = {rounds} (ε = 2^-{rounds}): {} nodes, {} edges, {} component(s)",
            report.nodes.len(),
            report.edges.len(),
            report.components
        );
        // Order nodes along the path by p0's output then p1's output.
        let mut ordered: Vec<&_> = report.nodes.iter().collect();
        ordered.sort_by_key(|n| (n.outputs[0].clone(), n.outputs[1].clone()));
        let cells: Vec<String> = ordered
            .iter()
            .map(|n| {
                let o: Vec<String> =
                    n.outputs.iter().map(fmt_value).collect();
                format!("({})", o.join(","))
            })
            .collect();
        println!("  path: {}\n", cells.join(" — "));
    }

    println!("== Valence structure of the same systems ==\n");
    for rounds in 1..=2u32 {
        let sys = approx_system(&[Dyadic::zero(), Dyadic::one()], rounds);
        let v = analyze(
            &sys,
            ValenceLimits { max_configs: 500_000, max_depth: 40 },
        )
        .unwrap();
        println!(
            "rounds = {rounds}: {} configs, {} bivalent, {} univalent, \
             {} critical",
            v.configs,
            v.bivalent,
            v.univalent,
            v.critical.len()
        );
    }

    println!("\n== Compare: racing 'consensus' on one register ==\n");
    let inputs = [Value::Int(0), Value::Int(1)];
    let sys = racing_system(1, &inputs);
    let report = terminal_adjacency(
        &sys,
        Limits { max_depth: 30, max_configs: 2_000_000 },
    )
    .unwrap();
    println!(
        "{} terminal configurations, {} edges, connected: {}",
        report.nodes.len(),
        report.edges.len(),
        report.is_connected()
    );
    println!(
        "fatal (disagreement) edges: {} — consensus cannot tolerate a \
         connected complex with differing corners.",
        report.disagreement_edges().len()
    );
}

fn fmt_value(v: &Value) -> String {
    match v.as_dyadic() {
        Some(d) => format!("{}", d.to_f64()),
        None => format!("{v}"),
    }
}
