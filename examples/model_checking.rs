//! Model checking the protocol landscape: exhaustive exploration,
//! valence analysis (the FLP structure), and the violation searcher.
//!
//! Shows, for small instances, the machinery that stands in for the
//! impossibility results the paper's reduction consumes: bivalence of
//! initial configurations, existence of critical configurations, and
//! concrete counterexamples for protocols below the space bound.
//!
//! Run with `cargo run --release --example model_checking`.

use revisionist_simulations::protocols::ladder::ladder_system;
use revisionist_simulations::protocols::racing::racing_system;
use revisionist_simulations::smr::explore::{Explorer, Limits};
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::tasks::agreement::consensus;
use revisionist_simulations::tasks::valence::{analyze, ValenceLimits};
use revisionist_simulations::tasks::violation::search_exhaustive;

fn main() {
    let inputs = [Value::Int(1), Value::Int(2)];

    println!("== Valence analysis (the FLP structure) ==\n");
    for (name, sys) in [
        ("racing m=1 (below bound)", racing_system(1, &inputs)),
        ("racing m=2 (at bound)", racing_system(2, &inputs)),
        ("ladder R=2 (correct)", ladder_system(&inputs, 2)),
    ] {
        let report = analyze(
            &sys,
            ValenceLimits { max_configs: 200_000, max_depth: 40 },
        )
        .unwrap();
        println!("{name}:");
        println!(
            "  {} configs ({} terminal), {} bivalent / {} univalent{}",
            report.configs,
            report.terminals,
            report.bivalent,
            report.univalent,
            if report.truncated { " [truncated]" } else { "" }
        );
        println!(
            "  initial outcomes: {:?}; critical configs: {}; disagreement reachable: {}",
            report.initial_outcomes,
            report.critical.len(),
            report.disagreement_reachable
        );
        println!();
    }

    println!("== Exhaustive violation search ==\n");
    for m in [1usize, 2] {
        let sys = racing_system(m, &inputs);
        let v = search_exhaustive(
            &sys,
            &inputs,
            &consensus(),
            Limits { max_depth: 40, max_configs: 500_000 },
        )
        .unwrap();
        match v {
            Some(revisionist_simulations::tasks::Violation::Task {
                violation,
                schedule,
                ..
            }) => {
                println!(
                    "racing m={m}: VIOLATION after {} steps: {violation}",
                    schedule.len()
                );
            }
            _ => println!("racing m={m}: no violation within the search bounds"),
        }
    }

    println!("\n== Obstruction-freedom certification ==\n");
    for (name, sys, budget) in [
        ("racing m=2", racing_system(2, &inputs), 60usize),
        ("ladder R=4", ladder_system(&inputs, 4), 80),
    ] {
        let explorer = Explorer::new(Limits { max_depth: 18, max_configs: 150_000 })
            .with_threads(0);
        let report = explorer.check_solo_termination_parallel(&sys, budget).unwrap();
        println!(
            "{name}: solo termination from {} reachable configs: {}{}",
            report.configs_visited,
            if report.is_clean() { "VERIFIED" } else { "FAILED" },
            if report.truncated { " (bounded)" } else { "" }
        );
    }
}
