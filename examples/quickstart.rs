//! Quickstart: the revisionist simulation in one page.
//!
//! Runs the Corollary 33 reduction for consensus: an obstruction-free
//! protocol Π among n = 4 processes using only m = 2 < 4 registers is
//! simulated wait-free by f = 2 covering simulators; the simulation is
//! validated by the Lemma 26/27 replay; and a schedule is found whose
//! extracted 2-process execution violates agreement — the contradiction
//! at the heart of the space lower bound.
//!
//! Run with `cargo run --example quickstart`.

use revisionist_simulations::core::bounds;
use revisionist_simulations::core::replay;
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::protocols::racing::PhasedRacing;
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::tasks::agreement::consensus;
use revisionist_simulations::tasks::task::ColorlessTask;

fn main() {
    let (n, m, f) = (4, 2, 2);
    println!("Corollary 33: OF consensus among n = {n} needs ≥ {} registers.",
        bounds::kset_space_lower_bound(n, 1, 1));
    println!("Protocol Π: phased racing on m = {m} components (OF, under-provisioned).");
    println!("Simulators: f = {f} covering (partition feasible: {}).\n",
        bounds::simulation_feasible(n, m, f, 0));

    let inputs = vec![Value::Int(1), Value::Int(2)];
    let task = consensus();
    let mut disagreement = None;

    for seed in 0..500u64 {
        let config = SimulationConfig::new(n, m, f, 0);
        let mut sim = Simulation::new(config, inputs.clone(), |i| {
            PhasedRacing::new(m, Value::Int([1, 2][i]))
        })
        .expect("partition feasible");
        let steps = sim.run_random(seed, 2_000_000).expect("protocol is OF");
        assert!(sim.all_terminated(), "the simulation is wait-free");

        // Machine-check Lemma 26/27: rebuild the simulated execution
        // (revisions included) and replay it against fresh copies of Π.
        let report = replay::validate(&sim, |i| {
            PhasedRacing::new(m, Value::Int([1, 2][i]))
        })
        .expect("reconstruction succeeds");
        assert!(report.is_ok(), "replay errors: {:?}", report.errors);

        let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
        if task.validate(&inputs, &outs).is_err() && disagreement.is_none() {
            disagreement = Some((seed, steps, outs.clone(), report));
        }
    }

    match disagreement {
        Some((seed, steps, outs, report)) => {
            println!("Seed {seed}: simulators output {outs:?} after {steps} H-steps.");
            println!(
                "Replayed simulated execution: {} steps ({} hidden/revised).",
                report.steps, report.hidden_steps
            );
            println!("\n=> f = 2 processes solved 'consensus' wait-free and disagreed:");
            println!("   wait-free 2-process consensus is impossible, so no correct");
            println!("   OF consensus protocol can use m = {m} < {n} registers. ∎");
        }
        None => println!("No disagreement found (try more seeds)."),
    }
}
