//! The §3 augmented snapshot object, exercised and specification-
//! checked under heavy contention.
//!
//! Drives f processes through random Scan/Block-Update workloads with
//! adversarial interleavings, then rebuilds the §3.3 linearization and
//! machine-checks Corollary 15, Lemmas 2/9/11/12/19 and Theorem 20.
//!
//! Run with `cargo run --example augmented_snapshot`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revisionist_simulations::snapshot::client::AugOp;
use revisionist_simulations::snapshot::real::RealSystem;
use revisionist_simulations::snapshot::spec;
use revisionist_simulations::smr::value::Value;

fn random_run(f: usize, m: usize, ops_per_proc: usize, seed: u64) -> RealSystem {
    let mut rs = RealSystem::new(f, m);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining = vec![ops_per_proc; f];
    let mut counter = 0i64;
    loop {
        let live: Vec<usize> = (0..f)
            .filter(|&p| remaining[p] > 0 || !rs.is_idle(p))
            .collect();
        if live.is_empty() {
            break;
        }
        let pid = live[rng.gen_range(0..live.len())];
        if rs.is_idle(pid) {
            remaining[pid] -= 1;
            let op = if rng.gen_bool(0.4) {
                AugOp::Scan
            } else {
                let r = rng.gen_range(1..=m);
                let mut comps: Vec<usize> = (0..m).collect();
                for i in (1..comps.len()).rev() {
                    comps.swap(i, rng.gen_range(0..=i));
                }
                comps.truncate(r);
                let values = comps
                    .iter()
                    .map(|_| {
                        counter += 1;
                        Value::Int(counter)
                    })
                    .collect();
                AugOp::BlockUpdate { components: comps, values }
            };
            rs.begin(pid, op);
        }
        rs.step(pid);
    }
    rs
}

fn main() {
    println!("Augmented snapshot (§3): specification check under contention.\n");
    println!(
        "{:>5} {:>3} {:>3} | {:>7} {:>7} {:>6} {:>8} | spec",
        "seed", "f", "m", "atomic", "yields", "scans", "H-steps"
    );
    println!("{}", "-".repeat(64));
    let mut total_atomic = 0;
    let mut total_yields = 0;
    for seed in 0..12u64 {
        let f = 2 + (seed as usize % 4); // 2..=5
        let m = 1 + (seed as usize % 4); // 1..=4
        let rs = random_run(f, m, 8, seed);
        let report = spec::check(&rs, m);
        println!(
            "{:>5} {:>3} {:>3} | {:>7} {:>7} {:>6} {:>8} | {}",
            seed,
            f,
            m,
            report.atomic_block_updates,
            report.yielded_block_updates,
            report.scans,
            rs.log().len(),
            if report.is_ok() { "OK" } else { "VIOLATED" }
        );
        for err in &report.errors {
            println!("    !! {err}");
        }
        total_atomic += report.atomic_block_updates;
        total_yields += report.yielded_block_updates;
    }
    println!(
        "\nTotals: {total_atomic} atomic Block-Updates, {total_yields} yields."
    );
    println!("Theorem 20 (checked above): every yield had a lower-id append in its");
    println!("execution interval; q0's Block-Updates are always atomic.");
    println!("Lemma 2 (checked above): Block-Updates take 6 H-steps (5 on yield);");
    println!("Scans take at most 2k+3 with k concurrent foreign appends.");
}
