//! §5: from nondeterministic solo termination to obstruction-freedom.
//!
//! Takes the randomized racing machine (a model of randomized wait-free
//! consensus: the coin decides which seen value to adopt), applies the
//! Theorem 35 determinization, and demonstrates:
//!
//! 1. solo runs of the determinized protocol Π′ always terminate
//!    (obstruction-freedom), from every reachable configuration;
//! 2. Π′ uses the same m-component object (same space), so any space
//!    lower bound for OF protocols applies to the randomized protocol;
//! 3. the ABA-free tagging of Corollary 36 in action.
//!
//! Run with `cargo run --example solo_conversion`.

use revisionist_simulations::smr::explore::{Explorer, Limits};
use revisionist_simulations::smr::process::ProcessId;
use revisionist_simulations::smr::sched::Random;
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::solo::convert::{determinized_system, shortest_solo_path};
use revisionist_simulations::solo::machine::{EpState, NondetMachine, RandomizedRacing};
use std::sync::Arc;

fn main() {
    let m = 2;
    let machine = Arc::new(RandomizedRacing::new(m));
    println!("Π: randomized racing over an {m}-component snapshot.");
    println!("Nondeterministic solo terminating: a solo process CAN keep its value");
    println!("and fill all components, but branches that keep adopting flip-flop.\n");

    // Shortest solo path from the initial state.
    let start = EpState::initial(machine.initial(&Value::Int(1)), m);
    let len = shortest_solo_path(machine.as_ref(), &start, 100_000).unwrap();
    println!("Shortest p-solo path from the initial state: {len} steps.");

    // Determinize (Theorem 35) and run solo.
    let mut sys = determinized_system(
        Arc::clone(&machine),
        &[Value::Int(1), Value::Int(2)],
        100_000,
    );
    let out = sys.run_solo(ProcessId(0), 1_000).unwrap();
    println!("Π′ solo run: terminated with output {out} in {} steps.", sys.trace().len());
    println!("Space of Π′: {} registers (same object as Π).\n", sys.space_complexity());

    // Obstruction-freedom from every reachable configuration.
    let fresh = determinized_system(
        Arc::clone(&machine),
        &[Value::Int(1), Value::Int(2)],
        100_000,
    );
    let explorer = Explorer::new(Limits { max_depth: 12, max_configs: 60_000 });
    let report = explorer.check_solo_termination(&fresh, 50).unwrap();
    println!(
        "Exhaustive check over {} reachable configurations: every solo run of Π′",
        report.configs_visited
    );
    println!(
        "terminates → Π′ is obstruction-free ({}).\n",
        if report.is_clean() { "VERIFIED" } else { "VIOLATED!" }
    );

    // Random contended runs.
    let mut terminated = 0;
    for seed in 0..50 {
        let mut sys = determinized_system(
            Arc::clone(&machine),
            &[Value::Int(1), Value::Int(2)],
            100_000,
        );
        sys.run(&mut Random::seeded(seed), 50_000).unwrap();
        if sys.all_terminated() {
            terminated += 1;
        }
    }
    println!("Under 50 random schedules, {terminated}/50 contended runs terminated.");
    println!("\nConsequence (paper §5): the space lower bounds proved for");
    println!("obstruction-free protocols apply to Π — and to every randomized");
    println!("wait-free protocol. In particular, randomized wait-free consensus");
    println!("among n processes needs exactly n registers.");
}
