//! BG simulation vs revisionist simulation under crashes.
//!
//! The paper's §1 contrast, executable: in the BG simulation different
//! real processes perform steps of the same simulated process, so a
//! simulator crashing inside a safe-agreement window blocks everyone.
//! In the revisionist simulation each simulated process belongs to one
//! simulator — which is what makes revising the past possible — and no
//! simulator ever waits for another: the simulation is wait-free.
//!
//! Run with `cargo run --example bg_contrast`.

use revisionist_simulations::core::bg::{BgSimulation, BgStatus};
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::protocols::racing::PhasedRacing;
use revisionist_simulations::smr::value::Value;

fn main() {
    println!("Scenario: f = 2 simulators, n = 4 simulated processes, Π = phased");
    println!("racing on m = 2 components. Simulator q0 takes ONE step and crashes.\n");

    // --- BG simulation. ---
    let mut bg = BgSimulation::new(
        4,
        vec![Value::Int(1), Value::Int(2)],
        |v| PhasedRacing::new(2, v.clone()),
        100_000,
    );
    bg.step(0).unwrap(); // q0 enters a safe-agreement window and dies.
    for _ in 0..1_000 {
        bg.step(1).unwrap();
    }
    println!("BG simulation:");
    println!("  q0: crashed inside box 0's unsafe window");
    match bg.status(1) {
        BgStatus::Blocked(b) => {
            println!("  q1: BLOCKED forever on safe-agreement box {b} — the");
            println!("      crashed simulator holds the box at level 1.");
        }
        other => println!("  q1: {other:?}"),
    }

    // --- Revisionist simulation, same crash pattern. ---
    let config = SimulationConfig::new(4, 2, 2, 0);
    let mut sim = Simulation::new(
        config,
        vec![Value::Int(1), Value::Int(2)],
        |i| PhasedRacing::new(2, Value::Int([1, 2][i])),
    )
    .unwrap();
    sim.step(0).unwrap(); // q0 takes one H-step and dies.
    let mut steps = 1;
    while sim.output(1).is_none() {
        let progressed = sim.step(1).unwrap();
        assert!(progressed || sim.output(1).is_some());
        steps += 1;
    }
    println!("\nRevisionist simulation (same crash):");
    println!(
        "  q1: TERMINATED with output {} after {steps} H-steps —",
        sim.output(1).unwrap()
    );
    println!("      Block-Updates are wait-free and Scans non-blocking; q1's");
    println!("      covering construction never waits for q0.");

    println!("\nWhy: in BG, steps of one simulated process are spread across");
    println!("simulators (agreement needed per step); in the revisionist");
    println!("simulation each simulated process has one owner, which is also");
    println!("exactly what makes 'revising the past' possible (paper §1).");
}
