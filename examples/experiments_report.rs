//! Regenerates every quantitative claim recorded in EXPERIMENTS.md.
//!
//! Run with `cargo run --release --example experiments_report`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revisionist_simulations::core::bounds;
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::core::stats;
use revisionist_simulations::protocols::approx::{approx_system, rounds_for_epsilon};
use revisionist_simulations::protocols::racing::{racing_system, PhasedRacing};
use revisionist_simulations::smr::explore::{Explorer, Limits};
use revisionist_simulations::smr::process::ProcessId;
use revisionist_simulations::smr::value::{Dyadic, Value};
use revisionist_simulations::snapshot::client::AugOp;
use revisionist_simulations::snapshot::real::RealSystem;
use revisionist_simulations::snapshot::spec;
use revisionist_simulations::solo::convert::determinized_system;
use revisionist_simulations::solo::machine::RandomizedRacing;
use revisionist_simulations::tasks::agreement::consensus;
use revisionist_simulations::tasks::sperner::{verify_sperner, Complex, Labeling};
use revisionist_simulations::tasks::task::ColorlessTask;
use std::collections::BTreeSet;
use std::sync::Arc;

fn main() {
    e1_e3_augmented_snapshot();
    e4_e5_simulation_and_replay();
    e6_kset_bounds();
    e7_approx();
    e7b_subdivision_chain();
    e8_solo_conversion();
    e10_sperner();
    e11_bg_contrast();
}

fn random_aug_run(f: usize, m: usize, ops: usize, seed: u64) -> RealSystem {
    let mut rs = RealSystem::new(f, m);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining = vec![ops; f];
    let mut counter = 0i64;
    loop {
        let live: Vec<usize> = (0..f)
            .filter(|&p| remaining[p] > 0 || !rs.is_idle(p))
            .collect();
        if live.is_empty() {
            break;
        }
        let pid = live[rng.gen_range(0..live.len())];
        if rs.is_idle(pid) {
            remaining[pid] -= 1;
            counter += 1;
            let op = if rng.gen_bool(0.5) {
                AugOp::Scan
            } else {
                let r = rng.gen_range(1..=m);
                let mut comps: Vec<usize> = (0..m).collect();
                for i in (1..comps.len()).rev() {
                    comps.swap(i, rng.gen_range(0..=i));
                }
                comps.truncate(r);
                let values =
                    comps.iter().map(|_| Value::Int(counter)).collect();
                AugOp::BlockUpdate { components: comps, values }
            };
            rs.begin(pid, op);
        }
        rs.step(pid);
    }
    rs
}

fn e1_e3_augmented_snapshot() {
    println!("## E1–E3: augmented snapshot (§3)\n");
    let mut runs = 0;
    let mut atomic = 0;
    let mut yields = 0;
    let mut scans = 0;
    let mut max_scan_steps = 0;
    let mut spec_ok = 0;
    for seed in 0..200u64 {
        let f = 2 + (seed as usize % 4);
        let m = 1 + (seed as usize % 4);
        let rs = random_aug_run(f, m, 5, seed);
        let report = spec::check(&rs, m);
        runs += 1;
        if report.is_ok() {
            spec_ok += 1;
        }
        atomic += report.atomic_block_updates;
        yields += report.yielded_block_updates;
        scans += report.scans;
        for rec in rs.oplog() {
            if let revisionist_simulations::snapshot::client::AugOutcome::Scan(s) =
                &rec.outcome
            {
                max_scan_steps = max_scan_steps.max(s.steps);
            }
        }
    }
    println!("- {runs} random contended runs (f∈2..=5, m∈1..=4): spec holds in {spec_ok}/{runs}");
    println!("- Block-Updates: {atomic} atomic, {yields} yields (Theorem 20 checked per-run)");
    println!("- Scans: {scans}; max Scan step count observed: {max_scan_steps} (Lemma 2 bound 2k+3 checked per-run)");
    println!("- Block-Update step counts: always 6 (atomic) / 5 (yield) — asserted by the checker\n");
}

fn e4_e5_simulation_and_replay() {
    println!("## E4–E5: simulation wait-freedom, budgets, replay (§4)\n");
    for (n, m, f, d) in
        [(4usize, 2usize, 2usize, 0usize), (6, 2, 3, 0), (6, 3, 2, 0), (5, 2, 3, 1)]
    {
        let runs = 50u64;
        let inputs: Vec<Value> = (1..=f as i64).map(Value::Int).collect();
        let config = SimulationConfig::new(n, m, f, d);
        // The seed grid fans out across all cores; the aggregate is
        // identical to the sequential sweep.
        let point = stats::sweep_parallel(
            config,
            &inputs,
            move |i| PhasedRacing::new(m, Value::Int(i as i64 + 1)),
            &consensus(),
            0..runs,
            20_000_000,
            0,
        )
        .unwrap();
        assert_eq!(point.wait_free, point.runs);
        let budgets: Vec<String> = (0..f)
            .map(|i| {
                if i < f - d {
                    format!("{}≤{}", point.max_block_updates[i], bounds::b_bound(m, i + 1))
                } else {
                    // Direct simulators' Block-Update counts track Π's
                    // step complexity, not b(i).
                    format!("{} (direct)", point.max_block_updates[i])
                }
            })
            .collect();
        println!(
            "- n={n} m={m} f={f} d={d}: {}/{runs} wait-free, replay \
             {}/{runs}; max H-steps {}; max BU per sim vs b(i): [{}]",
            point.wait_free,
            point.replay_ok,
            point.max_h_steps,
            budgets.join(", ")
        );
    }
    println!();
}

fn e6_kset_bounds() {
    println!("## E6: k-set agreement space bounds (Corollary 33)\n");
    println!("| n | k | x | lower | upper | feasibility ⇔ m<lower |");
    println!("|---|---|---|-------|-------|------------------------|");
    for (n, k, x) in [(4usize, 1usize, 1usize), (8, 1, 1), (8, 7, 1), (16, 3, 2), (32, 4, 3)] {
        let lo = bounds::kset_space_lower_bound(n, k, x);
        let hi = bounds::kset_space_upper_bound(n, k, x);
        let mech = (1..=n)
            .all(|m| bounds::simulation_feasible(n, m, k + 1, x) == (m < lo));
        println!("| {n} | {k} | {x} | {lo} | {hi} | {mech} |");
    }
    // Extraction of violations below the bound.
    let inputs = [Value::Int(1), Value::Int(2)];
    let mut first_violation = None;
    for seed in 0..300u64 {
        let config = SimulationConfig::new(4, 2, 2, 0);
        let mut sim = Simulation::new(config, inputs.to_vec(), |i| {
            PhasedRacing::new(2, Value::Int([1, 2][i]))
        })
        .unwrap();
        sim.run_random(seed, 4_000_000).unwrap();
        let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
        if consensus().validate(&inputs, &outs).is_err() {
            first_violation = Some(seed);
            break;
        }
    }
    println!(
        "\n- Reduction run (n=4, m=2 < 4, f=2): first extracted consensus violation at seed {:?}",
        first_violation
    );
    // Exhaustive protocol facts.
    let sys = racing_system(1, &inputs);
    let v = revisionist_simulations::tasks::violation::search_exhaustive(
        &sys,
        &inputs,
        &consensus(),
        Limits { max_depth: 40, max_configs: 500_000 },
    )
    .unwrap();
    println!(
        "- Exhaustive check: racing on m=1 register violates consensus ({})\n",
        if v.is_some() { "violation found" } else { "?" }
    );
}

fn e7_approx() {
    println!("## E7: ε-approximate agreement (Corollary 34)\n");
    println!("| ε | solo steps (upper) | L = ½log₃(1/ε) (lower) |");
    println!("|---|--------------------|-------------------------|");
    for e in [4u32, 8, 16, 20] {
        let mut sys = approx_system(&[Dyadic::zero(), Dyadic::one()], rounds_for_epsilon(e));
        sys.run_solo(ProcessId(0), 1_000_000).unwrap();
        println!(
            "| 2^-{e} | {} | {:.2} |",
            sys.trace().len(),
            bounds::approx_step_lower_bound(e)
        );
    }
    println!("\n| n | bound at ε=2^-8 | ε=2^-64 | ε=2^-4096 |");
    println!("|---|------|------|------|");
    for n in [4usize, 16, 64] {
        println!(
            "| {n} | {:.2} | {:.2} | {:.2} |",
            bounds::approx_space_lower_bound(n, 8),
            bounds::approx_space_lower_bound(n, 64),
            bounds::approx_space_lower_bound(n, 4096),
        );
    }
    println!();
}

fn e7b_subdivision_chain() {
    use revisionist_simulations::tasks::chain::terminal_adjacency;
    println!("## E7b: the subdivided-path protocol complex (Hoest–Shavit)\n");
    println!("| rounds | nodes | edges | connected | max edge spread |");
    println!("|---|---|---|---|---|");
    for rounds in 1..=4u32 {
        let sys = approx_system(&[Dyadic::zero(), Dyadic::one()], rounds);
        let report = terminal_adjacency(
            &sys,
            Limits { max_depth: 40, max_configs: 3_000_000 },
        )
        .unwrap();
        println!(
            "| {rounds} | {} | {} | {} | {:?} |",
            report.nodes.len(),
            report.edges.len(),
            report.is_connected(),
            report.max_edge_spread()
        );
    }
    println!();
}

fn e11_bg_contrast() {
    use revisionist_simulations::core::bg::{BgSimulation, BgStatus};
    println!("## E11: BG contrast (paper §1)\n");
    let mut bg = BgSimulation::new(
        4,
        vec![Value::Int(1), Value::Int(2)],
        |v| PhasedRacing::new(2, v.clone()),
        100_000,
    );
    bg.step(0).unwrap(); // q0 crashes in the unsafe window
    for _ in 0..1_000 {
        bg.step(1).unwrap();
    }
    let blocked = matches!(bg.status(1), BgStatus::Blocked(_));
    let config = SimulationConfig::new(4, 2, 2, 0);
    let mut sim = Simulation::new(config, vec![Value::Int(1), Value::Int(2)], |i| {
        PhasedRacing::new(2, Value::Int([1, 2][i]))
    })
    .unwrap();
    sim.step(0).unwrap();
    let mut steps = 1;
    while sim.output(1).is_none() {
        let progressed = sim.step(1).unwrap();
        assert!(progressed || sim.output(1).is_some());
        steps += 1;
    }
    println!("- q0 crashes after one step:");
    println!("  - BG: q1 {} (safe-agreement window held by the corpse)",
        if blocked { "BLOCKED forever" } else { "not blocked?!" });
    println!("  - revisionist: q1 terminates in {steps} H-steps (wait-free)\n");
}

fn e8_solo_conversion() {
    println!("## E8: Theorem 35 conversion (§5)\n");
    let machine = Arc::new(RandomizedRacing::new(2));
    let sys = determinized_system(
        Arc::clone(&machine),
        &[Value::Int(1), Value::Int(2)],
        100_000,
    );
    let explorer = Explorer::new(Limits { max_depth: 12, max_configs: 60_000 })
        .with_threads(0);
    let report = explorer.check_solo_termination_parallel(&sys, 50).unwrap();
    println!(
        "- Determinized randomized racing (m=2, 2 procs): solo termination from all \
         {} reachable configs: {}",
        report.configs_visited,
        if report.is_clean() { "VERIFIED" } else { "FAILED" }
    );
    let mut sys2 = determinized_system(Arc::clone(&machine), &[Value::Int(9)], 100_000);
    let out = sys2.run_solo(ProcessId(0), 1_000).unwrap();
    println!(
        "- Solo run: output {out} in {} steps (= shortest solo path); space unchanged: {} registers\n",
        sys2.trace().len(),
        sys2.space_complexity()
    );
}

fn e10_sperner() {
    println!("## E10: Sperner substrate\n");
    let mut rng = StdRng::seed_from_u64(99);
    for (dim, depth) in [(1usize, 3usize), (2, 2), (2, 3), (3, 1)] {
        let c = Complex::standard(dim).subdivide(depth);
        let mut counts = BTreeSet::new();
        for _ in 0..50 {
            let l = Labeling::random_sperner(&c, &mut rng);
            counts.insert(verify_sperner(&c, &l).unwrap());
        }
        println!(
            "- dim {dim}, depth {depth}: {} cells, {} vertices; panchromatic counts \
             over 50 random Sperner labelings: {:?} (all odd)",
            c.simplices().len(),
            c.vertex_count(),
            counts
        );
    }
}
