//! Anatomy of a revision: watch a covering simulator revise the past.
//!
//! Runs a 3-simulator simulation, then dissects one run: the atomic
//! Block-Updates and their returned views, every revision (which
//! simulated process, which hidden steps), the Lemma 26 reconstruction
//! of the simulated execution with the hidden steps spliced in, and
//! the per-simulator Block-Update counts against the Lemma 30 budgets.
//!
//! Run with `cargo run --example revision_anatomy`.

use revisionist_simulations::core::bounds::b_bound;
use revisionist_simulations::core::covering::RevisionOutcome;
use revisionist_simulations::core::replay;
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::protocols::racing::PhasedRacing;
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::snapshot::client::AugOutcome;

fn main() {
    let (n, m, f) = (6, 2, 3);
    let inputs = [1i64, 2, 3];
    // Find a seed with plenty of revisions.
    let mut best: Option<(u64, usize)> = None;
    for seed in 0..80u64 {
        let mut sim = build(n, m, f, &inputs);
        sim.run_random(seed, 4_000_000).unwrap();
        let revisions: usize = (0..f).map(|i| sim.revisions(i).len()).sum();
        if best.is_none_or(|(_, r)| revisions > r) {
            best = Some((seed, revisions));
        }
    }
    let (seed, _) = best.unwrap();
    let mut sim = build(n, m, f, &inputs);
    let h_steps = sim.run_random(seed, 4_000_000).unwrap();

    println!("Simulation: n = {n} simulated processes, m = {m} components,");
    println!("f = {f} covering simulators, seed {seed}; {h_steps} H-steps.\n");

    println!("== M operations (completed) ==");
    for (idx, rec) in sim.real().oplog().iter().enumerate() {
        match &rec.outcome {
            AugOutcome::Scan(s) => {
                println!("  #{idx:<3} q{}  Scan        -> {:?}", rec.pid, s.view);
            }
            AugOutcome::BlockUpdate(b) => {
                println!(
                    "  #{idx:<3} q{}  BlockUpdate {:?} {:?} -> {}",
                    rec.pid,
                    b.components,
                    b.values,
                    match &b.result {
                        Some(v) => format!("atomic, view {v:?}"),
                        None => "YIELD".to_string(),
                    }
                );
            }
        }
    }

    println!("\n== Revisions of the past ==");
    for i in 0..f {
        for rev in sim.revisions(i) {
            println!(
                "  q{i} revised p_({i},{}) using view of BU ts {}: hidden {:?} -> {:?}",
                rev.local_index, rev.ts, rev.hidden, rev.outcome
            );
            if let RevisionOutcome::Output(y) = &rev.outcome {
                println!("      (simulated process output {y} during the revision)");
            }
        }
        if let Some(fb) = sim.final_block(i) {
            println!(
                "  q{i} completed Construct(m): block {:?} {:?}, ξ = {:?}, output {}",
                fb.block.components, fb.block.values, fb.xi_hidden, fb.output
            );
        }
    }

    println!("\n== Lemma 26/27 reconstruction and replay ==");
    let report = replay::validate(&sim, |i| {
        PhasedRacing::new(m, Value::Int(inputs[i]))
    })
    .unwrap();
    println!(
        "  simulated execution: {} steps, of which {} hidden (revisions + tails)",
        report.steps, report.hidden_steps
    );
    println!(
        "  replay against fresh Π: {}",
        if report.is_ok() { "LEGAL — every step is the process's next step" } else { "MISMATCH!" }
    );
    for e in &report.errors {
        println!("  !! {e}");
    }

    println!("\n== Outputs and budgets ==");
    for i in 0..f {
        let (scans, bus) = sim.op_counts(i);
        println!(
            "  q{i}: output {:?}; {scans} Scans, {bus} Block-Updates (b({}) = {})",
            sim.output(i).unwrap(),
            i + 1,
            b_bound(m, i + 1)
        );
    }
}

fn build(n: usize, m: usize, f: usize, inputs: &[i64]) -> Simulation<PhasedRacing> {
    let vals: Vec<Value> = inputs.iter().map(|&v| Value::Int(v)).collect();
    let config = SimulationConfig::new(n, m, f, 0);
    let vals2 = vals.clone();
    Simulation::new(config, vals, move |i| {
        PhasedRacing::new(m, vals2[i].clone())
    })
    .unwrap()
}
