//! Determinism regression tests for the parallel exploration engine
//! and the campaign runner: every report field must be bit-for-bit
//! identical at 1, 2, and N worker threads.

use revisionist_simulations::protocols::contrarian::contrarian_system;
use revisionist_simulations::protocols::racing::racing_system;
use revisionist_simulations::smr::campaign::{
    run_campaign, CampaignConfig, SchedulerSpec,
};
use revisionist_simulations::smr::explore::{Explorer, ExploreReport, Limits};
use revisionist_simulations::smr::process::ProcessId;
use revisionist_simulations::smr::system::System;
use revisionist_simulations::smr::value::Value;

fn racing3() -> System {
    racing_system(2, &[Value::Int(1), Value::Int(2), Value::Int(3)])
}

fn assert_same_report(a: &ExploreReport, b: &ExploreReport, label: &str) {
    assert_eq!(a.configs_visited, b.configs_visited, "{label}: configs_visited");
    assert_eq!(a.terminals, b.terminals, "{label}: terminals");
    assert_eq!(a.truncated, b.truncated, "{label}: truncated");
    assert_eq!(a.violation, b.violation, "{label}: violation");
    assert_eq!(a.pruned, b.pruned, "{label}: pruned");
    assert_eq!(a.dpor, b.dpor, "{label}: dpor");
}

#[test]
fn explorer_reports_identical_across_thread_counts() {
    // The acceptance scenario: a racing 3-process system explored to
    // depth 64 must produce identical report fields at 1 and N threads.
    // The state space exceeds the config budget, so deterministic
    // truncation is exercised too.
    let limits = Limits { max_depth: 64, max_configs: 20_000 };
    let base = Explorer::new(limits)
        .with_threads(1)
        .explore_parallel(&racing3(), &|_| None)
        .unwrap();
    assert!(base.configs_visited > 100, "non-trivial state space");
    assert!(base.terminals > 0);
    for threads in [2, 4, 0] {
        let report = Explorer::new(limits)
            .with_threads(threads)
            .explore_parallel(&racing3(), &|_| None)
            .unwrap();
        assert_same_report(&base, &report, &format!("threads={threads}"));
    }
}

#[test]
fn explorer_violation_schedule_is_canonical_across_thread_counts() {
    // Flag any configuration where process 2 has terminated; many
    // schedules reach one, so the reported (canonically first) schedule
    // is a real tie-break test across thread counts.
    let limits = Limits { max_depth: 64, max_configs: 20_000 };
    let check = |sys: &System| {
        sys.output(ProcessId(2)).map(|v| format!("p2 decided {v}"))
    };
    let base = Explorer::new(limits)
        .with_threads(1)
        .explore_parallel(&racing3(), &check)
        .unwrap();
    let (schedule, _) = base.violation.clone().expect("p2 can decide");
    assert!(!schedule.is_empty());
    for threads in [2, 4, 0] {
        let report = Explorer::new(limits)
            .with_threads(threads)
            .explore_parallel(&racing3(), &check)
            .unwrap();
        assert_same_report(&base, &report, &format!("threads={threads}"));
    }
}

#[test]
fn violation_outcomes_identical_across_thread_counts_for_many_checks() {
    // A battery of violation predicates with different terminal shapes:
    // early hits, late hits, and checks that fire on interior
    // configurations. Terminals, visited counts, truncation, and the
    // canonical violation must agree at every thread count.
    let limits = Limits { max_depth: 64, max_configs: 20_000 };
    type Check = Box<dyn Fn(&System) -> Option<String> + Sync>;
    let checks: Vec<(&str, Check)> = vec![
        (
            "p0-decided-1-terminal",
            Box::new(|sys: &System| {
                (sys.all_terminated() && sys.output(ProcessId(0)) == Some(Value::Int(1)))
                    .then(|| "v".into())
            }),
        ),
        (
            "p2-decided-any",
            Box::new(|sys: &System| sys.output(ProcessId(2)).map(|_| "v".into())),
        ),
        (
            "p0-decided-any",
            Box::new(|sys: &System| sys.output(ProcessId(0)).map(|_| "v".into())),
        ),
        (
            "p1-decided-2",
            Box::new(|sys: &System| {
                (sys.output(ProcessId(1)) == Some(Value::Int(2))).then(|| "v".into())
            }),
        ),
        (
            "any-terminal",
            Box::new(|sys: &System| sys.all_terminated().then(|| "v".into())),
        ),
    ];
    for (name, check) in &checks {
        let base = Explorer::new(limits)
            .with_threads(1)
            .explore_parallel(&racing3(), &**check)
            .unwrap();
        for threads in [2, 3, 8, 32] {
            let report = Explorer::new(limits)
                .with_threads(threads)
                .explore_parallel(&racing3(), &**check)
                .unwrap();
            assert_same_report(&base, &report, &format!("{name} threads={threads}"));
        }
    }
}

#[test]
fn dpor_on_off_reports_identical_over_protocol_families() {
    // The parallel differential gate over the named protocol families:
    // with a depth bound and no config cap, the frontier advances one
    // schedule step per level on both sides, so partial-order reduction
    // must not change any observable report field — it only changes how
    // many redundant forks were paid for (the `pruned` tally).
    use revisionist_simulations::protocols::ladder::ladder_system;
    let limits = Limits { max_depth: 10, max_configs: 5_000_000 };
    let systems: Vec<(&str, System)> = vec![
        ("racing", racing3()),
        ("contrarian", contrarian_system(&[true, false, true])),
        ("ladder", ladder_system(&[Value::Int(1), Value::Int(2)], 2)),
    ];
    let mut total_pruned = 0usize;
    for (name, sys) in &systems {
        let base = Explorer::new(limits)
            .with_threads(1)
            .explore_parallel(sys, &|_| None)
            .unwrap();
        for threads in [1usize, 4] {
            let on = Explorer::new(limits)
                .with_threads(threads)
                .explore_parallel(sys, &|_| None)
                .unwrap();
            let off = Explorer::new(limits)
                .with_threads(threads)
                .with_dpor(false)
                .explore_parallel(sys, &|_| None)
                .unwrap();
            assert!(on.dpor, "{name}: reduction should be on by default");
            assert!(!off.dpor, "{name}: escape hatch not recorded");
            assert_eq!(off.pruned, 0, "{name}: unreduced run reported pruning");
            assert_eq!(on.configs_visited, off.configs_visited, "{name} threads={threads}");
            assert_eq!(on.terminals, off.terminals, "{name} threads={threads}");
            assert_eq!(on.truncated, off.truncated, "{name} threads={threads}");
            assert_eq!(on.violation, off.violation, "{name} threads={threads}");
            // DPOR-on runs are bit-identical across thread counts,
            // pruned tally included.
            assert_same_report(&base, &on, &format!("{name} threads={threads}"));
        }
        total_pruned += base.pruned;
    }
    assert!(total_pruned > 0, "no pruning across the protocol families");
}

#[test]
fn solo_termination_check_identical_across_thread_counts() {
    let limits = Limits { max_depth: 8, max_configs: 5_000 };
    let base = Explorer::new(limits)
        .with_threads(1)
        .check_solo_termination_parallel(&racing3(), 60)
        .unwrap();
    let seq = Explorer::new(limits).check_solo_termination(&racing3(), 60).unwrap();
    assert_eq!(base.is_clean(), seq.is_clean());
    for threads in [3, 0] {
        let report = Explorer::new(limits)
            .with_threads(threads)
            .check_solo_termination_parallel(&racing3(), 60)
            .unwrap();
        assert_same_report(&base, &report, &format!("threads={threads}"));
    }
}

#[test]
fn fixed_seed_campaign_identical_across_thread_counts() {
    let mk = |threads: usize| CampaignConfig {
        schedulers: vec![
            SchedulerSpec::RoundRobin,
            SchedulerSpec::Random,
            SchedulerSpec::Obstruction { x: 1, chaos_steps: 16, burst_len: 32 },
            SchedulerSpec::Crash { max_crashes: 1, probability: 0.1 },
        ],
        seed_start: 3,
        runs: 30,
        budget: 1_500,
        threads,
    };
    let factory = |seed: u64| {
        let bits: Vec<bool> = (0..3).map(|i| (seed >> i) & 1 == 1).collect();
        contrarian_system(&bits)
    };
    let base = run_campaign(&mk(1), factory, &|_| None);
    for threads in [2, 8, 0] {
        let report = run_campaign(&mk(threads), factory, &|_| None);
        assert_eq!(report.total_runs, base.total_runs, "threads={threads}");
        assert_eq!(report.terminated_runs, base.terminated_runs);
        assert_eq!(report.distinct_configs, base.distinct_configs);
        assert_eq!(report.total_steps, base.total_steps);
        assert_eq!(report.total_pruned, base.total_pruned, "threads={threads}");
        assert_eq!(report.failures.len(), base.failures.len());
        for (a, b) in report.failures.iter().zip(&base.failures) {
            assert_eq!(a.scheduler, b.scheduler);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.violation, b.violation);
        }
        for (a, b) in report.per_scheduler.iter().zip(&base.per_scheduler) {
            assert_eq!(a.runs, b.runs);
            assert_eq!(a.terminated, b.terminated);
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.total_steps, b.total_steps);
            assert_eq!(a.pruned, b.pruned);
        }
    }
}
