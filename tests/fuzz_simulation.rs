//! Property-based fuzzing of the full simulation pipeline: random
//! scripted protocols (arbitrary update patterns, bounded length, then
//! output) are pushed through the covering-simulator machinery under
//! random schedules, and every run must be wait-free, within budgets,
//! and pass the Lemma 26/27 replay.
//!
//! This exercises `Construct(r)`, revision, window computation and the
//! replay against protocol behaviours far weirder than the racing
//! family: processes that hammer one component, alternate, or output
//! immediately.

use proptest::prelude::*;
use revisionist_simulations::core::bounds;
use revisionist_simulations::core::replay;
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::smr::process::{ProtocolStep, SnapshotProtocol};
use revisionist_simulations::smr::value::Value;

/// A deterministic scripted protocol: performs its updates then outputs
/// a tag. Wait-free by construction (hence obstruction-free), which is
/// all Theorem 21 requires of Π.
#[derive(Clone, Debug)]
struct Scripted {
    script: Vec<(usize, i64)>,
    pos: usize,
    m: usize,
    tag: i64,
}

impl SnapshotProtocol for Scripted {
    fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
        if self.pos >= self.script.len() {
            return ProtocolStep::Output(Value::Int(self.tag));
        }
        let (c, v) = self.script[self.pos];
        self.pos += 1;
        ProtocolStep::Update(c % self.m, Value::Int(v))
    }
    fn components(&self) -> usize {
        self.m
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scripted_simulations_are_wait_free_and_replay(
        scripts in proptest::collection::vec(
            proptest::collection::vec((0usize..3, 0i64..50), 0..8),
            2..4, // f simulators
        ),
        m in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let f = scripts.len();
        let n = f * m; // exactly enough simulated processes
        let config = SimulationConfig::new(n, m, f, 0);
        prop_assume!(config.is_feasible());
        let inputs: Vec<Value> = (0..f as i64).map(Value::Int).collect();
        let scripts2 = scripts.clone();
        let make = move |i: usize| Scripted {
            script: scripts2[i].clone(),
            pos: 0,
            m,
            tag: i as i64,
        };
        let mut sim = Simulation::new(config, inputs, make).unwrap();
        sim.run_random(seed, 10_000_000).unwrap();
        prop_assert!(sim.all_terminated(), "simulation must be wait-free");
        for i in 0..f {
            let (_, bus) = sim.op_counts(i);
            prop_assert!(
                (bus as u128) <= bounds::b_bound(m, i + 1),
                "budget exceeded: q{i} applied {bus}"
            );
            // Outputs are tags of the simulator's own processes
            // (colorless: every simulated process of q_i has tag i).
            prop_assert_eq!(sim.output(i), Some(&Value::Int(i as i64)));
        }
        let scripts3 = scripts.clone();
        let report = replay::validate(&sim, move |i| Scripted {
            script: scripts3[i].clone(),
            pos: 0,
            m,
            tag: i as i64,
        })
        .unwrap();
        prop_assert!(report.is_ok(), "replay failed: {:#?}", report.errors);
    }

    #[test]
    fn mixed_direct_covering_scripted_simulations_replay(
        scripts in proptest::collection::vec(
            proptest::collection::vec((0usize..2, 0i64..50), 0..6),
            3..4,
        ),
        seed in 0u64..5_000,
    ) {
        let f = scripts.len();
        let m = 2;
        let d = 1;
        let n = (f - d) * m + d;
        let config = SimulationConfig::new(n, m, f, d);
        prop_assume!(config.is_feasible());
        let inputs: Vec<Value> = (0..f as i64).map(Value::Int).collect();
        let scripts2 = scripts.clone();
        let make = move |i: usize| Scripted {
            script: scripts2[i].clone(),
            pos: 0,
            m,
            tag: i as i64,
        };
        let mut sim = Simulation::new(config, inputs, make).unwrap();
        sim.run_random(seed, 10_000_000).unwrap();
        prop_assert!(sim.all_terminated());
        let scripts3 = scripts.clone();
        let report = replay::validate(&sim, move |i| Scripted {
            script: scripts3[i].clone(),
            pos: 0,
            m,
            tag: i as i64,
        })
        .unwrap();
        prop_assert!(report.is_ok(), "replay failed: {:#?}", report.errors);
    }
}
