//! Property-based fuzzing of the full simulation pipeline, driven by
//! the protocol generator: scripted protocols derived from
//! [`GenSpec`] prologues (arbitrary update patterns, bounded length,
//! then output) are pushed through the covering-simulator machinery
//! under random schedules, and every run must be wait-free, within
//! budgets, and pass the Lemma 26/27 replay.
//!
//! This exercises `Construct(r)`, revision, window computation and the
//! replay against protocol behaviours far weirder than the racing
//! family. The scripts come from `GenSpec::script_protocol`, so the
//! same seeds the `fuzz` subcommand explores also feed the covering
//! simulation, and a failing case here reduces to one `gen` seed.
//!
//! Simulation shapes are feasible *by construction* (`n = f·m + d` with
//! `d` simulators covering directly), so no `prop_assume` filtering —
//! the historic source of assume-saturation flakes — is needed.

use proptest::prelude::*;
use revisionist_simulations::core::bounds;
use revisionist_simulations::core::replay;
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::smr::gen::GenSpec;
use revisionist_simulations::smr::value::Value;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_scripts_simulate_wait_free_and_replay(
        gen_seed in 0u64..256,
        f in 2usize..4, // simulators
        m in 1usize..3,
        seed in 0u64..10_000,
    ) {
        // d = 0 and n = f·m make the reduction feasible outright:
        // (f − 0)·m + 0 = n. No filtering, hence no assume saturation.
        let n = f * m;
        let config = SimulationConfig::new(n, m, f, 0);
        prop_assert!(config.is_feasible(), "n = f*m must always be feasible");
        let spec = GenSpec::from_seed(gen_seed);
        let inputs: Vec<Value> = (0..f as i64).map(Value::Int).collect();
        let spec2 = spec.clone();
        let make = move |i: usize| spec2.script_protocol(i, m, i as i64);
        let mut sim = Simulation::new(config, inputs, make).unwrap();
        sim.run_random(seed, 10_000_000).unwrap();
        prop_assert!(sim.all_terminated(), "simulation must be wait-free");
        for i in 0..f {
            let (_, bus) = sim.op_counts(i);
            prop_assert!(
                (bus as u128) <= bounds::b_bound(m, i + 1),
                "budget exceeded: q{} applied {}", i, bus
            );
            // Outputs are tags of the simulator's own processes
            // (colorless: every simulated process of q_i has tag i).
            prop_assert_eq!(sim.output(i), Some(&Value::Int(i as i64)));
        }
        let report = replay::validate(&sim, move |i| {
            spec.script_protocol(i, m, i as i64)
        })
        .unwrap();
        prop_assert!(report.is_ok(), "replay failed: {:#?}", report.errors);
    }

    #[test]
    fn mixed_direct_covering_generated_scripts_replay(
        gen_seed in 0u64..256,
        seed in 0u64..5_000,
    ) {
        // One direct simulator among three: n = (f − d)·m + d = 5,
        // feasible by construction.
        let (f, m, d) = (3, 2, 1);
        let n = (f - d) * m + d;
        let config = SimulationConfig::new(n, m, f, d);
        prop_assert!(config.is_feasible(), "(f, d) shape must be feasible");
        let spec = GenSpec::from_seed(gen_seed);
        let inputs: Vec<Value> = (0..f as i64).map(Value::Int).collect();
        let spec2 = spec.clone();
        let make = move |i: usize| spec2.script_protocol(i, m, i as i64);
        let mut sim = Simulation::new(config, inputs, make).unwrap();
        sim.run_random(seed, 10_000_000).unwrap();
        prop_assert!(sim.all_terminated());
        let report = replay::validate(&sim, move |i| {
            spec.script_protocol(i, m, i as i64)
        })
        .unwrap();
        prop_assert!(report.is_ok(), "replay failed: {:#?}", report.errors);
    }
}
