//! Golden regression tests for configuration identity.
//!
//! The explorer's deduplication, the campaign resume protocol, and the
//! replay bundles all depend on configuration fingerprints being stable
//! across releases: a silent change to the encoding would invalidate
//! every checked-in fingerprint count and resume ledger. These tests
//! pin the fingerprint function three ways:
//!
//! 1. **Golden values** — literal 64-bit constants for known
//!    configurations. If these fail, the encoding changed; that is a
//!    breaking change to every persisted artifact and must be called
//!    out, not absorbed.
//! 2. **Stream/string agreement** — the zero-allocation streaming hash
//!    ([`System::config_fingerprint`]) must equal FNV-1a over the
//!    materialised legacy `config_key` string on every configuration an
//!    exploration visits.
//! 3. **Schedule independence** — different schedules reaching the same
//!    configuration produce the same fingerprint (the trace is
//!    excluded from configuration identity).

use revisionist_simulations::protocols::racing_system;
use revisionist_simulations::smr::explore::{Explorer, Limits};
use revisionist_simulations::smr::fingerprint::fingerprint;
use revisionist_simulations::smr::process::ProcessId;
use revisionist_simulations::smr::sched::RoundRobin;
use revisionist_simulations::smr::system::System;
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::solo::convert::determinized_system;
use revisionist_simulations::solo::machine::RandomizedRacing;
use std::sync::Arc;

fn ints(vals: &[i64]) -> Vec<Value> {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

/// Literal fingerprints for fixed configurations. A failure here means
/// the configuration encoding changed — which breaks campaign resume
/// ledgers and replay bundles recorded by earlier builds.
#[test]
fn golden_fingerprints_are_stable() {
    let initial = racing_system(2, &ints(&[1, 2]));
    assert_eq!(initial.config_fingerprint(), 0xdba8_dae2_1165_0de7);

    let mut run = racing_system(2, &ints(&[1, 2]));
    run.run(&mut RoundRobin::new(), 100_000).unwrap();
    assert_eq!(run.config_fingerprint(), 0x4a85_7e4b_e95d_cd83);

    let wide = racing_system(3, &ints(&[7, 8, 9]));
    assert_eq!(wide.config_fingerprint(), 0x7324_7fb6_025e_9b0f);
}

/// Walks every configuration of a small exhaustive exploration and
/// checks the streaming hash against the legacy string path on each.
#[test]
fn streamed_hash_matches_string_path_over_explored_corpus() {
    fn check_all(sys: &System, depth: usize, visited: &mut Vec<u64>) {
        assert_eq!(
            sys.config_fingerprint(),
            fingerprint(&sys.config_key()),
            "stream/string divergence at depth {depth}: {}",
            sys.config_key()
        );
        visited.push(sys.config_fingerprint());
        if depth == 0 || sys.all_terminated() {
            return;
        }
        for p in 0..sys.process_count() {
            let pid = ProcessId(p);
            if sys.is_terminated(pid) {
                continue;
            }
            let mut fork = sys.clone();
            fork.step(pid).unwrap();
            check_all(&fork, depth - 1, visited);
        }
    }

    let mut visited = Vec::new();
    check_all(&racing_system(2, &ints(&[1, 2])), 6, &mut visited);
    check_all(
        &determinized_system(Arc::new(RandomizedRacing::new(2)), &ints(&[5, 6]), 50),
        4,
        &mut visited,
    );
    assert!(visited.len() > 100, "corpus too small: {}", visited.len());
}

/// Fingerprint counts from the explorer are a stable public artifact:
/// the same model explored with the legacy string keys and with
/// streaming keys must visit the same number of distinct
/// configurations.
#[test]
fn explorer_fingerprint_count_matches_string_keyed_exploration() {
    let initial = racing_system(2, &ints(&[1, 2]));
    let limits = Limits { max_depth: 12, max_configs: 50_000 };
    // Partial-order reduction off: this walk is depth-truncated, and
    // under truncation the reduced search's first-arrival depths differ
    // from the reference walk's, so visited counts only match the
    // string-keyed reference for the unreduced search. (On
    // non-truncated searches DPOR on/off counts are identical — see
    // tests/dpor.rs.)
    let report = Explorer::new(limits)
        .with_dpor(false)
        .explore(&initial, &mut |_| None)
        .unwrap();

    // Reference walk dedup'd on the materialised string key.
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut stack = vec![initial];
    while let Some(sys) = stack.pop() {
        if !seen.insert(sys.config_key()) {
            continue;
        }
        if sys.all_terminated() || sys.trace().len() >= limits.max_depth {
            continue;
        }
        for p in 0..sys.process_count() {
            let pid = ProcessId(p);
            if sys.is_terminated(pid) {
                continue;
            }
            let mut fork = sys.clone();
            fork.step(pid).unwrap();
            stack.push(fork);
        }
    }
    assert_eq!(report.configs_visited, seen.len());
}

/// Two different schedules that land in the same configuration agree on
/// the fingerprint even though their traces differ.
#[test]
fn fingerprint_ignores_the_trace() {
    let mut a = racing_system(2, &ints(&[1, 2]));
    let mut b = racing_system(2, &ints(&[1, 2]));
    // Schedule A: p0, p1. Schedule B: p1, p0. Both scan first (reads
    // commute), so the configurations coincide while the traces differ.
    a.step(ProcessId(0)).unwrap();
    a.step(ProcessId(1)).unwrap();
    b.step(ProcessId(1)).unwrap();
    b.step(ProcessId(0)).unwrap();
    assert_ne!(a.trace().to_vec(), b.trace().to_vec());
    assert!(a.indistinguishable(&b));
    assert_eq!(a.config_fingerprint(), b.config_fingerprint());
}
