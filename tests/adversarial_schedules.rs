//! Targeted adversarial schedules for the simulation: forcing yields,
//! starving simulators, and reproducibility.

use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::protocols::racing::PhasedRacing;
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::snapshot::client::AugOutcome;

fn build(n: usize, m: usize, f: usize) -> Simulation<PhasedRacing> {
    let inputs: Vec<Value> = (1..=f as i64).map(Value::Int).collect();
    let config = SimulationConfig::new(n, m, f, 0);
    Simulation::new(config, inputs, move |i| {
        PhasedRacing::new(m, Value::Int(i as i64 + 1))
    })
    .unwrap()
}

fn yields_by(sim: &Simulation<PhasedRacing>, pid: usize) -> usize {
    sim.real()
        .oplog()
        .iter()
        .filter(|rec| {
            rec.pid == pid
                && matches!(&rec.outcome,
                    AugOutcome::BlockUpdate(b) if b.result.is_none())
        })
        .count()
}

#[test]
fn strict_alternation_forces_yields_on_the_higher_id() {
    // Strict H-step alternation maximizes interference: q1 experiences
    // yields (q0's appends land inside its Block-Updates), q0 never
    // does (Theorem 20).
    let mut total_q1_yields = 0;
    for shift in 0..4 {
        let mut sim = build(4, 2, 2);
        let mut turn = shift % 2;
        let mut stalled = 0;
        while !sim.all_terminated() && stalled < 4 {
            if sim.step(turn).unwrap() {
                stalled = 0;
            } else {
                stalled += 1;
            }
            turn = 1 - turn;
        }
        assert!(sim.all_terminated());
        assert_eq!(yields_by(&sim, 0), 0, "q0 must never yield");
        total_q1_yields += yields_by(&sim, 1);
    }
    assert!(
        total_q1_yields > 0,
        "expected q1 to yield under strict alternation"
    );
}

#[test]
fn solo_then_solo_schedule_is_contention_free() {
    // q1 runs alone to completion, then q0: nobody ever yields, and
    // both decide (q1 decides its own input; q0 sees q1's leftovers).
    let mut sim = build(4, 2, 2);
    while sim.output(1).is_none() {
        let progressed = sim.step(1).unwrap();
        // `step` may return false exactly when the simulator finishes
        // by local computation (no M-operation needed).
        assert!(progressed || sim.output(1).is_some(), "q1 stuck");
    }
    while sim.output(0).is_none() {
        let progressed = sim.step(0).unwrap();
        assert!(progressed || sim.output(0).is_some(), "q0 stuck");
    }
    assert_eq!(yields_by(&sim, 0) + yields_by(&sim, 1), 0);
    // q1 ran from the initial configuration: validity forces its own
    // input.
    assert_eq!(sim.output(1), Some(&Value::Int(2)));
    // q0's output is some simulator's input.
    let out0 = sim.output(0).unwrap();
    assert!(*out0 == Value::Int(1) || *out0 == Value::Int(2));
}

#[test]
fn deterministic_schedules_reproduce_exactly() {
    let run = || {
        let mut sim = build(6, 2, 3);
        let mut turn = 0;
        let mut stalled = 0;
        while !sim.all_terminated() && stalled < 6 {
            if sim.step(turn).unwrap() {
                stalled = 0;
            } else {
                stalled += 1;
            }
            turn = (turn + 1) % 3;
        }
        (sim.outputs(), sim.real().log().len(), sim.real().oplog().len())
    };
    assert_eq!(run(), run());
}

#[test]
fn starving_one_simulator_does_not_block_the_others() {
    // q2 never takes a step; q0 and q1 still terminate (wait-freedom
    // is per-process: no simulator depends on another's progress).
    let mut sim = build(6, 2, 3);
    let mut turn = 0;
    let mut stalled = 0;
    while (sim.output(0).is_none() || sim.output(1).is_none()) && stalled < 4 {
        if sim.step(turn).unwrap() {
            stalled = 0;
        } else {
            stalled += 1;
        }
        turn = 1 - turn;
    }
    assert!(sim.output(0).is_some());
    assert!(sim.output(1).is_some());
    assert!(sim.output(2).is_none(), "q2 took no steps");
    // Resume q2 alone: it finishes too.
    while sim.output(2).is_none() {
        let progressed = sim.step(2).unwrap();
        assert!(progressed || sim.output(2).is_some(), "q2 stuck");
    }
}

#[test]
fn mid_operation_preemption_is_harmless() {
    // Preempt q0 in the middle of each of its M-operations for a long
    // stretch (q1 runs 7 steps per q0 step): everything still
    // terminates and budgets hold.
    let mut sim = build(4, 2, 2);
    let mut k = 0u64;
    let mut stalled = 0;
    while !sim.all_terminated() && stalled < 16 {
        let turn = if k.is_multiple_of(8) { 0 } else { 1 };
        if sim.step(turn).unwrap() {
            stalled = 0;
        } else {
            stalled += 1;
        }
        k += 1;
    }
    assert!(sim.all_terminated());
    for i in 0..2 {
        let (_, bus) = sim.op_counts(i);
        let bound = revisionist_simulations::core::bounds::b_bound(2, i + 1);
        assert!((bus as u128) <= bound);
    }
}
