//! E7 integration: the Theorem 21(1) / Corollary 34 reduction for
//! ε-approximate agreement.
//!
//! Π̃ is the compressed midpoint protocol (n processes, m < n
//! components): wait-free by construction, ε-correct only when m ≥ n.
//! Two simulators extract a 2-process wait-free protocol; we check the
//! extraction is wait-free with few M-operations (the quantitative half
//! of Theorem 21), replays legally, and — for small ε — violates
//! ε-agreement, matching the impossibility side.

use revisionist_simulations::core::bounds;
use revisionist_simulations::core::replay;
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::protocols::approx::{rounds_for_epsilon, MidpointApprox};
use revisionist_simulations::smr::value::{Dyadic, Value};
use revisionist_simulations::tasks::agreement::ApproximateAgreement;
use revisionist_simulations::tasks::task::ColorlessTask;

fn build(
    n: usize,
    m: usize,
    f: usize,
    eps_exp: u32,
    inputs: &[Dyadic],
) -> Simulation<MidpointApprox> {
    let vals: Vec<Value> = inputs.iter().map(|&d| Value::Dyadic(d)).collect();
    let config = SimulationConfig::new(n, m, f, 0);
    let rounds = rounds_for_epsilon(eps_exp);
    let inputs2: Vec<Dyadic> = inputs.to_vec();
    Simulation::new(config, vals, move |i| {
        // Simulated process index: the simulation assigns simulator i's
        // input to all its processes. Slot choice cycles over m.
        MidpointApprox::compressed(i, m, inputs2[i], rounds)
    })
    .expect("feasible")
}

#[test]
fn extraction_is_wait_free_and_replays() {
    let inputs = [Dyadic::zero(), Dyadic::one()];
    for seed in 0..20 {
        let mut sim = build(4, 2, 2, 6, &inputs);
        sim.run_random(seed, 2_000_000).unwrap();
        assert!(sim.all_terminated(), "seed {seed}");
        let rounds = rounds_for_epsilon(6);
        let report = replay::validate(&sim, |i| {
            MidpointApprox::compressed(i, 2, [Dyadic::zero(), Dyadic::one()][i], rounds)
        })
        .unwrap();
        assert!(report.is_ok(), "seed {seed}: {:#?}", report.errors);
    }
}

#[test]
fn extracted_step_complexity_is_bounded() {
    // Lemma 31: each simulator applies at most 2·b(i)+1 M-operations;
    // H-steps at most (2f+7)·b(f)+3 per simulator.
    let inputs = [Dyadic::zero(), Dyadic::one()];
    let m = 2;
    let f = 2;
    for seed in 0..20 {
        let mut sim = build(4, m, f, 8, &inputs);
        sim.run_random(seed, 2_000_000).unwrap();
        for i in 0..f {
            let (scans, bus) = sim.op_counts(i);
            let b = bounds::b_bound(m, i + 1);
            assert!((bus as u128) <= b, "seed {seed}: q{i} {bus} BUs > {b}");
            assert!(
                (scans as u128) <= b + 1,
                "seed {seed}: q{i} {scans} scans > {}",
                b + 1
            );
        }
        // Total H-steps under the Lemma 31 bound.
        let total = sim.real().log().len() as u128;
        assert!(total <= f as u128 * bounds::simulation_step_bound(m, f));
    }
}

#[test]
fn small_epsilon_extraction_violates_the_task() {
    // ε = 2^-8 with m = 2 components among n = 4: the bound
    // min{⌊4/2⌋+1, …} = 3 > 2 = m, so no correct OF protocol exists at
    // this m; our Π̃ correspondingly fails, and the simulation
    // *extracts* a 2-process wait-free run whose outputs are > ε apart.
    let eps_exp = 8;
    let task = ApproximateAgreement::new(Dyadic::two_to_minus(eps_exp));
    let inputs = [Dyadic::zero(), Dyadic::one()];
    let input_vals: Vec<Value> = inputs.iter().map(|&d| Value::Dyadic(d)).collect();
    let mut found = false;
    for seed in 0..300 {
        let mut sim = build(4, 2, 2, eps_exp, &inputs);
        sim.run_random(seed, 2_000_000).unwrap();
        let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
        if task.validate(&input_vals, &outs).is_err() {
            found = true;
            break;
        }
    }
    assert!(found, "expected an ε-agreement violation in the extraction");
}

#[test]
fn outputs_always_stay_in_input_range() {
    // Range validity survives even in the broken regime (midpoints and
    // copies never leave [min, max]) — and so must the extraction.
    let task = ApproximateAgreement::new(Dyadic::one()); // only range matters
    let inputs = [Dyadic::zero(), Dyadic::one()];
    let input_vals: Vec<Value> = inputs.iter().map(|&d| Value::Dyadic(d)).collect();
    for seed in 0..30 {
        let mut sim = build(4, 2, 2, 6, &inputs);
        sim.run_random(seed, 2_000_000).unwrap();
        let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
        task.validate(&input_vals, &outs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn crossover_shapes_match_corollary_34() {
    // The measured upper-bound step complexity (2·log₂(1/ε) + 1) always
    // exceeds the L = ½·log₃(1/ε) lower bound, and the ratio is the
    // constant log₂3 ≈ 1.585 × 4.
    for eps_exp in [4u32, 8, 16, 24] {
        let upper = (2 * rounds_for_epsilon(eps_exp) + 1) as f64;
        let lower = bounds::approx_step_lower_bound(eps_exp);
        assert!(upper > lower, "eps_exp={eps_exp}: {upper} <= {lower}");
        let ratio = upper / lower;
        assert!(
            (6.0..7.5).contains(&ratio),
            "eps_exp={eps_exp}: ratio {ratio} drifted (expected ≈ 4·log₂3 ≈ 6.3)"
        );
    }
}
