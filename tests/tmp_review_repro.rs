//! Temporary review repro: are terminals/truncated deterministic across
//! thread counts when a violation is reported?

use revisionist_simulations::protocols::racing::racing_system;
use revisionist_simulations::smr::explore::{Explorer, Limits};
use revisionist_simulations::smr::process::ProcessId;
use revisionist_simulations::smr::system::System;
use revisionist_simulations::smr::value::Value;

fn racing3() -> System {
    racing_system(2, &[Value::Int(1), Value::Int(2), Value::Int(3)])
}

#[test]
fn violation_level_counts_across_threads() {
    let limits = Limits { max_depth: 64, max_configs: 20_000 };
    let mut mismatches = Vec::new();
    for (name, check) in [
        (
            "p0-decided-1-terminal",
            Box::new(|sys: &System| -> Option<String> {
                if sys.all_terminated() && sys.output(ProcessId(0)) == Some(Value::Int(1)) {
                    return Some("v".into());
                }
                None
            }) as Box<dyn Fn(&System) -> Option<String> + Sync>,
        ),
        (
            "p2-decided-any",
            Box::new(|sys: &System| -> Option<String> {
                sys.output(ProcessId(2)).map(|_| "v".into())
            }),
        ),
        (
            "p0-decided-any",
            Box::new(|sys: &System| -> Option<String> {
                sys.output(ProcessId(0)).map(|_| "v".into())
            }),
        ),
        (
            "p1-decided-2",
            Box::new(|sys: &System| -> Option<String> {
                (sys.output(ProcessId(1)) == Some(Value::Int(2))).then(|| "v".into())
            }),
        ),
        (
            "any-terminal",
            Box::new(|sys: &System| -> Option<String> {
                sys.all_terminated().then(|| "v".into())
            }),
        ),
    ] {
        let mut reports = Vec::new();
        for threads in [1usize, 2, 3, 4, 8, 16, 32] {
            let r = Explorer::new(limits)
                .with_threads(threads)
                .explore_parallel(&racing3(), &*check)
                .unwrap();
            reports.push((threads, r));
        }
        let (_, base) = reports[0].clone();
        for (threads, r) in &reports[1..] {
            if r.terminals != base.terminals
                || r.configs_visited != base.configs_visited
                || r.truncated != base.truncated
                || r.violation != base.violation
            {
                mismatches.push(format!(
                    "{name} threads={threads}: terminals {} vs {}, visited {} vs {}, truncated {} vs {}",
                    r.terminals, base.terminals,
                    r.configs_visited, base.configs_visited,
                    r.truncated, base.truncated,
                ));
            }
        }
        eprintln!(
            "{name}: base terminals={} visited={} viol_len={:?}",
            base.terminals,
            base.configs_visited,
            base.violation.as_ref().map(|(s, _)| s.len())
        );
    }
    assert!(mismatches.is_empty(), "MISMATCHES:\n{}", mismatches.join("\n"));
}
