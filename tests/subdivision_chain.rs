//! The subdivided-path structure of the approximate-agreement protocol
//! complex — the combinatorial content of the Hoest–Shavit \[36\] step
//! lower bound that Corollary 34 consumes, computed exactly.
//!
//! For the 2-process midpoint protocol with inputs {0, 1} and `r`
//! rounds, the terminal-configuration adjacency graph is a *path*:
//! `2·2^r + 1` nodes and exactly one fewer edges, connected, with
//! adjacent configurations' outputs exactly `2^{-r}` apart at most.
//! Crossing from the all-0 corner to the all-1 corner with ε-steps
//! needs `≥ 1/ε` nodes — so the protocol needs `Ω(log 1/ε)` rounds.

use revisionist_simulations::protocols::approx::approx_system;
use revisionist_simulations::protocols::racing::racing_system;
use revisionist_simulations::smr::explore::Limits;
use revisionist_simulations::smr::value::{Dyadic, Value};
use revisionist_simulations::tasks::chain::terminal_adjacency;
use std::collections::BTreeSet;

#[test]
fn approx_protocol_complex_is_a_subdivided_path() {
    for rounds in 1..=4u32 {
        let sys = approx_system(&[Dyadic::zero(), Dyadic::one()], rounds);
        let report = terminal_adjacency(
            &sys,
            Limits { max_depth: 40, max_configs: 3_000_000 },
        )
        .unwrap();
        assert!(!report.truncated, "rounds {rounds}: truncated");
        let nodes = report.nodes.len();
        let edges = report.edges.len();
        // The subdivided path: 2^{r+1} + 1 nodes for r ≥ 2 (3 at r = 1,
        // where both extremes coincide with the midpoint corner), with
        // nodes − 1 edges and a single component — a path.
        let expected = if rounds == 1 { 3 } else { (1 << (rounds + 1)) + 1 };
        assert_eq!(nodes, expected, "rounds {rounds}");
        assert_eq!(edges, nodes - 1, "rounds {rounds}");
        assert!(report.is_connected(), "rounds {rounds}");
        // Adjacent configurations' outputs differ by at most ε = 2^-r —
        // and exactly ε is attained (the bound is tight).
        assert_eq!(
            report.max_edge_spread(),
            Some(Dyadic::two_to_minus(rounds)),
            "rounds {rounds}"
        );
        // The corners are reached for r ≥ 2: some configuration outputs
        // 0 for both processes, some outputs 1 for both (the laggard
        // jumps to the finisher's final value; at r = 1 no round-2
        // entry exists to jump to, so the extreme outputs are 0 and 1
        // held by single processes only).
        let all = |v: Dyadic| {
            report.nodes.iter().any(|n| {
                n.outputs.iter().all(|o| *o == Value::Dyadic(v))
            })
        };
        if rounds >= 2 {
            assert!(all(Dyadic::zero()), "rounds {rounds}: missing 0-corner");
            assert!(all(Dyadic::one()), "rounds {rounds}: missing 1-corner");
        }
        // The extreme output values 0 and 1 appear regardless.
        let any = |v: Dyadic| {
            report.nodes.iter().any(|n| {
                n.outputs.contains(&Value::Dyadic(v))
            })
        };
        assert!(any(Dyadic::zero()) && any(Dyadic::one()), "rounds {rounds}");
        // Crossing the path in ε-steps forces ≥ 1/ε nodes.
        assert!(nodes >= 1 << rounds, "rounds {rounds}");
    }
}

#[test]
fn chain_node_count_doubles_per_round() {
    // The geometric growth that makes log(1/ε) rounds necessary:
    // from round 2 on, each round doubles the path length.
    let mut counts = Vec::new();
    for rounds in 2..=4u32 {
        let sys = approx_system(&[Dyadic::zero(), Dyadic::one()], rounds);
        let report = terminal_adjacency(
            &sys,
            Limits { max_depth: 40, max_configs: 3_000_000 },
        )
        .unwrap();
        counts.push(report.nodes.len());
    }
    for w in counts.windows(2) {
        assert_eq!(w[1] - 1, 2 * (w[0] - 1), "{counts:?}");
    }
}

#[test]
fn output_values_refine_dyadically() {
    // Distinct output values after r rounds: the dyadics of denominator
    // 2^r in [0, 1] (2^r + 1 of them).
    for rounds in 1..=3u32 {
        let sys = approx_system(&[Dyadic::zero(), Dyadic::one()], rounds);
        let report = terminal_adjacency(
            &sys,
            Limits { max_depth: 40, max_configs: 3_000_000 },
        )
        .unwrap();
        let values: BTreeSet<Value> = report
            .nodes
            .iter()
            .flat_map(|n| n.outputs.clone())
            .collect();
        assert_eq!(values.len(), (1 << rounds) + 1, "rounds {rounds}");
    }
}

#[test]
fn racing_consensus_chain_has_fatal_edges_below_the_bound() {
    // The FLP-flavored counterpart: the m = 1 racing "consensus" has a
    // connected chain whose corners decide differently — fatal edges
    // must exist (and they are exactly where agreement breaks).
    let inputs = [Value::Int(1), Value::Int(2)];
    let sys = racing_system(1, &inputs);
    let report = terminal_adjacency(
        &sys,
        Limits { max_depth: 30, max_configs: 2_000_000 },
    )
    .unwrap();
    assert!(report.is_connected());
    assert!(!report.disagreement_edges().is_empty());
}
