//! End-to-end tests of the `analyze` subcommand and the pre-flight
//! gate, plus golden diagnostic-output tests pinning each lint code's
//! rendered form, and a property test that Pass 2's happens-before
//! verdict agrees with the Wing–Gong linearizability checker.

use std::process::Command;

use rsim_protocols::illformed::illformed_system;
use rsim_protocols::racing::racing_system;
use rsim_smr::analyze::{self, AnalysisReport, Diagnostic, LintCode, LintConfig, Severity};
use rsim_smr::history::History;
use rsim_smr::linearizability::{check, LinCheck};
use rsim_smr::object::{Object, Response};
use rsim_smr::sched::Random;
use rsim_smr::value::Value;

use proptest::prelude::*;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_revisionist-simulations"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

// ---------------------------------------------------------------------
// Golden diagnostic output: the rendered form of every lint code is
// part of the tool's interface (scripts grep for it), so pin it.
// ---------------------------------------------------------------------

#[test]
fn golden_fixture_diagnostics_per_lint_code() {
    let (stdout, _, ok) = run(&["analyze", "--protocol", "illformed"]);
    assert!(!ok, "ill-formed fixture must fail analysis");
    let golden = [
        "error[RS-W001]: process p0 mutates obj0 component 1 owned by p1 \
         (single-writer discipline, §3)",
        "error[RS-W002]: process p1's solo write stream violates ABA-freedom: \
         ABA on object 0 component 1: value 1 reappears after Some(2)",
        "warning[RS-W003]: footprint m = 8 registers with n = 4 processes: \
         no (f, d) satisfies (f - d)*m + d <= n, so Theorem 21's reduction cannot fire",
        "warning[RS-W004]: process p2 produces no output within 256 solo steps: \
         remaining protocol steps are unreachable or its Block-Update never completes",
        "warning[RS-W005]: process p3 writes the reserved yield symbol Y via U[3]=() \
         at solo step 1",
        "warning[RS-W005]: process p3 outputs the reserved yield symbol Y",
        "warning[RS-W008]: 1 single-writer component slot(s) [obj0.1] are \
         plain-written by two or more processes, exceeding the Theorem 21 \
         covering budget d = 0 for (n = 4, m = 8): every block-write can be \
         obliterated",
        "error[RS-W006]: run (seed 0): runtime rejected p0's write to single-writer \
         component 1; process marked stuck",
        "analysis: 5 deny-level, 5 warn-level diagnostics",
    ];
    for line in golden {
        assert!(stdout.contains(line), "missing golden line {line:?} in:\n{stdout}");
    }
}

#[test]
fn golden_severity_prefixes_for_every_code() {
    // Every code renders under its default severity with the stable
    // `error[..]` / `warning[..]` prefix; RS-W007 has no fixture path
    // (legal runtime traces cannot tear a window) so it is pinned here.
    let expected = [
        (LintCode::SingleWriter, "error[RS-W001]: x"),
        (LintCode::AbaFreedom, "error[RS-W002]: x"),
        (LintCode::Footprint, "warning[RS-W003]: x"),
        (LintCode::DeadStep, "warning[RS-W004]: x"),
        (LintCode::YieldSymbol, "warning[RS-W005]: x"),
        (LintCode::HappensBefore, "error[RS-W006]: x"),
        (LintCode::BlockUpdateWindow, "error[RS-W007]: x"),
        (LintCode::StaticInterference, "warning[RS-W008]: x"),
        (LintCode::UnvalidatedRead, "warning[RS-W009]: x"),
        (LintCode::StaticSerializable, "warning[RS-W010]: x"),
    ];
    for (code, want) in expected {
        let d = Diagnostic {
            code,
            severity: code.default_severity(),
            message: "x".to_string(),
        };
        assert_eq!(d.to_string(), want);
    }
}

#[test]
fn allow_severity_drops_diagnostics_from_reports() {
    let mut config = LintConfig::default();
    config.set(LintCode::SingleWriter, Severity::Allow);
    let report = AnalysisReport::from_findings(
        vec![
            (LintCode::SingleWriter, "suppressed".to_string()),
            (LintCode::Footprint, "kept".to_string()),
        ],
        &config,
    );
    assert!(!report.has(LintCode::SingleWriter));
    assert!(report.has(LintCode::Footprint));
    assert_eq!(report.deny_count(), 0);
    assert_eq!(report.warn_count(), 1);
}

// ---------------------------------------------------------------------
// CLI acceptance: analyze subcommand.
// ---------------------------------------------------------------------

#[test]
fn analyze_reports_every_static_code_on_the_fixture() {
    let (stdout, _, ok) = run(&["analyze", "--protocol", "illformed"]);
    assert!(!ok);
    for code in [
        "RS-W001", "RS-W002", "RS-W003", "RS-W004", "RS-W005", "RS-W006", "RS-W008",
    ] {
        assert!(stdout.contains(code), "expected {code} in:\n{stdout}");
    }
}

#[test]
fn analyze_passes_shipped_protocols() {
    for protocol in ["racing", "contrarian"] {
        let (stdout, _, ok) = run(&["analyze", "--protocol", protocol]);
        assert!(ok, "{protocol} must analyze clean");
        assert!(stdout.contains("analysis: clean (0 warnings)"), "{protocol}:\n{stdout}");
    }
    // Ladder spends registers freely (adopt-commit pairs), so the
    // Theorem 21 footprint lint warns — but warnings don't gate.
    let (stdout, _, ok) = run(&["analyze", "--protocol", "ladder"]);
    assert!(ok);
    assert!(stdout.contains("warning[RS-W003]"));
    assert!(stdout.contains("analysis: clean (1 warnings)"));
}

#[test]
fn analyze_unknown_lint_code_fails_closed_with_known_list() {
    let (_, stderr, ok) = run(&["analyze", "--protocol", "racing", "--deny", "RS-W099"]);
    assert!(!ok);
    assert!(stderr.contains("unknown lint code"), "stderr:\n{stderr}");
    assert!(
        stderr.contains(
            "RS-W001, RS-W002, RS-W003, RS-W004, RS-W005, RS-W006, RS-W007, \
             RS-W008, RS-W009, RS-W010"
        ),
        "stderr must list every known code:\n{stderr}"
    );
}

#[test]
fn analyze_near_miss_lint_code_gets_a_suggestion() {
    let (_, stderr, ok) =
        run(&["analyze", "--protocol", "racing", "--deny", "RS-W09"]);
    assert!(!ok);
    assert!(
        stderr.contains("did you mean RS-W009?"),
        "stderr must suggest the nearest code:\n{stderr}"
    );
}

#[test]
fn analyze_conflicting_severities_fail_closed() {
    let (_, stderr, ok) = run(&[
        "analyze", "--protocol", "racing", "--deny", "RS-W003", "--allow", "RS-W003",
    ]);
    assert!(!ok);
    assert!(stderr.contains("two severities"), "stderr:\n{stderr}");
}

#[test]
fn analyze_allow_overrides_downgrade_fixture_denials() {
    let (stdout, _, ok) = run(&[
        "analyze",
        "--protocol",
        "illformed",
        "--allow",
        "RS-W001,RS-W002,RS-W006",
    ]);
    assert!(ok, "with every deny-level code allowed the fixture passes");
    assert!(stdout.contains("analysis: clean (5 warnings)"), "stdout:\n{stdout}");
}

#[test]
fn analyze_deny_escalates_static_interference_on_the_fixture() {
    // RS-W008 defaults to warn; --deny escalates it to a gating error
    // alongside the fixture's native denials.
    let (stdout, _, ok) =
        run(&["analyze", "--protocol", "illformed", "--deny", "RS-W008"]);
    assert!(!ok);
    assert!(stdout.contains("error[RS-W008]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("analysis: 6 deny-level, 4 warn-level diagnostics"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn analyze_allow_drops_static_interference_on_the_fixture() {
    let (stdout, _, _) =
        run(&["analyze", "--protocol", "illformed", "--allow", "RS-W008"]);
    assert!(!stdout.contains("RS-W008"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("analysis: 5 deny-level, 4 warn-level diagnostics"),
        "stdout:\n{stdout}"
    );
}

// ---------------------------------------------------------------------
// CLI acceptance: campaign pre-flight gate.
// ---------------------------------------------------------------------

#[test]
fn campaign_preflight_rejects_the_fixture() {
    let (_, stderr, ok) = run(&["campaign", "--protocol", "illformed", "--runs", "1"]);
    assert!(!ok);
    assert!(stderr.contains("pre-flight analysis rejected the system:"), "stderr:\n{stderr}");
    assert!(stderr.contains("error[RS-W001]"));
    assert!(stderr.contains("(--no-preflight runs the campaign anyway)"));
}

#[test]
fn campaign_no_preflight_reaches_the_runtime_guard() {
    let (stdout, _, ok) = run(&[
        "campaign", "--protocol", "illformed", "--runs", "1", "--no-preflight",
    ]);
    assert!(ok, "campaign records failures without failing the exit");
    assert!(
        stdout.contains("process 0 is not the owner of single-writer component 1"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn campaign_preflight_passes_clean_protocols() {
    let (stdout, stderr, ok) = run(&["campaign", "--protocol", "racing", "--runs", "2"]);
    assert!(ok);
    assert!(stderr.contains("preflight: ok (0 warnings)"), "stderr:\n{stderr}");
    assert!(stdout.contains("campaign: protocol=racing"));
}

// ---------------------------------------------------------------------
// Agreement property: on traces from a seeded mini-campaign, Pass 2's
// happens-before verdict matches the Wing–Gong linearizability checker
// — clean traces pass both, a corrupted scan view fails both.
// ---------------------------------------------------------------------

fn history_of(events: &[rsim_smr::system::Event]) -> History {
    let mut h = History::new();
    for e in events {
        let id = h.invoke(e.pid.0, e.op.clone());
        h.respond(id, e.resp.clone());
    }
    h
}

proptest! {
    #[test]
    fn hb_verdict_agrees_with_linearizability(seed in 0u64..40) {
        let inputs = [Value::Int(1), Value::Int(2)];
        let initial = racing_system(2, &inputs);
        let mut sys = initial.clone();
        let mut sched = Random::seeded(seed);
        // Bounded prefix: every prefix of a run is itself a valid
        // execution, and it keeps the history under the Wing–Gong
        // checker's 128-record cap.
        sys.run(&mut sched, 40).expect("clean protocol steps without error");
        let events = sys.trace().to_vec();
        prop_assert!(events.len() < 128);

        // Violation-free trace: both verdicts clean.
        let hb = analyze::check_execution(&initial, &events);
        prop_assert!(hb.is_empty(), "hb findings on honest trace: {hb:?}");
        prop_assert!(matches!(
            check(&history_of(&events), Object::snapshot(2)),
            LinCheck::Linearizable(_)
        ));

        // Corrupt the first scan's view with a value nobody ever
        // writes: both checkers must flag the trace.
        if let Some(pos) = events
            .iter()
            .position(|e| matches!(e.resp, Response::View(_)))
        {
            let mut bad = events.clone();
            bad[pos].resp = Response::View(vec![Value::Int(99), Value::Int(99)]);
            let hb_bad = analyze::check_execution(&initial, &bad);
            prop_assert!(!hb_bad.is_empty(), "hb missed the corrupted view");
            prop_assert!(matches!(
                check(&history_of(&bad), Object::snapshot(2)),
                LinCheck::NotLinearizable
            ));
        }
    }
}

#[test]
fn preflight_library_entry_rejects_the_fixture() {
    let err = analyze::preflight(&illformed_system(), &LintConfig::default())
        .expect_err("fixture must be rejected");
    let text = err.to_string();
    assert!(text.contains("pre-flight analysis rejected the system"));
    assert!(text.contains("RS-W001") && text.contains("RS-W002"));
}

// ---------------------------------------------------------------------
// Analyzer/fuzz interplay: the generator's analyzer-reject mutants must
// trip their exact lint codes through the CLI, with the same stable
// rendered form scripts grep for — and gen bases must analyze clean.
// ---------------------------------------------------------------------

#[test]
fn golden_gen_trespass_write_trips_single_writer() {
    let (stdout, _, ok) = run(&["analyze", "--protocol", "gen:7:trespass-write"]);
    assert!(!ok, "trespassing mutant must fail analysis");
    // Pass 1 catches the static trespass; Pass 2's driven run also sees
    // the runtime rejection, so both codes pin here.
    for line in [
        "error[RS-W001]: process p0 mutates obj0 component 1 owned by p1 \
         (single-writer discipline, §3)",
        "error[RS-W006]: run (seed 0): runtime rejected p0's write to \
         single-writer component 1; process marked stuck",
    ] {
        assert!(stdout.contains(line), "missing golden line {line:?} in:\n{stdout}");
    }
}

#[test]
fn golden_gen_aba_reuse_trips_aba_freedom() {
    let (stdout, _, ok) = run(&["analyze", "--protocol", "gen:7:aba-reuse"]);
    assert!(!ok, "ABA mutant must fail analysis");
    let line = "error[RS-W002]: process p0's solo write stream violates \
                ABA-freedom: ABA on object 0 component 0: value 1001 \
                reappears after Some(1002)";
    assert!(stdout.contains(line), "missing golden line {line:?} in:\n{stdout}");
}

#[test]
fn golden_gen_yield_leak_trips_yield_symbol_when_denied() {
    // The fuzz harness escalates RS-W005 to deny; mirror that here.
    let (stdout, _, ok) = run(&[
        "analyze", "--protocol", "gen:7:yield-leak", "--deny", "RS-W005",
    ]);
    assert!(!ok, "yield-leak mutant must fail analysis under --deny RS-W005");
    let line = "error[RS-W005]: process p0 writes the reserved yield symbol Y \
                via U[0]=() at solo step 1";
    assert!(stdout.contains(line), "missing golden line {line:?} in:\n{stdout}");
}

#[test]
fn gen_bases_analyze_clean() {
    for seed in ["0", "7", "41"] {
        let (stdout, _, ok) = run(&["analyze", "--protocol", &format!("gen:{seed}")]);
        assert!(ok, "gen base {seed} must analyze clean:\n{stdout}");
        assert!(
            stdout.contains("analysis: clean"),
            "gen:{seed} not clean:\n{stdout}"
        );
    }
}

// ---------------------------------------------------------------------
// Pass 3 (static interference): --explain, --matrix, and the RS-W009 /
// RS-W010 fixtures.
// ---------------------------------------------------------------------

#[test]
fn analyze_explain_prints_the_paper_rationale() {
    for code in ["RS-W001", "RS-W008", "RS-W009", "RS-W010"] {
        let (stdout, _, ok) = run(&["analyze", "--explain", code]);
        assert!(ok, "--explain {code} must succeed");
        assert!(stdout.starts_with(&format!("{code}: ")), "stdout:\n{stdout}");
        // Every rationale cites the paper clause it descends from.
        assert!(
            stdout.contains('§') || stdout.contains("Theorem") || stdout.contains("Corollary"),
            "--explain {code} cites no paper clause:\n{stdout}"
        );
    }
}

#[test]
fn analyze_explain_unknown_code_exits_nonzero_with_suggestion() {
    let (stdout, stderr, ok) = run(&["analyze", "--explain", "RS-W09"]);
    assert!(!ok, "unknown --explain code must exit 1");
    assert!(stdout.is_empty(), "no partial rationale on stdout:\n{stdout}");
    assert!(stderr.contains("did you mean RS-W009?"), "stderr:\n{stderr}");
}

#[test]
fn analyze_matrix_prints_the_independence_grid() {
    let (stdout, _, ok) =
        run(&["analyze", "--protocol", "serializable", "--procs", "3", "--matrix"]);
    assert!(ok);
    assert!(
        stdout.contains("static independence matrix (n = 3)"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("3 statically independent pair(s) of 3"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn analyze_serializable_fixture_warns_w010() {
    let (stdout, _, ok) = run(&["analyze", "--protocol", "serializable"]);
    assert!(ok, "RS-W010 is warn-level by default");
    let line = "warning[RS-W010]: interference graph is edge-free: every \
                schedule is equivalent to the solo runs, exploration adds \
                nothing; solo verdicts: p0 → 1, p1 → 2, p2 → 3";
    assert!(stdout.contains(line), "missing golden line {line:?} in:\n{stdout}");
    assert!(stdout.contains("analysis: clean (1 warnings)"), "stdout:\n{stdout}");
}

#[test]
fn analyze_deny_w010_gates_the_serializable_fixture() {
    let (stdout, _, ok) =
        run(&["analyze", "--protocol", "serializable", "--deny", "RS-W010"]);
    assert!(!ok, "--deny RS-W010 must gate the edge-free fixture");
    assert!(stdout.contains("error[RS-W010]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("analysis: 1 deny-level, 0 warn-level diagnostics"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn unvalidated_single_read_trips_w009() {
    use rsim_smr::object::ObjectId;
    use rsim_smr::process::{
        Process, ProtocolStep, SnapshotProcess, SnapshotProtocol,
    };
    use rsim_smr::system::System;

    // p0 writes its slot (scanning on the way, twice overall); p1 scans
    // exactly once and decides on whatever it saw — the unvalidated
    // read-after-write shape RS-W009 is about.
    #[derive(Clone, Debug)]
    struct WriteThenOut {
        wrote: bool,
    }
    impl SnapshotProtocol for WriteThenOut {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(5))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }
    #[derive(Clone, Debug)]
    struct ReadOnce;
    impl SnapshotProtocol for ReadOnce {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            ProtocolStep::Output(view[0].clone())
        }
        fn components(&self) -> usize {
            1
        }
    }
    let sys = System::new(
        vec![Object::snapshot(1)],
        vec![
            Box::new(SnapshotProcess::new(WriteThenOut { wrote: false }, ObjectId(0)))
                as Box<dyn Process>,
            Box::new(SnapshotProcess::new(ReadOnce, ObjectId(0))),
        ],
    );
    let findings = analyze::interfere_system(&sys, analyze::DEFAULT_BUDGET);
    let (code, message) = findings
        .iter()
        .find(|(code, _)| *code == LintCode::UnvalidatedRead)
        .expect("RS-W009 must fire on the single-scan reader");
    let rendered = Diagnostic {
        code: *code,
        severity: code.default_severity(),
        message: message.clone(),
    }
    .to_string();
    assert_eq!(
        rendered,
        "warning[RS-W009]: process p1 reads obj0 component 0 (written by p0) \
         exactly once in its solo run and never validates it against a \
         concurrent install"
    );
}
