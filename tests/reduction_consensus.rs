//! E6 integration: the Corollary 33 reduction, end to end.
//!
//! For a grid of (n, m, f): partition feasibility must coincide with
//! `m < bound`; feasible simulations must be wait-free under round-robin
//! and random schedules; every finished run must pass the Lemma 26/27
//! replay; equal inputs must force valid outputs; and below the bound
//! some schedule must extract a consensus violation.

use revisionist_simulations::core::bounds;
use revisionist_simulations::core::replay;
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::protocols::racing::PhasedRacing;
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::tasks::agreement::{consensus, KSetAgreement};
use revisionist_simulations::tasks::task::ColorlessTask;

fn build(n: usize, m: usize, inputs: &[i64], d: usize) -> Simulation<PhasedRacing> {
    let vals: Vec<Value> = inputs.iter().map(|&v| Value::Int(v)).collect();
    let config = SimulationConfig::new(n, m, inputs.len(), d);
    let vals2 = vals.clone();
    Simulation::new(config, vals, move |i| PhasedRacing::new(m, vals2[i].clone()))
        .expect("feasible")
}

#[test]
fn feasibility_grid_matches_corollary_33() {
    for n in 2..=24 {
        for k in 1..n.min(6) {
            for x in 1..=k {
                let bound = bounds::kset_space_lower_bound(n, k, x);
                for m in 1..=n {
                    assert_eq!(
                        bounds::simulation_feasible(n, m, k + 1, x),
                        m < bound,
                        "n={n} k={k} x={x} m={m}"
                    );
                }
            }
        }
    }
}

#[test]
fn simulation_is_wait_free_on_many_schedules() {
    for seed in 0..40 {
        let mut sim = build(4, 2, &[1, 2], 0);
        sim.run_random(seed, 2_000_000).unwrap();
        assert!(sim.all_terminated(), "seed {seed}: simulation must be wait-free");
    }
}

#[test]
fn every_finished_run_passes_the_replay() {
    for seed in 0..25 {
        let mut sim = build(4, 2, &[1, 2], 0);
        sim.run_random(seed, 2_000_000).unwrap();
        let report =
            replay::validate(&sim, |i| PhasedRacing::new(2, Value::Int([1, 2][i])))
                .unwrap();
        assert!(report.is_ok(), "seed {seed}: {:#?}", report.errors);
    }
}

#[test]
fn below_bound_extracts_consensus_violation() {
    let inputs = [Value::Int(1), Value::Int(2)];
    let mut found = false;
    for seed in 0..300 {
        let mut sim = build(4, 2, &[1, 2], 0);
        sim.run_random(seed, 2_000_000).unwrap();
        let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
        if consensus().validate(&inputs, &outs).is_err() {
            found = true;
            // The violating run must STILL satisfy Lemma 26/27: the
            // extracted execution is a legal execution of Π.
            let report =
                replay::validate(&sim, |i| PhasedRacing::new(2, Value::Int([1, 2][i])))
                    .unwrap();
            assert!(report.is_ok(), "{:#?}", report.errors);
            break;
        }
    }
    assert!(found, "no schedule extracted a violation");
}

#[test]
fn equal_inputs_always_agree() {
    for seed in 0..20 {
        let mut sim = build(4, 2, &[7, 7], 0);
        sim.run_random(seed, 2_000_000).unwrap();
        for out in sim.outputs() {
            assert_eq!(out, Some(Value::Int(7)), "seed {seed}");
        }
    }
}

#[test]
fn kset_reduction_with_three_simulators() {
    // k = 2: f = 3 simulators, m = 2 components, n = 6 processes
    // (bound for n=6, k=2, x=1 is ⌊5/2⌋+1 = 3 > m = 2; partition uses
    // 3·2 = 6 ≤ 6 processes). The extracted 3-process protocol is
    // wait-free; wait-free 2-set agreement among 3 processes is
    // impossible, and indeed some schedules produce 3 distinct outputs.
    // We feed the escalation-free racing variant, whose violations are
    // easier to reach (~3% of seeds; the escalating variant violates in
    // ~0.25%).
    let inputs = [Value::Int(1), Value::Int(2), Value::Int(3)];
    let task = KSetAgreement::new(2);
    let mut violations = 0;
    for seed in 0..200 {
        let vals = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let config = SimulationConfig::new(6, 2, 3, 0);
        let mut sim = Simulation::new(config, vals, |i| {
            PhasedRacing::without_escalation(2, Value::Int([1, 2, 3][i]))
        })
        .unwrap();
        sim.run_random(seed, 8_000_000).unwrap();
        assert!(sim.all_terminated(), "seed {seed}");
        let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
        if task.validate(&inputs, &outs).is_err() {
            violations += 1;
        }
    }
    assert!(violations > 0, "expected some 2-set agreement violations");
}

#[test]
fn mixed_direct_covering_wait_free() {
    // x-obstruction-free shape: d = 1 direct simulator.
    for seed in 0..15 {
        let mut sim = build(5, 2, &[1, 2, 3], 1);
        sim.run_random(seed, 4_000_000).unwrap();
        assert!(sim.all_terminated(), "seed {seed}");
        let report = replay::validate(&sim, |i| {
            PhasedRacing::new(2, Value::Int([1, 2, 3][i]))
        })
        .unwrap();
        assert!(report.is_ok(), "seed {seed}: {:#?}", report.errors);
    }
}

#[test]
fn block_update_budgets_hold_across_the_grid() {
    for (n, m, f) in [(4, 2, 2), (6, 2, 3), (6, 3, 2)] {
        for seed in 0..10 {
            let inputs: Vec<i64> = (1..=f as i64).collect();
            let mut sim = build(n, m, &inputs, 0);
            sim.run_random(seed, 8_000_000).unwrap();
            for i in 0..f {
                let (_, bus) = sim.op_counts(i);
                assert!(
                    (bus as u128) <= bounds::b_bound(m, i + 1),
                    "n={n} m={m} f={f} seed={seed}: q{i} applied {bus} > b({})",
                    i + 1
                );
            }
        }
    }
}

#[test]
#[ignore = "extended stress campaign (~minutes); run with: cargo test -- --ignored"]
fn extended_stress_campaign() {
    use revisionist_simulations::core::stats;
    use revisionist_simulations::core::simulation::SimulationConfig;
    for (n, m, f) in [(4usize, 2usize, 2usize), (6, 2, 3), (6, 3, 2), (8, 2, 4), (9, 3, 3)] {
        let config = SimulationConfig::new(n, m, f, 0);
        let inputs: Vec<Value> = (1..=f as i64).map(Value::Int).collect();
        let point = stats::sweep(
            config,
            &inputs,
            move |i| PhasedRacing::new(m, Value::Int(i as i64 + 1)),
            &consensus(),
            0..500,
            100_000_000,
        )
        .unwrap();
        assert_eq!(point.wait_free, point.runs, "wait-freedom at {n},{m},{f}");
        assert_eq!(point.replay_ok, point.runs, "replay at {n},{m},{f}");
        assert!(point.budgets_hold(), "budgets at {n},{m},{f}: {point:?}");
        eprintln!("{}", point.row());
    }
}

#[test]
fn simulator_zero_never_sees_yields() {
    // Theorem 20 feeding Lemma 30: q0's Block-Updates are all atomic,
    // so its count stays within a(m).
    for seed in 0..10 {
        let mut sim = build(4, 2, &[1, 2], 0);
        sim.run_random(seed, 2_000_000).unwrap();
        let (_, bus) = sim.op_counts(0);
        assert!((bus as u128) <= bounds::a_bound(2, 2));
    }
}
