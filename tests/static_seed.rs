//! Static-seeding acceptance over the protocol-family fixtures:
//! seeding the DPOR explorer with the precomputed independence matrix
//! must be report-invisible on racing, contrarian, ladder, and the
//! serializable fixture — and `--no-static` × `--no-dpor` must compose
//! (all four combinations reach identical verdicts).

use revisionist_simulations::protocols::contrarian::contrarian_system;
use revisionist_simulations::protocols::ladder::ladder_system;
use revisionist_simulations::protocols::racing::racing_system;
use revisionist_simulations::protocols::serializable::serializable_system;
use revisionist_simulations::smr::explore::{Explorer, ExploreReport, Limits};
use revisionist_simulations::smr::system::System;
use revisionist_simulations::smr::value::Value;

const LIMITS: Limits = Limits { max_depth: 10, max_configs: 5_000_000 };

fn families() -> Vec<(&'static str, System)> {
    let inputs = [Value::Int(1), Value::Int(2), Value::Int(3)];
    vec![
        ("racing", racing_system(2, &inputs)),
        ("contrarian", contrarian_system(&[true, false, true])),
        ("ladder", ladder_system(&inputs, 2)),
        ("serializable", serializable_system(&[1, 2, 3])),
    ]
}

fn explore(sys: &System, dpor: bool, statics: bool, threads: usize) -> ExploreReport {
    Explorer::new(LIMITS)
        .with_threads(threads)
        .with_dpor(dpor)
        .with_static(statics)
        .explore_parallel(sys, &|_| None)
        .unwrap()
}

/// Seeding on vs off at 1 and 4 threads: every observable identical on
/// every family (the matrix is a prefilter, never an oracle).
#[test]
fn seeding_is_report_invisible_on_every_family() {
    for (name, sys) in families() {
        for threads in [1usize, 4] {
            let on = explore(&sys, true, true, threads);
            let off = explore(&sys, true, false, threads);
            let label = format!("{name} threads={threads}");
            assert!(on.static_seed, "{label}");
            assert!(!off.static_seed, "{label}");
            assert_eq!(on.configs_visited, off.configs_visited, "{label}: visited");
            assert_eq!(on.terminals, off.terminals, "{label}: terminals");
            assert_eq!(on.pruned, off.pruned, "{label}: pruned");
            assert_eq!(on.truncated, off.truncated, "{label}: truncated");
            assert_eq!(on.violation, off.violation, "{label}: violation");
        }
    }
}

/// `--no-static` and `--no-dpor` compose: all four combinations reach
/// the same verdict (visited set, terminals, truncation, violation).
/// Pruning and prefilter stats legitimately differ — without DPOR
/// there is no reduction and no matrix; that is asserted too.
#[test]
fn no_static_and_no_dpor_compose() {
    for (name, sys) in families() {
        let combos: Vec<(bool, bool, ExploreReport)> = [true, false]
            .iter()
            .flat_map(|&dpor| {
                [true, false].map(|statics| (dpor, statics, explore(&sys, dpor, statics, 1)))
            })
            .collect();
        let base = &combos[0].2;
        for (dpor, statics, report) in &combos {
            let label = format!("{name} dpor={dpor} static={statics}");
            assert_eq!(report.configs_visited, base.configs_visited, "{label}: visited");
            assert_eq!(report.terminals, base.terminals, "{label}: terminals");
            assert_eq!(report.truncated, base.truncated, "{label}: truncated");
            assert_eq!(report.violation, base.violation, "{label}: violation");
            // The matrix only arms when DPOR does: static seeding is a
            // DPOR accelerator, not an independent reduction.
            assert_eq!(report.static_seed, *dpor && *statics, "{label}: static_seed");
            if !report.static_seed {
                assert_eq!(report.prefilter_hits, 0, "{label}: hits without seeding");
                assert_eq!(report.static_indep_pairs, 0, "{label}: matrix without seeding");
            }
            if !dpor {
                assert_eq!(report.pruned, 0, "{label}: pruning without dpor");
            }
        }
    }
}

/// The serializable fixture is the one family with a fully edge-free
/// matrix: every pair prefilters, DPOR collapses the exploration to
/// (essentially) one interleaving, and the report says so.
#[test]
fn serializable_family_is_fully_prefiltered() {
    let sys = serializable_system(&[1, 2, 3, 4]);
    let report = explore(&sys, true, true, 1);
    assert!(report.static_seed);
    assert_eq!(report.static_indep_pairs, 6, "all C(4,2) pairs independent");
    assert!(report.prefilter_hits > 0, "the matrix answered pair queries");
    assert_eq!(report.terminals, 1, "one equivalence class of schedules");
    assert!(report.pruned > 0, "the reduction actually pruned forks");
    assert!(report.violation.is_none());
}
