//! End-to-end tests of the `revisionist-simulations` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_revisionist-simulations"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn bounds_table_prints() {
    let (stdout, _, ok) = run(&["bounds"]);
    assert!(ok);
    assert!(stdout.contains("lower"));
    assert!(stdout.contains("64"));
}

#[test]
fn bounds_grid_point_shows_mechanism() {
    let (stdout, _, ok) = run(&["bounds", "8", "2", "1"]);
    assert!(ok);
    assert!(stdout.contains("lower bound (Corollary 33): 4"));
    assert!(stdout.contains("feasible"));
    assert!(stdout.contains("infeasible"));
}

#[test]
fn bounds_rejects_bad_parameters() {
    let (_, stderr, ok) = run(&["bounds", "4", "9", "1"]);
    assert!(!ok);
    assert!(stderr.contains("need 1 <= x <= k < n"));
}

#[test]
fn simulate_runs_and_replays() {
    let (stdout, _, ok) =
        run(&["simulate", "--n", "4", "--m", "2", "--f", "2", "--seed", "3"]);
    assert!(ok);
    assert!(stdout.contains("H-steps"));
    assert!(stdout.contains("Lemma 26/27 replay: LEGAL"));
}

#[test]
fn simulate_seed_4_extracts_the_violation() {
    // Seed values index the vendored StdRng stream (shims/rand); seed 4
    // is a schedule whose extracted outputs violate consensus.
    let (stdout, _, ok) =
        run(&["simulate", "--n", "4", "--m", "2", "--f", "2", "--seed", "4"]);
    assert!(ok);
    assert!(stdout.contains("EXTRACTED VIOLATION"));
}

#[test]
fn simulate_rejects_infeasible() {
    let (_, stderr, ok) = run(&["simulate", "--n", "4", "--m", "3", "--f", "2"]);
    assert!(!ok);
    assert!(stderr.contains("infeasible"));
}

#[test]
fn aug_spec_checks() {
    let (stdout, _, ok) = run(&["aug", "--f", "3", "--m", "2", "--seed", "1"]);
    assert!(ok);
    assert!(stdout.contains("SATISFIED"));
}

#[test]
fn audit_reports_impossible_with_evidence() {
    let (stdout, _, ok) = run(&[
        "audit", "--n", "4", "--k", "1", "--x", "1", "--m", "2", "--schedules",
        "100",
    ]);
    assert!(ok);
    assert!(stdout.contains("IMPOSSIBLE"));
    assert!(stdout.contains("evidence"));
}

#[test]
fn audit_reports_consistent_at_the_bound() {
    let (stdout, _, ok) =
        run(&["audit", "--n", "4", "--k", "1", "--x", "1", "--m", "4"]);
    assert!(ok);
    assert!(stdout.contains("CONSISTENT"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn sweep_prints_a_row() {
    let (stdout, _, ok) =
        run(&["sweep", "--n", "4", "--m", "2", "--f", "2", "--runs", "20"]);
    assert!(ok);
    assert!(stdout.contains("budgets hold: true"));
}

#[test]
fn campaign_malformed_sched_fails_with_hint() {
    let (_, stderr, ok) = run(&["campaign", "--sched", "bogus:7"]);
    assert!(!ok);
    assert!(stderr.contains("bad spec `bogus:7`"));
    assert!(stderr.contains("valid --sched specs"), "stderr was: {stderr}");
}

#[test]
fn campaign_faults_sweep_certifies() {
    let (stdout, _, ok) = run(&[
        "campaign", "--faults", "sweep", "--procs", "3", "--runs", "2",
        "--budget", "2000", "--sched", "rr",
    ]);
    assert!(ok);
    assert!(stdout.contains("fault campaign: base=rr plans=18"));
    assert!(stdout.contains("CERTIFIED"), "stdout was: {stdout}");
}

#[test]
fn campaign_faults_json_reports_certification() {
    let (stdout, _, ok) = run(&[
        "campaign", "--faults", "crash@0:1,stall@1:0-3+crash@2:2", "--runs", "2",
        "--budget", "2000", "--json",
    ]);
    assert!(ok);
    assert!(stdout.contains("\"certified\": true"), "stdout was: {stdout}");
    assert!(stdout.contains("\"plans\": 2"));
}

#[test]
fn campaign_malformed_faults_fails_with_hint() {
    let (_, stderr, ok) = run(&["campaign", "--faults", "crash@oops"]);
    assert!(!ok);
    assert!(stderr.contains("bad spec"));
    assert!(stderr.contains("valid --faults"), "stderr was: {stderr}");
}

#[test]
fn campaign_checkpoint_resume_round_trips() {
    let dir = std::env::temp_dir().join(format!("rsim-cli-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cli.checkpoint.json");
    let path_str = path.to_str().unwrap();
    let (stdout, _, ok) = run(&[
        "campaign", "--runs", "20", "--stop-after", "7", "--checkpoint", path_str,
    ]);
    assert!(ok);
    assert!(stdout.contains("TRUNCATED"), "stdout was: {stdout}");
    let (resumed, _, ok) = run(&["campaign", "--runs", "20", "--resume", path_str]);
    assert!(ok);
    assert!(!resumed.contains("TRUNCATED"));
    let (full, _, ok) = run(&["campaign", "--runs", "20"]);
    assert!(ok);
    // The aggregate lines must be bit-for-bit those of the one-shot run.
    let line = |s: &str| s.lines().nth(1).unwrap().to_string();
    assert_eq!(line(&resumed), line(&full));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aug_certify_checks_every_placement() {
    let (stdout, _, ok) = run(&["aug", "--f", "3", "--m", "2", "--certify"]);
    assert!(ok);
    assert!(
        stdout.contains("36 placements"),
        "crash+stall sweep doubles the 18-placement crash space: {stdout}"
    );
    assert!(stdout.contains("crash/stall"), "stdout was: {stdout}");
    assert!(stdout.contains("CERTIFIED"), "stdout was: {stdout}");
}

#[test]
fn campaign_resume_refuses_a_checkpoint_from_another_campaign() {
    let dir = std::env::temp_dir()
        .join(format!("rsim-cli-resume-mismatch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mismatch.checkpoint.json");
    let path_str = path.to_str().unwrap();
    let (_, _, ok) = run(&[
        "campaign", "--runs", "10", "--budget", "500", "--checkpoint", path_str,
    ]);
    assert!(ok);
    // Same checkpoint file, different campaign shape: fail closed with
    // a structured error naming both identities.
    let (_, stderr, ok) = run(&[
        "campaign", "--runs", "12", "--budget", "500", "--resume", path_str,
    ]);
    assert!(!ok, "mismatched resume must be refused");
    assert!(stderr.contains("cannot resume"), "stderr was: {stderr}");
    assert!(stderr.contains("resume mismatch"), "stderr was: {stderr}");
    assert!(
        stderr.contains("seeds=0+10") && stderr.contains("seeds=0+12"),
        "both campaign identities must be named: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
