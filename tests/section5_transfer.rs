//! E8/E9 integration: the §5 transfer — nondeterministic solo
//! terminating protocols inherit every obstruction-free space lower
//! bound.
//!
//! The chain exercised here: a randomized (nondeterministic) protocol
//! over an m-component snapshot → Theorem 35 determinization Π′ over
//! the *same* object → Π′ is obstruction-free → the Theorem 21
//! reduction applies to Π′'s space. Plus the Corollary 36 ABA-free
//! tagging for multi-register protocols.

use revisionist_simulations::smr::explore::{Explorer, Limits};
use revisionist_simulations::smr::object::{Object, ObjectId};
use revisionist_simulations::smr::process::{Process, ProcessId, SnapshotProcess};
use revisionist_simulations::smr::sched::{Obstruction, Random};
use revisionist_simulations::smr::system::System;
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::solo::aba::{check_aba_freedom, AbaTagged};
use revisionist_simulations::solo::convert::{determinized_system, shortest_solo_path};
use revisionist_simulations::solo::machine::{EpState, NondetMachine, RandomizedRacing};
use revisionist_simulations::protocols::racing::PhasedRacing;
use std::sync::Arc;

#[test]
fn determinization_preserves_space_across_m() {
    for m in 1..=4 {
        let machine = Arc::new(RandomizedRacing::new(m));
        let sys = determinized_system(machine, &[Value::Int(1)], 50_000);
        assert_eq!(sys.space_complexity(), m);
    }
}

#[test]
fn determinized_protocol_is_obstruction_free_small_grid() {
    for m in 1..=2 {
        for inputs in [vec![Value::Int(1)], vec![Value::Int(1), Value::Int(2)]] {
            let machine = Arc::new(RandomizedRacing::new(m));
            let sys = determinized_system(Arc::clone(&machine), &inputs, 50_000);
            let explorer =
                Explorer::new(Limits { max_depth: 10, max_configs: 50_000 });
            let report = explorer.check_solo_termination(&sys, 50).unwrap();
            assert!(
                report.is_clean(),
                "m={m}, {} procs: {:?}",
                inputs.len(),
                report.violation
            );
        }
    }
}

#[test]
fn determinized_protocol_terminates_under_obstruction_adversary() {
    let machine = Arc::new(RandomizedRacing::new(2));
    for seed in 0..10 {
        let mut sys = determinized_system(
            Arc::clone(&machine),
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
            50_000,
        );
        let mut sched = Obstruction::new(1, 30, 200, seed);
        sys.run(&mut sched, 300_000).unwrap();
        assert!(sys.all_terminated(), "seed {seed}");
    }
}

#[test]
fn solo_path_lengths_decrease_along_determinized_runs() {
    // The Theorem 35 invariant: with every solo step the shortest-path
    // length drops by one.
    let machine = Arc::new(RandomizedRacing::new(2));
    let mut sys = determinized_system(Arc::clone(&machine), &[Value::Int(5)], 50_000);
    let start = EpState::initial(machine.initial(&Value::Int(5)), 2);
    let expected = shortest_solo_path(machine.as_ref(), &start, 50_000).unwrap();
    let mut steps = 0;
    while !sys.is_terminated(ProcessId(0)) {
        sys.step(ProcessId(0)).unwrap();
        steps += 1;
        assert!(steps <= expected + 1, "solo run exceeded the shortest path");
    }
    assert_eq!(steps, expected, "solo run should follow a shortest path");
}

#[test]
fn tagged_protocols_are_aba_free_under_all_tested_schedules() {
    for seed in 0..30 {
        let processes: Vec<Box<dyn Process>> = (0..3)
            .map(|i| {
                Box::new(SnapshotProcess::new(
                    AbaTagged::new(PhasedRacing::new(2, Value::Int(i as i64)), i),
                    ObjectId(0),
                )) as Box<dyn Process>
            })
            .collect();
        let mut sys = System::new(vec![Object::snapshot(2)], processes);
        sys.run(&mut Random::seeded(seed), 100_000).unwrap();
        check_aba_freedom(sys.trace()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn nondeterminism_is_real_but_determinization_is_deterministic() {
    // Same schedule twice ⇒ identical traces (Π′ is deterministic),
    // even though Π has branching transitions.
    let machine = Arc::new(RandomizedRacing::new(2));
    let inputs = [Value::Int(1), Value::Int(2)];
    let mut a = determinized_system(Arc::clone(&machine), &inputs, 50_000);
    let mut b = determinized_system(Arc::clone(&machine), &inputs, 50_000);
    a.run(&mut Random::seeded(11), 20_000).unwrap();
    b.run(&mut Random::seeded(11), 20_000).unwrap();
    assert_eq!(a.trace(), b.trace());
    // And Π branches: some state has at least two successors.
    let s = machine.initial(&Value::Int(1));
    let view = revisionist_simulations::solo::machine::MachineResponse::View(vec![
        Value::Int(2),
        Value::Nil,
    ]);
    assert!(machine.transitions(&s, &view).len() >= 2);
}
