//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning all crates.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revisionist_simulations::core::bounds;
use revisionist_simulations::smr::value::{Dyadic, Value};
use revisionist_simulations::snapshot::client::AugOp;
use revisionist_simulations::snapshot::real::RealSystem;
use revisionist_simulations::snapshot::spec;
use revisionist_simulations::snapshot::timestamp::Timestamp;
use revisionist_simulations::tasks::agreement::{ApproximateAgreement, KSetAgreement};
use revisionist_simulations::tasks::sperner::{verify_sperner, Complex, Labeling};
use revisionist_simulations::tasks::task::ColorlessTask;

fn dyadic() -> impl Strategy<Value = Dyadic> {
    (-1_000_000i64..1_000_000, 0u32..20).prop_map(|(n, e)| Dyadic::new(n, e))
}

proptest! {
    // --- Dyadic arithmetic is exact and ordered. ---

    #[test]
    fn dyadic_midpoint_is_between(a in dyadic(), b in dyadic()) {
        let m = a.midpoint(b);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(lo <= m && m <= hi);
    }

    #[test]
    fn dyadic_midpoint_halves_distance(a in dyadic(), b in dyadic()) {
        let m = a.midpoint(b);
        let d = (a - b).abs();
        prop_assert_eq!((m - a).abs() + (m - b).abs(), d);
    }

    #[test]
    fn dyadic_add_sub_roundtrip(a in dyadic(), b in dyadic()) {
        prop_assert_eq!(a + b - b, a);
    }

    // --- Timestamps: lexicographic order properties (Lemma 7 / Cor 8). ---

    #[test]
    fn generated_timestamp_dominates_counts(
        counts in proptest::collection::vec(0usize..100, 1..6),
        i in 0usize..6,
    ) {
        let i = i % counts.len();
        let t = Timestamp::generate(i, &counts);
        let base = Timestamp::new(counts.iter().map(|&c| c as u32).collect());
        prop_assert!(base < t);
    }

    #[test]
    fn timestamps_from_same_scan_differ_across_processes(
        counts in proptest::collection::vec(0usize..100, 2..6),
        i in 0usize..6, j in 0usize..6,
    ) {
        let i = i % counts.len();
        let j = j % counts.len();
        prop_assume!(i != j);
        prop_assert_ne!(
            Timestamp::generate(i, &counts),
            Timestamp::generate(j, &counts)
        );
    }

    // --- Task validators are subset-closed (colorlessness). ---

    #[test]
    fn kset_validation_is_monotone_under_output_subsets(
        k in 1usize..4,
        outputs in proptest::collection::btree_set(0i64..6, 1..5),
    ) {
        let task = KSetAgreement::new(k);
        let inputs: Vec<Value> = (0..6).map(Value::Int).collect();
        let outs: Vec<Value> = outputs.iter().copied().map(Value::Int).collect();
        if task.validate(&inputs, &outs).is_ok() {
            for drop in 0..outs.len() {
                let mut sub = outs.clone();
                sub.remove(drop);
                if !sub.is_empty() {
                    prop_assert!(task.validate(&inputs, &sub).is_ok());
                }
            }
        }
    }

    #[test]
    fn approx_agreement_validation_is_symmetric(
        a in dyadic(), b in dyadic(), eps_exp in 0u32..10,
    ) {
        let task = ApproximateAgreement::new(Dyadic::two_to_minus(eps_exp));
        let inputs = vec![
            Value::Dyadic(Dyadic::integer(-2_000_000)),
            Value::Dyadic(Dyadic::integer(2_000_000)),
        ];
        let ab = task.validate(&inputs, &[Value::Dyadic(a), Value::Dyadic(b)]);
        let ba = task.validate(&inputs, &[Value::Dyadic(b), Value::Dyadic(a)]);
        prop_assert_eq!(ab.is_ok(), ba.is_ok());
    }

    // --- Sperner's lemma: random Sperner labelings are always odd. ---

    #[test]
    fn sperner_count_is_odd_dim2(seed in 0u64..500) {
        let complex = Complex::standard(2).subdivide(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let labeling = Labeling::random_sperner(&complex, &mut rng);
        let count = verify_sperner(&complex, &labeling).unwrap();
        prop_assert!(count % 2 == 1);
    }

    #[test]
    fn sperner_count_is_odd_dim3(seed in 0u64..100) {
        let complex = Complex::standard(3).subdivide(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let labeling = Labeling::random_sperner(&complex, &mut rng);
        let count = verify_sperner(&complex, &labeling).unwrap();
        prop_assert!(count % 2 == 1);
    }

    // --- Bounds formulas. ---

    #[test]
    fn feasibility_equals_below_bound(n in 2usize..50, k in 1usize..10, x in 1usize..10) {
        prop_assume!(x <= k && k < n);
        let bound = bounds::kset_space_lower_bound(n, k, x);
        for m in 1..=n {
            prop_assert_eq!(bounds::simulation_feasible(n, m, k + 1, x), m < bound);
        }
    }

    #[test]
    fn budgets_are_monotone(m in 2usize..6, i in 1usize..5) {
        prop_assert!(bounds::b_bound(m, i) <= bounds::b_bound(m, i + 1));
        prop_assert!(bounds::a_bound(m, m - 1) <= bounds::a_bound(m, m));
    }

    // --- Augmented snapshot: random runs always satisfy the §3 spec. ---

    #[test]
    fn augmented_snapshot_spec_holds_on_random_runs(
        seed in 0u64..300, f in 2usize..5, m in 1usize..4,
    ) {
        let rs = random_aug_run(f, m, 3, seed);
        let report = spec::check(&rs, m);
        prop_assert!(report.is_ok(), "errors: {:?}", report.errors);
    }
}

fn random_aug_run(f: usize, m: usize, ops_per_proc: usize, seed: u64) -> RealSystem {
    let mut rs = RealSystem::new(f, m);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining = vec![ops_per_proc; f];
    let mut counter = 0i64;
    loop {
        let live: Vec<usize> = (0..f)
            .filter(|&p| remaining[p] > 0 || !rs.is_idle(p))
            .collect();
        if live.is_empty() {
            break;
        }
        let pid = live[rng.gen_range(0..live.len())];
        if rs.is_idle(pid) {
            remaining[pid] -= 1;
            let op = if rng.gen_bool(0.5) {
                AugOp::Scan
            } else {
                let r = rng.gen_range(1..=m);
                let mut comps: Vec<usize> = (0..m).collect();
                for i in (1..comps.len()).rev() {
                    comps.swap(i, rng.gen_range(0..=i));
                }
                comps.truncate(r);
                let values = comps
                    .iter()
                    .map(|_| {
                        counter += 1;
                        Value::Int(counter)
                    })
                    .collect();
                AugOp::BlockUpdate { components: comps, values }
            };
            rs.begin(pid, op);
        }
        rs.step(pid);
    }
    rs
}
