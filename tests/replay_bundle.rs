//! End-to-end tests of the campaign → shrink → bundle → replay
//! pipeline through the CLI binary: a seeded campaign provokes a known
//! violation, minimises it into a portable bundle, and `replay` must
//! reproduce it deterministically at any thread count — while a
//! tampered bundle fails with a structured error and nonzero exit.

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_revisionist-simulations"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("rsim-replay-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The seeded racing campaign whose seed 28 violates consensus (see
/// the campaign CLI tests); `--bundle` shrinks and stores it.
fn write_violation_bundle(dir: &std::path::Path) -> PathBuf {
    let bundle = dir.join("cex.bundle.json");
    let (_, stderr, ok) = run(&[
        "campaign",
        "--protocol",
        "racing",
        "--procs",
        "3",
        "--m",
        "2",
        "--sched",
        "random",
        "--runs",
        "100",
        "--bundle",
        bundle.to_str().unwrap(),
    ]);
    assert!(ok, "campaign run failed: {stderr}");
    assert!(stderr.contains("shrunk counterexample:"), "stderr: {stderr}");
    assert!(stderr.contains("replay bundle written"), "stderr: {stderr}");
    assert!(bundle.exists());
    bundle
}

#[test]
fn campaign_bundle_replays_at_any_thread_count() {
    let dir = temp_dir("threads");
    let bundle = write_violation_bundle(&dir);
    for threads in ["1", "4", "8"] {
        let (stdout, stderr, ok) =
            run(&["replay", bundle.to_str().unwrap(), "--threads", threads]);
        assert!(ok, "replay --threads {threads} failed: {stderr}");
        assert!(
            stdout.contains("violation reproduced bit-for-bit"),
            "stdout: {stdout}"
        );
        assert!(stdout.contains("consensus violated"), "stdout: {stdout}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_fingerprint_fails_replay_with_structured_error() {
    let dir = temp_dir("tamper");
    let bundle = write_violation_bundle(&dir);
    let text = std::fs::read_to_string(&bundle).unwrap();
    let line = text
        .lines()
        .find(|l| l.contains("\"fingerprint\""))
        .expect("bundle has a fingerprint")
        .to_string();
    // Flip the fingerprint's last digit.
    let digit = line.trim_end_matches(',').chars().last().unwrap();
    let flipped = if digit == '1' { '2' } else { '1' };
    let mut tampered_line = line.trim_end_matches(',').to_string();
    tampered_line.pop();
    tampered_line.push(flipped);
    tampered_line.push(',');
    let tampered = dir.join("tampered.bundle.json");
    std::fs::write(&tampered, text.replace(&line, &tampered_line)).unwrap();

    let (_, stderr, ok) = run(&["replay", tampered.to_str().unwrap()]);
    assert!(!ok, "tampered bundle must fail replay");
    assert!(stderr.contains("bundle mismatch"), "stderr: {stderr}");
    assert!(
        stderr.contains("expected violation fingerprint"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_decisions_fail_replay() {
    let dir = temp_dir("decisions");
    let bundle = write_violation_bundle(&dir);
    let text = std::fs::read_to_string(&bundle).unwrap();
    let line = text
        .lines()
        .find(|l| l.contains("\"decisions\""))
        .expect("bundle has decisions")
        .to_string();
    let tampered = dir.join("hollow.bundle.json");
    std::fs::write(
        &tampered,
        text.replace(&line, "  \"decisions\": [0],"),
    )
    .unwrap();
    let (_, stderr, ok) = run(&["replay", tampered.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("bundle mismatch"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_bundles_are_rejected_before_execution() {
    let dir = temp_dir("malformed");
    let path = dir.join("garbage.bundle.json");
    std::fs::write(&path, "{\"version\": 99}").unwrap();
    let (_, stderr, ok) = run(&["replay", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unsupported bundle version"), "stderr: {stderr}");

    let (_, stderr, ok) = run(&["replay", dir.join("missing.json").to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("cannot read bundle"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_without_a_bundle_prints_usage() {
    let (_, stderr, ok) = run(&["replay"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "stderr: {stderr}");
}

#[test]
fn campaign_json_out_writes_the_report_atomically() {
    let dir = temp_dir("json-out");
    let path = dir.join("report.json");
    let (_, _, ok) = run(&[
        "campaign",
        "--protocol",
        "racing",
        "--procs",
        "2",
        "--sched",
        "rr",
        "--runs",
        "5",
        "--json-out",
        path.to_str().unwrap(),
    ]);
    assert!(ok);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"total_runs\": 5"), "report: {text}");
    assert!(
        !path.with_extension("tmp").exists(),
        "tmp file must be renamed away"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
