//! End-to-end tests of the TCP transport: the E17-style determinism
//! gate over a real socket. A `--listen` service whose workers dial in
//! over TCP — while frames are dropped, delayed, duplicated, corrupted
//! and partitioned, and a worker is SIGKILLed mid-unit — must converge
//! to a merged report byte-identical to a single-process `campaign`,
//! and a `--faults` matrix must shard across TCP workers with the same
//! guarantee.

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_revisionist-simulations"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Value of the first `"key": <digits>` occurrence in a JSON blob.
fn first_field(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle).expect("field present") + needle.len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Sum of every `"key": <digits>` occurrence in a JSON blob.
fn sum_fields(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    json.match_indices(&needle)
        .map(|(i, _)| {
            json[i + needle.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse::<u64>()
                .unwrap_or(0)
        })
        .sum()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("rsim-service-tcp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SPEC: &[&str] = &[
    "--protocol",
    "racing",
    "--procs",
    "3",
    "--m",
    "2",
    "--sched",
    "rr,random",
    "--runs",
    "40",
    "--budget",
    "2000",
];

/// The full chaos menu at once: a worker SIGKILL plus every network
/// directive, with a partition window severing both live sessions. The
/// merged report must still be bit-identical to the single-process
/// reference, and the summary table must account for the damage.
#[test]
fn tcp_service_under_full_chaos_matches_the_reference_byte_for_byte() {
    let dir = tmp_dir("chaos");
    let reference = dir.join("reference.json");
    let merged = dir.join("merged.json");
    let state = dir.join("state");

    let mut ref_args: Vec<&str> = vec!["campaign"];
    ref_args.extend_from_slice(SPEC);
    let ref_out = reference.to_str().unwrap();
    ref_args.extend_from_slice(&["--threads", "1", "--json-out", ref_out]);
    let (_, stderr, ok) = run(&ref_args);
    assert!(ok, "reference campaign failed: {stderr}");

    let mut svc_args: Vec<&str> = vec!["campaign-service"];
    svc_args.extend_from_slice(SPEC);
    let state_s = state.to_str().unwrap();
    let merged_out = merged.to_str().unwrap();
    svc_args.extend_from_slice(&[
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--unit-runs",
        "8",
        "--state",
        state_s,
        "--chaos",
        "kill@unit:2,drop@4,delay@6,dup@9,corrupt@11,partition@14-16",
        // A short lease turns silent frame drops into fast requeues,
        // and a deep attempt budget keeps chaos from quarantining.
        "--lease-timeout",
        "2",
        "--max-lease-attempts",
        "10",
        "--summary",
        "--json-out",
        merged_out,
    ]);
    let (_, stderr, ok) = run(&svc_args);
    assert!(ok, "tcp service failed: {stderr}");
    assert!(
        stderr.contains("campaign-service: listening on 127.0.0.1:"),
        "must announce the bound address: {stderr}"
    );
    assert!(
        stderr.contains("1 worker kills"),
        "the kill must fire: {stderr}"
    );
    assert!(stderr.contains("tcp:"), "tcp stats line missing: {stderr}");
    assert!(
        stderr.contains("net chaos:") && stderr.contains("dropped"),
        "net chaos accounting missing: {stderr}"
    );
    assert!(
        stderr.contains("campaign summary:")
            && stderr.contains("transport=tcp")
            && stderr.contains("claim"),
        "--summary must render the claim table: {stderr}"
    );

    let ref_bytes = std::fs::read(&reference).unwrap();
    let svc_bytes = std::fs::read(&merged).unwrap();
    assert!(
        ref_bytes == svc_bytes,
        "merged report differs from the single-process reference:\n--- \
         reference ---\n{}\n--- service ---\n{}",
        String::from_utf8_lossy(&ref_bytes),
        String::from_utf8_lossy(&svc_bytes),
    );

    // The summary survives on disk next to the journal.
    let summary =
        std::fs::read_to_string(state.join("summary.json")).unwrap();
    assert!(summary.contains("\"transport\": \"tcp\""), "{summary}");
    assert!(summary.contains("\"claims\""), "{summary}");

    // The reduction tallies survive the merge: every claim row carries
    // the per-scheduler visited/pruned sums, which must match the
    // byte-identical merged report exactly — chaos, kills, and retries
    // notwithstanding.
    let merged_text = String::from_utf8_lossy(&svc_bytes).into_owned();
    assert_eq!(
        sum_fields(&summary, "pruned"),
        first_field(&merged_text, "total_pruned"),
        "summary pruned tallies must sum to the merged total:\n{summary}"
    );
    assert_eq!(
        sum_fields(&summary, "visited"),
        first_field(&merged_text, "total_steps"),
        "summary visited tallies must sum to the merged total:\n{summary}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A `--faults` matrix campaign shards across TCP workers — fault
/// plans become a partition axis — and merges byte-identical to the
/// single-process `campaign --faults` reference, with one summary row
/// per plan.
#[test]
fn fault_matrix_campaign_shards_across_tcp_workers() {
    let dir = tmp_dir("faults");
    let reference = dir.join("reference.json");
    let merged = dir.join("merged.json");
    let state = dir.join("state");

    let base: &[&str] = &[
        "--protocol",
        "racing",
        "--procs",
        "3",
        "--m",
        "2",
        "--sched",
        "rr",
        "--runs",
        "4",
        "--budget",
        "2000",
        "--faults",
        "sweep:2",
    ];

    let mut ref_args: Vec<&str> = vec!["campaign"];
    ref_args.extend_from_slice(base);
    let ref_out = reference.to_str().unwrap();
    ref_args.extend_from_slice(&["--threads", "1", "--json-out", ref_out]);
    let (_, ref_stderr, ref_ok) = run(&ref_args);

    let mut svc_args: Vec<&str> = vec!["campaign-service"];
    svc_args.extend_from_slice(base);
    let state_s = state.to_str().unwrap();
    let merged_out = merged.to_str().unwrap();
    svc_args.extend_from_slice(&[
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--unit-runs",
        "2",
        "--state",
        state_s,
        "--summary",
        "--json-out",
        merged_out,
    ]);
    let (_, svc_stderr, svc_ok) = run(&svc_args);
    assert_eq!(
        ref_ok, svc_ok,
        "certification verdict must agree:\nref: {ref_stderr}\nsvc: {svc_stderr}"
    );
    // sweep:2 over 3 processes = 9 plans; each gets a summary row.
    assert!(
        svc_stderr.contains("crash@0:0") && svc_stderr.contains("crash@2:2"),
        "per-plan summary rows missing: {svc_stderr}"
    );

    let ref_bytes = std::fs::read(&reference).unwrap();
    let svc_bytes = std::fs::read(&merged).unwrap();
    assert!(
        ref_bytes == svc_bytes,
        "fault matrix merged report differs from the reference:\n--- \
         reference ---\n{}\n--- service ---\n{}",
        String::from_utf8_lossy(&ref_bytes),
        String::from_utf8_lossy(&svc_bytes),
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The chaos proxy is deterministic *about outcomes*: the same chaos
/// spec at different worker counts — and no chaos at all — all merge
/// to the same bytes.
#[test]
fn chaos_history_never_changes_the_merged_bytes() {
    let dir = tmp_dir("det");
    let base: &[&str] = &[
        "--protocol",
        "racing",
        "--procs",
        "3",
        "--m",
        "2",
        "--sched",
        "rr",
        "--runs",
        "16",
        "--budget",
        "2000",
    ];

    let mut outputs: Vec<Vec<u8>> = Vec::new();
    for (tag, workers, chaos) in [
        ("w2", "2", Some("drop@3,corrupt@7,partition@10-12")),
        ("w3", "3", Some("drop@3,corrupt@7,partition@10-12")),
        ("quiet", "2", None),
    ] {
        let state = dir.join(format!("state-{tag}"));
        let merged = dir.join(format!("merged-{tag}.json"));
        let state_s = state.to_str().unwrap().to_string();
        let merged_s = merged.to_str().unwrap().to_string();
        let mut args: Vec<&str> = vec!["campaign-service"];
        args.extend_from_slice(base);
        args.extend_from_slice(&[
            "--listen",
            "127.0.0.1:0",
            "--workers",
            workers,
            "--unit-runs",
            "2",
            "--lease-timeout",
            "2",
            "--max-lease-attempts",
            "10",
            "--state",
            &state_s,
            "--json-out",
            &merged_s,
        ]);
        if let Some(spec) = chaos {
            args.extend_from_slice(&["--chaos", spec]);
        }
        let (_, stderr, ok) = run(&args);
        assert!(ok, "run {tag} failed: {stderr}");
        outputs.push(std::fs::read(&merged).unwrap());
    }
    assert!(
        outputs[0] == outputs[1] && outputs[1] == outputs[2],
        "merged bytes depend on chaos history or worker count"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
