//! Acceptance tests for the protocol generator and the mutation-kill
//! fuzz harness.
//!
//! * **Generator soundness** (proptest + exhaustive corpus): every
//!   protocol the grammar emits passes Pass 1 analysis with zero
//!   deny-level diagnostics — under the *fuzz* lint config, which
//!   escalates RS-W005 to deny — and the same seed yields a
//!   byte-identical canonical form on any thread.
//! * **Mutation kill** (end-to-end): every predicted-fatal mutant is
//!   killed within the bounded budget, shrunk, bundled, and the bundle
//!   replays bit-for-bit from disk; predicted-benign mutants stay
//!   clean; analyzer-reject mutants die at pre-flight with their exact
//!   lint codes and never reach the search stage.

use proptest::prelude::*;

use rsim_smr::analyze::{self, AnalysisReport};
use rsim_smr::bundle::ReplayBundle;
use rsim_smr::gen::fuzz::{self, run_fuzz, FuzzConfig, MutantResult};
use rsim_smr::gen::mutate::Verdict;
use rsim_smr::gen::GenSpec;

// ---------------------------------------------------------------------
// Satellite 1: generator soundness over a 256-seed corpus.
// ---------------------------------------------------------------------

/// Every seed in the 256-seed corpus yields a protocol the analyzer
/// accepts with zero deny-level diagnostics — under the harness's
/// stricter config (RS-W005 denied), not just the defaults.
#[test]
fn corpus_256_all_pass_preflight_with_zero_denials() {
    let lint = fuzz::lint_config();
    for seed in 0..256 {
        let spec = GenSpec::from_seed(seed);
        let findings = analyze::lint_system(&spec.build_system(), analyze::DEFAULT_BUDGET);
        let report = AnalysisReport::from_findings(findings, &lint);
        assert_eq!(
            report.deny_count(),
            0,
            "gen seed {seed} denied by Pass 1:\n{}",
            report.render()
        );
    }
}

/// The canonical form of every corpus seed is byte-identical no matter
/// which thread elaborates it (generation draws from a self-contained
/// SplitMix64 stream keyed only by the seed).
#[test]
fn corpus_256_canonical_bytes_identical_across_threads() {
    let reference: Vec<String> =
        (0..256).map(|s| GenSpec::from_seed(s).canonical()).collect();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                (0..256).map(|s| GenSpec::from_seed(s).canonical()).collect::<Vec<_>>()
            })
        })
        .collect();
    for worker in workers {
        assert_eq!(worker.join().expect("worker"), reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same-seed determinism holds far beyond the corpus prefix, and
    /// re-elaboration is bit-stable.
    #[test]
    fn any_seed_elaborates_deterministically(seed in 0u64..1_000_000_000_000) {
        let a = GenSpec::from_seed(seed);
        let b = GenSpec::from_seed(seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.canonical(), b.canonical());
        // The grammar's advertised ranges hold everywhere.
        prop_assert!(a.procs == 2 || a.procs == 3);
        prop_assert!(a.race_m == a.procs + 1 || a.race_m == a.procs + 2);
    }
}

// ---------------------------------------------------------------------
// Satellite 2 + 3: mutation-kill acceptance and analyzer interplay.
// ---------------------------------------------------------------------

/// One harness invocation over two generator seeds, asserting the full
/// verdict table: fatal mutants killed + shrunk + bundled + replayed
/// from disk, benign mutants clean, analyzer-reject mutants stopped at
/// pre-flight with their exact codes (hence zero search runs burned).
#[test]
fn mutation_kill_acceptance_two_seeds() {
    let corpus = std::env::temp_dir().join(format!(
        "rsim-fuzz-gen-corpus-{}",
        std::process::id()
    ));
    let config = FuzzConfig {
        seeds: 0..2,
        mutants: true,
        corpus: Some(corpus.clone()),
        clean_runs: 24,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&config);
    assert!(report.predictions_hold(), "predictions failed:\n{}", report.to_json());
    assert_eq!(report.generated(), 2);
    assert_eq!(report.preflight_rejected(), 0);
    assert_eq!(report.killed(), 6, "3 fatal mutants per seed");
    assert_eq!(report.survived(), 0);
    assert_eq!(report.clean(), 4, "2 benign mutants per seed");
    assert_eq!(report.flagged(), 0);
    assert_eq!(report.rejected(), 6, "3 analyzer mutants per seed");
    assert_eq!(report.rejected_missed(), 0);
    assert_eq!(report.bundles_stored(), 6);

    for seed in &report.per_seed {
        for mutant in &seed.mutants {
            match (&mutant.result, mutant.mutation.verdict()) {
                // Every analyzer-reject mutant names its predicted code
                // — and carries no kill_seed/runs: the search stage was
                // never entered.
                (MutantResult::Rejected { codes }, Verdict::AnalyzerReject) => {
                    let expected = mutant.mutation.expected_lint().unwrap();
                    assert!(
                        codes.iter().any(|c| c == expected),
                        "{} expected {expected}, tripped {codes:?}",
                        mutant.mutation.name()
                    );
                }
                // Every kill shrank its counterexample and stored a
                // bundle that replays bit-for-bit from disk through the
                // same factory + check the harness used.
                (
                    MutantResult::Killed {
                        original_decisions,
                        shrunk_decisions,
                        bundle: Some(path),
                        ..
                    },
                    Verdict::MustViolate,
                ) => {
                    assert!(shrunk_decisions <= original_decisions);
                    let bundle =
                        ReplayBundle::load(std::path::Path::new(path)).expect("load");
                    let spec = GenSpec::parse_cli(
                        bundle.system_field("protocol").expect("protocol field"),
                    )
                    .expect("gen protocol parses");
                    let check = fuzz::consensus_check(spec.inputs());
                    let outcome = bundle
                        .replay(&|| spec.build_system(), &|sys, _| check(sys))
                        .expect("bundle replays bit-for-bit");
                    assert_eq!(outcome.violation.as_deref(), Some(bundle.violation.as_str()));
                }
                (MutantResult::Clean { .. }, Verdict::MustStayClean) => {}
                (result, verdict) => panic!(
                    "gen:{}:{} — unexpected ({:?}, {:?})",
                    seed.seed,
                    mutant.mutation.name(),
                    result,
                    verdict
                ),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&corpus);
}

/// The JSON report is a pure function of the config: byte-identical at
/// any worker count (ordered merge by seed index).
#[test]
fn fuzz_report_json_deterministic_across_thread_counts() {
    let base = FuzzConfig {
        seeds: 0..3,
        mutants: true,
        corpus: None,
        clean_runs: 8,
        ..FuzzConfig::default()
    };
    let mut configs = [base.clone(), base.clone(), base];
    configs[0].threads = 1;
    configs[1].threads = 2;
    configs[2].threads = 5;
    let reports: Vec<String> =
        configs.iter().map(|c| run_fuzz(c).to_json()).collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}
