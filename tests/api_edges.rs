//! Edge-case and error-path coverage for the public APIs across
//! crates: invalid configurations, mid-operation restrictions, panics
//! that guard protocol violations, and stress-sized parameter points.

use revisionist_simulations::core::bounds;
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::protocols::racing::PhasedRacing;
use revisionist_simulations::smr::error::ModelError;
use revisionist_simulations::smr::value::{Dyadic, Value};
use revisionist_simulations::snapshot::client::{AugClient, AugOp};
use revisionist_simulations::snapshot::real::RealSystem;

#[test]
fn begin_while_in_flight_panics() {
    let result = std::panic::catch_unwind(|| {
        let mut rs = RealSystem::new(2, 2);
        rs.begin(0, AugOp::Scan);
        rs.step(0);
        rs.begin(0, AugOp::Scan); // operation already in progress
    });
    assert!(result.is_err());
}

#[test]
fn step_on_idle_process_panics() {
    let result = std::panic::catch_unwind(|| {
        let mut rs = RealSystem::new(2, 2);
        rs.step(0)
    });
    assert!(result.is_err());
}

#[test]
fn covering_accessor_panics_for_direct_simulator() {
    let config = SimulationConfig::new(3, 2, 2, 1); // q1 is direct
    let sim = Simulation::new(
        config,
        vec![Value::Int(1), Value::Int(2)],
        |i| PhasedRacing::new(2, Value::Int([1, 2][i])),
    )
    .unwrap();
    assert!(sim.is_covering(0));
    assert!(!sim.is_covering(1));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.covering(1);
    }));
    assert!(result.is_err());
}

#[test]
fn simulation_rejects_wrong_input_count() {
    let config = SimulationConfig::new(4, 2, 2, 0);
    let r = Simulation::new(config, vec![Value::Int(1)], |_| {
        PhasedRacing::new(2, Value::Int(1))
    });
    assert!(matches!(r, Err(ModelError::BadId(_))));
}

#[test]
fn block_update_rejects_out_of_range_component() {
    let result = std::panic::catch_unwind(|| {
        let mut c = AugClient::new(0, 2, 2);
        c.begin(AugOp::BlockUpdate { components: vec![5], values: vec![Value::Nil] });
    });
    assert!(result.is_err());
}

#[test]
fn block_update_rejects_length_mismatch() {
    let result = std::panic::catch_unwind(|| {
        let mut c = AugClient::new(0, 2, 2);
        c.begin(AugOp::BlockUpdate {
            components: vec![0, 1],
            values: vec![Value::Nil],
        });
    });
    assert!(result.is_err());
}

#[test]
fn full_width_block_update_overwrites_everything() {
    // A Block-Update to all m components: the returned view is the
    // prior contents; a subsequent scan sees only the new values.
    let m = 4;
    let mut rs = RealSystem::new(2, m);
    rs.begin(0, AugOp::BlockUpdate {
        components: (0..m).collect(),
        values: (0..m as i64).map(Value::Int).collect(),
    });
    rs.run_to_completion(0);
    rs.begin(1, AugOp::Scan);
    match rs.run_to_completion(1) {
        revisionist_simulations::snapshot::client::AugOutcome::Scan(s) => {
            assert_eq!(s.view, (0..m as i64).map(Value::Int).collect::<Vec<_>>());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn single_real_process_system_works() {
    // f = 1: the lone process's Block-Updates are trivially atomic and
    // Scans take exactly 3 steps.
    let mut rs = RealSystem::new(1, 2);
    rs.begin(0, AugOp::Scan);
    match rs.run_to_completion(0) {
        revisionist_simulations::snapshot::client::AugOutcome::Scan(s) => {
            assert_eq!(s.steps, 3);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn larger_grid_point_respects_budgets() {
    // n = 8, m = 2, f = 4: budgets b(1..4) = 2, 4, 8, 16.
    let config = SimulationConfig::new(8, 2, 4, 0);
    assert!(config.is_feasible());
    let inputs: Vec<Value> = (1..=4i64).map(Value::Int).collect();
    for seed in 0..10 {
        let mut sim = Simulation::new(config, inputs.clone(), |i| {
            PhasedRacing::new(2, Value::Int(i as i64 + 1))
        })
        .unwrap();
        sim.run_random(seed, 50_000_000).unwrap();
        assert!(sim.all_terminated(), "seed {seed}");
        for i in 0..4 {
            let (_, bus) = sim.op_counts(i);
            assert!(
                (bus as u128) <= bounds::b_bound(2, i + 1),
                "seed {seed} q{i}: {bus}"
            );
        }
    }
}

#[test]
fn dyadic_precision_guard() {
    // ε down to 2^-62 is representable; the constructor guards beyond.
    let tiny = Dyadic::two_to_minus(62);
    assert!(tiny > Dyadic::zero());
    let result = std::panic::catch_unwind(|| Dyadic::new(1, 63));
    assert!(result.is_err());
}

#[test]
fn bounds_panic_on_bad_parameters() {
    for bad in [
        std::panic::catch_unwind(|| bounds::kset_space_lower_bound(4, 4, 1)),
        std::panic::catch_unwind(|| bounds::kset_space_lower_bound(4, 2, 3)),
        std::panic::catch_unwind(|| bounds::kset_space_lower_bound(4, 2, 0)),
    ] {
        assert!(bad.is_err());
    }
}
