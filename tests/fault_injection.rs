//! End-to-end fault-injection acceptance tests: the exhaustive
//! crash-placement certification, structured worker-panic reports with
//! replay coordinates, and checkpoint/resume equivalence.

use revisionist_simulations::protocols::racing::racing_system;
use revisionist_simulations::smr::campaign::{
    replay_fault_run, run_campaign, run_campaign_with, run_fault_campaign,
    CampaignCheckpoint, CampaignConfig, CampaignOptions, FaultCampaignConfig,
    SchedulerSpec,
};
use revisionist_simulations::smr::fault::{FaultPlan, FaultScheduler};
use revisionist_simulations::smr::process::ProcessId;
use revisionist_simulations::smr::system::System;
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::snapshot::certify;

fn racing3() -> System {
    racing_system(2, &[Value::Int(1), Value::Int(2), Value::Int(3)])
}

fn no_check(_: &System, _: &[ProcessId]) -> Option<String> {
    None
}

#[test]
fn exhaustive_single_crash_campaign_certifies_nonblocking_progress() {
    // Every single-crash placement (victim × step 0..=5) over the
    // 3-process racing system, under two base schedulers: survivors
    // must always terminate within budget.
    for base in [SchedulerSpec::RoundRobin, SchedulerSpec::Random] {
        let config = FaultCampaignConfig {
            base,
            plans: FaultPlan::single_crash_plans(3, 5),
            seed_start: 0,
            runs: 4,
            budget: 4_000,
            threads: 0,
        };
        let report = run_fault_campaign(&config, racing3_by_seed, &no_check);
        assert_eq!(report.plans, 18);
        assert_eq!(report.total_runs, 72);
        assert!(
            report.is_certified(),
            "base {}: failures {:?}",
            report.scheduler,
            report
                .failures
                .iter()
                .map(|r| format!("plan {} seed {}", r.plan, r.seed))
                .collect::<Vec<_>>()
        );
    }
}

fn racing3_by_seed(_seed: u64) -> System {
    racing3()
}

#[test]
fn augmented_snapshot_certifies_every_placement_for_n_up_to_3() {
    // The acceptance scenario: all single-crash placements in the
    // 6-step Block-Update sequence, for every system size n <= 3.
    for f in 1..=3 {
        for m in 1..=3 {
            let report = certify::certify_nonblocking_block_updates(f, m);
            assert_eq!(
                report.placements.len(),
                f * certify::BLOCK_UPDATE_STEPS
            );
            assert!(
                report.is_certified(),
                "f={f} m={m}: {:?}",
                report.failures
            );
        }
    }
}

#[test]
fn injected_worker_panic_reports_plan_and_seed_for_replay() {
    let config = FaultCampaignConfig {
        base: SchedulerSpec::RoundRobin,
        plans: vec![
            FaultPlan::parse("crash@0:1").unwrap(),
            FaultPlan::parse("crash@1:2").unwrap(),
        ],
        seed_start: 0,
        runs: 3,
        budget: 2_000,
        threads: 2,
    };
    let factory = |seed: u64| {
        if seed == 2 {
            panic!("injected failure");
        }
        racing3()
    };
    let report = run_fault_campaign(&config, factory, &no_check);
    assert!(!report.is_certified());
    // One panic per plan (each plan runs seed 2 once).
    assert_eq!(report.failures.len(), 2);
    for failure in &report.failures {
        let error = failure.error.as_deref().expect("structured error");
        assert!(error.contains("worker panic"), "error was: {error}");
        assert!(error.contains("injected failure"), "error was: {error}");
        assert!(
            error.contains(&format!("plan `{}`", failure.plan)),
            "error names the fault plan: {error}"
        );
        assert!(error.contains("seed 2"), "error names the seed: {error}");
        assert_eq!(failure.seed, 2);
    }
}

#[test]
fn fault_records_replay_exactly() {
    let config = FaultCampaignConfig {
        base: SchedulerSpec::Random,
        plans: FaultPlan::single_crash_plans(3, 3),
        seed_start: 11,
        runs: 2,
        budget: 4_000,
        threads: 0,
    };
    // Flag every run so each record surfaces in `failures` and can be
    // compared against its replay.
    let flag_all = |_: &System, _: &[ProcessId]| Some("flagged".to_string());
    let report = run_fault_campaign(&config, racing3_by_seed, &flag_all);
    assert_eq!(report.failures.len(), report.total_runs);
    for record in &report.failures {
        let plan = FaultPlan::parse(&record.plan).unwrap();
        let replayed =
            replay_fault_run(&config, &plan, record.seed, racing3_by_seed, &flag_all);
        assert_eq!(replayed.steps, record.steps, "plan {} seed {}", record.plan, record.seed);
        assert_eq!(replayed.crashed, record.crashed);
        assert_eq!(replayed.survivors_terminated, record.survivors_terminated);
    }
}

#[test]
fn fault_scheduler_composes_with_every_scheduler_family() {
    // The wrapper is scheduler-agnostic: under each spec the plan's
    // victim stops on time and the survivors still terminate.
    for spec in ["rr", "random", "quantum:2", "obstruction:1", "crash:1"] {
        let spec = SchedulerSpec::parse(spec).unwrap();
        let plan = FaultPlan::parse("crash@0:2").unwrap();
        let mut sys = racing3();
        let mut sched = FaultScheduler::new(spec.build(7), plan);
        sys.run(&mut sched, 4_000).unwrap();
        assert!(
            sched.is_crashed(ProcessId(0)),
            "{spec}: the planned crash must fire"
        );
        assert_eq!(
            sys.trace().iter().filter(|e| e.pid == ProcessId(0)).count(),
            2,
            "{spec}: victim stops after exactly 2 steps"
        );
        for p in sched.survivors(&sys) {
            assert!(sys.is_terminated(p), "{spec}: survivor p{} blocked", p.0);
        }
    }
}

#[test]
fn interrupted_campaign_resumes_bit_for_bit() {
    let config = CampaignConfig {
        schedulers: vec![SchedulerSpec::Random, SchedulerSpec::Crash {
            max_crashes: 1,
            probability: 0.2,
        }],
        seed_start: 0,
        runs: 20,
        budget: 1_500,
        threads: 2,
    };
    let factory = |_seed: u64| racing3();
    let dir = std::env::temp_dir()
        .join(format!("rsim-fault-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("campaign.checkpoint.json");

    let uninterrupted = run_campaign(&config, factory, &|_| None);

    let interrupted = run_campaign_with(
        &config,
        &CampaignOptions {
            stop_after: Some(13),
            checkpoint_every: Some(5),
            checkpoint_path: Some(path.clone()),
            ..CampaignOptions::default()
        },
        factory,
        &|_| None,
    );
    assert!(interrupted.truncation.is_some(), "truncation is reported");
    // With 2 workers a run already in flight when the watchdog fires
    // still completes, so the cap is a floor, not an exact count.
    assert!(interrupted.total_runs >= 13 && interrupted.total_runs < 40);
    assert_eq!(interrupted.skipped_runs, 40 - interrupted.total_runs);

    let checkpoint = CampaignCheckpoint::load(&path).unwrap();
    assert_eq!(checkpoint.completed.len(), interrupted.total_runs);
    let resumed = run_campaign_with(
        &config,
        &CampaignOptions {
            resume_from: Some(checkpoint),
            ..CampaignOptions::default()
        },
        factory,
        &|_| None,
    );
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(resumed.total_runs, uninterrupted.total_runs);
    assert_eq!(resumed.terminated_runs, uninterrupted.terminated_runs);
    assert_eq!(resumed.distinct_configs, uninterrupted.distinct_configs);
    assert_eq!(resumed.total_steps, uninterrupted.total_steps);
    assert_eq!(resumed.skipped_runs, 0);
    assert!(resumed.truncation.is_none());
    assert_eq!(resumed.per_scheduler.len(), uninterrupted.per_scheduler.len());
    for (a, b) in resumed.per_scheduler.iter().zip(&uninterrupted.per_scheduler) {
        assert_eq!(a.scheduler, b.scheduler);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.terminated, b.terminated);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.total_steps, b.total_steps);
    }
}

#[test]
fn crash_scheduler_campaign_aggregates_are_thread_count_independent() {
    // The `crash:c` random adversary inside a campaign: the crash set
    // is a function of the seed alone, so aggregates cannot depend on
    // how runs were distributed over workers.
    let mk = |threads: usize| CampaignConfig {
        schedulers: vec![SchedulerSpec::Crash { max_crashes: 2, probability: 0.3 }],
        seed_start: 0,
        runs: 60,
        budget: 1_500,
        threads,
    };
    let factory = |_seed: u64| racing3();
    let base = run_campaign(&mk(1), factory, &|_| None);
    for threads in [2, 4, 0] {
        let report = run_campaign(&mk(threads), factory, &|_| None);
        assert_eq!(report.total_runs, base.total_runs, "threads={threads}");
        assert_eq!(report.terminated_runs, base.terminated_runs, "threads={threads}");
        assert_eq!(report.distinct_configs, base.distinct_configs, "threads={threads}");
        assert_eq!(report.total_steps, base.total_steps, "threads={threads}");
        assert_eq!(report.failures.len(), base.failures.len(), "threads={threads}");
    }
}
