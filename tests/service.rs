//! End-to-end tests of the `campaign-service` subcommand: the chaos
//! determinism gate. A service run with worker kills and torn journal
//! writes injected must converge to a merged report byte-identical to
//! a single-process, no-fault `campaign` of the same spec, and every
//! corpus bundle it writes must replay under the stock `replay`
//! subcommand.

use std::path::{Path, PathBuf};
use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_revisionist-simulations"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("rsim-service-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The campaign spec shared by the reference and the service runs.
/// Seed 28 under `random` is a consensus violation, so the corpus and
/// the shrink path are exercised, not just the happy path.
const SPEC: &[&str] = &[
    "--protocol",
    "racing",
    "--procs",
    "3",
    "--m",
    "2",
    "--sched",
    "rr,random",
    "--runs",
    "40",
    "--budget",
    "2000",
];

fn corpus_bundles(corpus: &Path) -> Vec<PathBuf> {
    let mut bundles: Vec<PathBuf> = std::fs::read_dir(corpus)
        .expect("corpus dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    bundles.sort();
    bundles
}

#[test]
fn chaos_service_matches_single_process_reference_byte_for_byte() {
    let dir = tmp_dir("chaos");
    let reference = dir.join("reference.json");
    let merged = dir.join("merged.json");
    let state = dir.join("state");

    // The ground truth: one process, one thread, no faults.
    let mut ref_args: Vec<&str> = vec!["campaign"];
    ref_args.extend_from_slice(SPEC);
    let ref_out = reference.to_str().unwrap();
    ref_args.extend_from_slice(&["--threads", "1", "--json-out", ref_out]);
    let (_, stderr, ok) = run(&ref_args);
    assert!(ok, "reference campaign failed: {stderr}");

    // The service, with a worker SIGKILLed mid-unit and a torn journal
    // write injected on another unit's result.
    let mut svc_args: Vec<&str> = vec!["campaign-service"];
    svc_args.extend_from_slice(SPEC);
    let state_s = state.to_str().unwrap();
    let merged_out = merged.to_str().unwrap();
    svc_args.extend_from_slice(&[
        "--workers",
        "2",
        "--unit-runs",
        "8",
        "--state",
        state_s,
        "--chaos",
        "kill@unit:1,torn@result:3",
        "--json-out",
        merged_out,
    ]);
    let (_, stderr, ok) = run(&svc_args);
    assert!(ok, "service failed: {stderr}");
    assert!(
        stderr.contains("1 worker kills, 1 torn journal writes injected"),
        "chaos must actually fire: {stderr}"
    );
    assert!(stderr.contains("requeues"), "stats line missing: {stderr}");

    let ref_bytes = std::fs::read(&reference).unwrap();
    let svc_bytes = std::fs::read(&merged).unwrap();
    assert!(
        ref_bytes == svc_bytes,
        "merged report differs from the single-process reference:\n--- \
         reference ---\n{}\n--- service ---\n{}",
        String::from_utf8_lossy(&ref_bytes),
        String::from_utf8_lossy(&svc_bytes),
    );

    // Every corpus bundle replays under the stock replay subcommand and
    // reproduces its recorded violation.
    let bundles = corpus_bundles(&state.join("corpus"));
    assert!(!bundles.is_empty(), "seed 28 must have produced a bundle");
    for bundle in &bundles {
        let (stdout, stderr, ok) = run(&["replay", bundle.to_str().unwrap()]);
        assert!(ok, "replay of {} failed: {stderr}", bundle.display());
        assert!(
            stdout.contains("violation reproduced bit-for-bit"),
            "replay of {} did not reproduce: {stdout}",
            bundle.display()
        );
    }

    // A second service run over the same state directory recovers every
    // shard from the journal — zero new leases — and emits the
    // identical report.
    let rerun = dir.join("rerun.json");
    let rerun_out = rerun.to_str().unwrap();
    let mut again: Vec<&str> = vec!["campaign-service"];
    again.extend_from_slice(SPEC);
    again.extend_from_slice(&[
        "--workers",
        "2",
        "--unit-runs",
        "8",
        "--state",
        state_s,
        "--json-out",
        rerun_out,
    ]);
    let (_, stderr, ok) = run(&again);
    assert!(ok, "rerun failed: {stderr}");
    assert!(
        stderr.contains("(10 recovered), 0 leases"),
        "rerun must converge from the journal alone: {stderr}"
    );
    assert!(std::fs::read(&rerun).unwrap() == ref_bytes);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Pointing the service at a state directory journaled for a different
/// campaign must fail closed with a structured mismatch naming both
/// identities — never merge incompatible aggregates.
#[test]
fn service_refuses_a_state_dir_from_another_campaign() {
    let dir = tmp_dir("mismatch");
    let state = dir.join("state");
    let state_s = state.to_str().unwrap();
    let base = [
        "campaign-service",
        "--protocol",
        "racing",
        "--sched",
        "rr",
        "--budget",
        "500",
        "--unit-runs",
        "4",
        "--state",
        state_s,
        "--json",
    ];
    let mut first: Vec<&str> = base.to_vec();
    first.extend_from_slice(&["--runs", "4"]);
    let (_, stderr, ok) = run(&first);
    assert!(ok, "seeding run failed: {stderr}");

    let mut second: Vec<&str> = base.to_vec();
    second.extend_from_slice(&["--runs", "8"]);
    let (_, stderr, ok) = run(&second);
    assert!(!ok, "a mismatched state dir must be refused");
    assert!(
        stderr.contains("resume mismatch"),
        "structured error expected: {stderr}"
    );
    assert!(stderr.contains("seeds=0+4") && stderr.contains("seeds=0+8"));
    let _ = std::fs::remove_dir_all(&dir);
}
