//! Lemma 32's hypothesis, demonstrated: the x-obstruction-free case of
//! Theorem 21 (d = x direct simulators) needs Π to be
//! x-obstruction-free. Feeding a protocol that is only 1-OF (the
//! contrarian protocol) live-locks the two direct simulators under a
//! direct-only schedule, while the covering simulator still terminates;
//! feeding a 2-OF-in-practice protocol (phased racing) terminates
//! everything under the same schedule.

use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::protocols::contrarian::Contrarian;
use revisionist_simulations::protocols::racing::PhasedRacing;
use revisionist_simulations::smr::process::SnapshotProtocol;
use revisionist_simulations::smr::value::Value;

/// Steps simulator `i` until its current M-operation completes (or it
/// terminates). Returns false if it terminated.
fn run_one_m_op<P: SnapshotProtocol>(sim: &mut Simulation<P>, i: usize) -> bool {
    if sim.output(i).is_some() {
        return false;
    }
    let before = sim
        .real()
        .oplog()
        .iter()
        .filter(|rec| rec.pid == i)
        .count();
    loop {
        if !sim.step(i).unwrap() {
            return false; // terminated via local computation
        }
        let after = sim
            .real()
            .oplog()
            .iter()
            .filter(|rec| rec.pid == i)
            .count();
        if after > before {
            return true;
        }
    }
}

#[test]
fn non_xof_protocol_livelocks_the_direct_simulators() {
    // f = 3, d = 2: one covering simulator (q0) + two direct (q1, q2).
    // n = 1*1 + 2 = 3 simulated contrarian processes over m = 1.
    let config = SimulationConfig::new(3, 1, 3, 2);
    assert!(config.is_feasible());
    let inputs = vec![Value::Bool(true), Value::Bool(true), Value::Bool(false)];
    let mut sim = Simulation::new(config, inputs, |i| {
        Contrarian::new([true, true, false][i])
    })
    .unwrap();
    // Scan+update alternation between the two direct simulators (each
    // performs a full scan *and* its update before handing over): their
    // simulated processes scan each other's bit and overwrite it,
    // forever.
    for _ in 0..200 {
        run_one_m_op(&mut sim, 1);
        run_one_m_op(&mut sim, 1);
        run_one_m_op(&mut sim, 2);
        run_one_m_op(&mut sim, 2);
    }
    assert!(sim.output(1).is_none(), "q1 should be live-locked");
    assert!(sim.output(2).is_none(), "q2 should be live-locked");
    // The covering simulator is unaffected: give it steps and it
    // terminates (the simulation's wait-freedom for covering simulators
    // does not depend on Π beyond obstruction-freedom).
    let mut guard = 0;
    while sim.output(0).is_none() {
        let progressed = sim.step(0).unwrap();
        assert!(progressed || sim.output(0).is_some());
        guard += 1;
        assert!(guard < 10_000, "covering simulator failed to terminate");
    }
    assert_eq!(sim.output(0), Some(&Value::Bool(true)));
}

#[test]
fn xof_protocol_terminates_direct_simulators_under_the_same_schedule() {
    // Same shape, but Π = phased racing (converges under pairs): the
    // direct simulators terminate under the identical alternation.
    let config = SimulationConfig::new(4, 2, 3, 2);
    assert!(config.is_feasible()); // 1*2 + 2 = 4 <= 4
    let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
    let mut sim = Simulation::new(config, inputs, |i| {
        PhasedRacing::new(2, Value::Int([1, 2, 3][i]))
    })
    .unwrap();
    let mut rounds = 0;
    while (sim.output(1).is_none() || sim.output(2).is_none()) && rounds < 2_000 {
        run_one_m_op(&mut sim, 1);
        run_one_m_op(&mut sim, 2);
        rounds += 1;
    }
    assert!(sim.output(1).is_some(), "q1 should terminate with racing Π");
    assert!(sim.output(2).is_some(), "q2 should terminate with racing Π");
    // Their outputs agree (two processes of a racing protocol running
    // by themselves solve consensus between them).
    assert_eq!(sim.output(1), sim.output(2));
}
