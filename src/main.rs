//! The `revisionist-simulations` command-line tool.
//!
//! Subcommands:
//!
//! * `bounds [n] [k] [x]` — print the Corollary 33 bound table (or one
//!   grid point with the feasibility mechanism).
//! * `simulate --n N --m M --f F [--d D] [--seed S] [--trace]` — run
//!   one revisionist simulation over phased racing and report
//!   everything: outputs, budgets, revisions, replay validation.
//! * `sweep --n N --m M --f F [--runs R] [--threads T]` — batch
//!   statistics (the Theorem 21 contradiction frequency among them),
//!   fanned across cores with a deterministic aggregate.
//! * `campaign --protocol P --procs N [--sched S1,S2,...] [--runs R]
//!   [--budget B] [--seed-start S] [--threads T] [--json]` — a seeded
//!   randomised campaign over a protocol family and scheduler mix;
//!   every failure records its seed, and `--seed S --sched SPEC`
//!   replays a single run exactly. Hardening knobs: `--wall-limit SECS`
//!   and `--stop-after N` watchdogs (truncation is always reported),
//!   `--cache-budget N` (bounded fingerprint cache), and
//!   `--checkpoint PATH [--checkpoint-every N]` / `--resume PATH` for
//!   interruptible campaigns whose resumed aggregates are bit-for-bit
//!   those of an uninterrupted run.
//! * `explore --protocol P [--procs N] [--m M] [--depth D]
//!   [--max-configs C] [--threads T] [--no-dpor] [--seed S] [--json]` —
//!   bounded exhaustive model checking of one protocol fixture with the
//!   happens-before-guided partial-order reduction on by default:
//!   every interleaving up to the limits is covered, commuting-step
//!   twins cost one exploration, and the report carries the reduction
//!   metric (configs visited, forks pruned, reduction factor).
//!   `--no-dpor` is the escape hatch that branches on every enabled
//!   process (same verdicts, no pruning) — the flag is recorded in the
//!   report either way. Reports are bit-identical at any `--threads`.
//! * `campaign --faults PLANS|sweep[:MAXSTEP]` — fault-injection mode:
//!   fan the base `--sched` scheduler over a space of deterministic
//!   fault plans (`sweep` enumerates every single-crash placement) and
//!   certify non-blocking progress: survivors must terminate under
//!   every plan, and any outputs must still be valid.
//! * `campaign-service --protocol P [--workers W] [--unit-runs U]
//!   [--state DIR] [--corpus DIR] [--chaos kill@unit:U,torn@result:U]`
//!   — the crash-tolerant multi-process campaign service: the matrix is
//!   partitioned into journaled work units leased to `campaign-worker`
//!   processes (heartbeats, lease expiry, retry-with-backoff,
//!   quarantine); the merged report is byte-identical to a
//!   single-process `campaign` run of the same spec, regardless of
//!   worker count, crashes, or chaos injection, and violation bundles
//!   land deduplicated in one corpus replayable by `replay`.
//! * `campaign-worker` — internal: a service worker process speaking
//!   length-prefixed JSON on stdio. Spawned by `campaign-service`, not
//!   meant for direct use.
//! * `aug --f F --m M [--ops K] [--seed S]` — drive the augmented
//!   snapshot under a random contended schedule and specification-check
//!   the run. With `--certify`, instead check every single-crash *and*
//!   single-stall placement in the Block-Update sequence (§3
//!   non-blocking certification).
//! * `replay BUNDLE.json [--threads T]` — load a portable replay
//!   bundle, re-execute its decision trace (`T` concurrent replays must
//!   all match), and exit 0 only if the recorded violation reproduces
//!   bit-for-bit. Campaign failures shrink automatically (ddmin over
//!   decisions and faults); `--bundle PATH` on `campaign` and
//!   `aug --certify` writes the minimized counterexample as a bundle.
//! * `analyze --protocol P [--procs N] [--m M] [--deny CODES] [--warn
//!   CODES] [--allow CODES] [--budget B] [--seed S] [--steps K]` — the
//!   pre-flight protocol analyzer: Pass 1 statically lints the
//!   protocol's footprints (single-writer discipline, ABA-freedom,
//!   Theorem 21 feasibility, dead steps, yield handling) and Pass 2
//!   happens-before-checks the trace of a seeded bounded round-robin
//!   run. Exits nonzero iff a deny-level diagnostic fires. The same
//!   analysis runs automatically before every `campaign` (skip with
//!   `--no-preflight`).
//! * `fuzz [--seeds A..B] [--mutants] [--corpus DIR]` — seeded
//!   generation of well-formed protocols (`gen:SEED` syntax usable with
//!   `campaign`/`analyze`/`replay` too) plus the mutation-kill harness:
//!   analyzer-reject mutants must die at pre-flight, must-violate
//!   mutants must be killed, shrunk, and bundled into the corpus, and
//!   must-stay-clean mutants must survive. Exit 0 iff every prediction
//!   holds; `--json` emits a report that is byte-identical at any
//!   `--threads`.
//! * `report` — the full experiments report (same as the
//!   `experiments_report` example).
//!
//! `--json-out PATH` on `campaign` writes the JSON report through the
//! same atomic tmp+rename path used for checkpoints and bundles.
//!
//! All arguments are plain `--key value` pairs; no external argument
//! parser is used.

use revisionist_simulations::core::bounds;
use revisionist_simulations::core::replay;
use revisionist_simulations::core::simulation::{Simulation, SimulationConfig};
use revisionist_simulations::core::stats;
use revisionist_simulations::protocols::racing::PhasedRacing;
use revisionist_simulations::smr::value::Value;
use revisionist_simulations::snapshot::client::AugOutcome;
use revisionist_simulations::tasks::agreement::consensus;
use revisionist_simulations::tasks::task::ColorlessTask;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    match command.as_str() {
        "bounds" => cmd_bounds(&args[1..]),
        "simulate" => cmd_simulate(&flags),
        "sweep" => cmd_sweep(&flags),
        "campaign" => cmd_campaign(&flags),
        "explore" => cmd_explore(&flags),
        "campaign-service" => cmd_campaign_service(&flags),
        "campaign-worker" => cmd_campaign_worker(&flags),
        "analyze" => cmd_analyze(&flags),
        "fuzz" => cmd_fuzz(&flags),
        "replay" => cmd_replay(&args[1..], &flags),
        "aug" => cmd_aug(&flags),
        "audit" => cmd_audit(&flags),
        "report" => {
            println!("run `cargo run --release --example experiments_report`");
            ExitCode::SUCCESS
        }
        "help" | "--help" | "-h" => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "revisionist-simulations — the PODC 2018 revisionist simulation, runnable\n\
         \n\
         USAGE:\n\
         \x20 revisionist-simulations bounds [N K X]\n\
         \x20 revisionist-simulations simulate --n N --m M --f F [--d D] [--seed S] [--trace]\n\
         \x20 revisionist-simulations sweep --n N --m M --f F [--runs R] [--threads T]\n\
         \x20 revisionist-simulations campaign [--protocol racing|contrarian|ladder|gen:SEED[:MUT]]\n\
         \x20\x20\x20\x20 [--procs N] [--m M] [--sched rr,random,quantum:2,obstruction:1,crash:1]\n\
         \x20\x20\x20\x20 [--runs R] [--budget B] [--seed-start S] [--threads T] [--json]\n\
         \x20\x20\x20\x20 [--seed S]  (replay one run with the first --sched spec)\n\
         \x20\x20\x20\x20 [--faults PLANS|sweep[:MAXSTEP]]  (fault-injection certification)\n\
         \x20\x20\x20\x20 [--wall-limit SECS] [--stop-after N] [--cache-budget N]\n\
         \x20\x20\x20\x20 [--checkpoint PATH] [--checkpoint-every N] [--resume PATH]\n\
         \x20\x20\x20\x20 [--bundle PATH]  (shrink the first failure into a replay bundle)\n\
         \x20\x20\x20\x20 [--json-out PATH]  (atomic JSON report)\n\
         \x20\x20\x20\x20 [--no-preflight]  (skip the mandatory pre-flight analysis)\n\
         \x20 revisionist-simulations explore [--protocol racing|contrarian|ladder|serializable|gen:SEED[:MUT]]\n\
         \x20\x20\x20\x20 [--procs N] [--m M] [--rounds R] [--depth D] [--max-configs C]\n\
         \x20\x20\x20\x20 [--threads T] [--seed S] [--json] [--no-preflight]\n\
         \x20\x20\x20\x20 [--no-dpor]  (disable partial-order reduction; same verdicts, no pruning)\n\
         \x20\x20\x20\x20 [--no-static]  (skip the static independence matrix; same verdicts)\n\
         \x20 revisionist-simulations campaign-service [--protocol P] [--procs N] [--m M]\n\
         \x20\x20\x20\x20 [--sched S1,S2,...] [--runs R] [--budget B] [--seed-start S]\n\
         \x20\x20\x20\x20 [--faults PLANS|sweep[:MAXSTEP]]  (shard a fault matrix across workers)\n\
         \x20\x20\x20\x20 [--workers W] [--unit-runs U] [--state DIR] [--corpus DIR]\n\
         \x20\x20\x20\x20 [--listen ADDR]  (TCP transport; --workers 0 = externally managed fleet)\n\
         \x20\x20\x20\x20 [--chaos kill@unit:U,torn@result:U,drop@N,delay@N,dup@N,corrupt@N,partition@A-B]\n\
         \x20\x20\x20\x20 [--max-lease-attempts K] [--lease-timeout SECS] [--summary]\n\
         \x20\x20\x20\x20 [--json] [--json-out PATH] [--no-preflight]\n\
         \x20\x20\x20\x20 (crash-tolerant multi-process campaign; resumes from --state)\n\
         \x20 revisionist-simulations campaign-worker [--connect ADDR [--tag K]]\n\
         \x20\x20\x20\x20 (service worker: spawned over stdio pipes, or TCP via --connect)\n\
         \x20 revisionist-simulations analyze [--protocol racing|contrarian|ladder|illformed|serializable|gen:SEED[:MUT]]\n\
         \x20\x20\x20\x20 [--procs N] [--m M] [--rounds R] [--seed S] [--budget B] [--steps K]\n\
         \x20\x20\x20\x20 [--deny CODES] [--warn CODES] [--allow CODES]  (RS-Wxxx, comma-separated)\n\
         \x20\x20\x20\x20 [--matrix]  (print the static independence matrix and footprints)\n\
         \x20\x20\x20\x20 [--explain RS-W0NN]  (print the paper rationale for one lint code)\n\
         \x20 revisionist-simulations fuzz [--seeds A..B] [--mutants] [--corpus DIR]\n\
         \x20\x20\x20\x20 [--kill-runs R] [--clean-runs R] [--budget B] [--threads T]\n\
         \x20\x20\x20\x20 [--json] [--json-out PATH]  (generated-protocol mutation-kill fuzzing)\n\
         \x20 revisionist-simulations replay BUNDLE.json [--threads T]\n\
         \x20 revisionist-simulations aug --f F --m M [--ops K] [--seed S] [--certify]\n\
         \x20\x20\x20\x20 [--bundle PATH]  (bundle the first failed placement)\n\
         \x20 revisionist-simulations audit --n N --k K --x X --m M [--schedules S]\n\
         \x20 revisionist-simulations report"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn get(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_bounds(args: &[String]) -> ExitCode {
    let nums: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    match nums.as_slice() {
        [n, k, x] => {
            if !(1 <= *x && *x <= *k && *k < *n) {
                eprintln!("need 1 <= x <= k < n");
                return ExitCode::FAILURE;
            }
            let lo = bounds::kset_space_lower_bound(*n, *k, *x);
            let hi = bounds::kset_space_upper_bound(*n, *k, *x);
            println!("{x}-obstruction-free {k}-set agreement among {n} processes:");
            println!("  lower bound (Corollary 33): {lo} registers");
            println!("  upper bound (n-k+x, [16]):  {hi} registers");
            println!("  partition feasibility with f = k+1 simulators, d = x direct:");
            for m in 1..=*n {
                println!(
                    "    m = {m:>3}: {}",
                    if bounds::simulation_feasible(*n, m, k + 1, *x) {
                        "feasible  (m < bound: the reduction applies)"
                    } else {
                        "infeasible (m >= bound)"
                    }
                );
            }
        }
        _ => {
            println!("{:>4} {:>4} {:>4} | {:>6} {:>6}", "n", "k", "x", "lower", "upper");
            for n in [4usize, 8, 16, 32, 64] {
                for (k, x) in [(1usize, 1usize), (2, 1), (2, 2), (n / 2, 1), (n - 1, 1)] {
                    if k == 0 || k >= n || x > k {
                        continue;
                    }
                    println!(
                        "{:>4} {:>4} {:>4} | {:>6} {:>6}",
                        n,
                        k,
                        x,
                        bounds::kset_space_lower_bound(n, k, x),
                        bounds::kset_space_upper_bound(n, k, x)
                    );
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_simulate(flags: &HashMap<String, String>) -> ExitCode {
    let n = get(flags, "n", 4);
    let m = get(flags, "m", 2);
    let f = get(flags, "f", 2);
    let d = get(flags, "d", 0);
    let seed = get(flags, "seed", 0) as u64;
    let config = SimulationConfig::new(n, m, f, d);
    if !config.is_feasible() {
        eprintln!(
            "infeasible: ({f} - {d})*{m} + {d} > {n} — m is at or above the space bound"
        );
        return ExitCode::FAILURE;
    }
    let inputs: Vec<Value> = (1..=f as i64).map(Value::Int).collect();
    let mut sim = Simulation::new(config, inputs.clone(), move |i| {
        PhasedRacing::new(m, Value::Int(i as i64 + 1))
    })
    .expect("feasible");
    sim.run_random(seed, 50_000_000).expect("protocol is OF");
    println!(
        "simulation n={n} m={m} f={f} d={d} seed={seed}: {} H-steps",
        sim.real().log().len()
    );
    for i in 0..f {
        let (scans, bus) = sim.op_counts(i);
        println!(
            "  q{i}: output {:?}; {scans} Scans, {bus} Block-Updates (b({}) = {}), \
             {} revisions",
            sim.output(i),
            i + 1,
            bounds::b_bound(m, i + 1),
            sim.revisions(i).len()
        );
    }
    let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
    match consensus().validate(&inputs, &outs) {
        Ok(()) => println!("  outputs satisfy consensus"),
        Err(e) => println!("  EXTRACTED VIOLATION: {e}"),
    }
    let report = replay::validate(&sim, move |i| {
        PhasedRacing::new(m, Value::Int(i as i64 + 1))
    })
    .expect("reconstruction");
    println!(
        "  Lemma 26/27 replay: {} ({} steps, {} hidden)",
        if report.is_ok() { "LEGAL" } else { "MISMATCH" },
        report.steps,
        report.hidden_steps
    );
    if flags.contains_key("trace") {
        println!("\nM operations:");
        for (idx, rec) in sim.real().oplog().iter().enumerate() {
            match &rec.outcome {
                AugOutcome::Scan(s) => {
                    println!("  #{idx:<3} q{}  Scan -> {:?}", rec.pid, s.view)
                }
                AugOutcome::BlockUpdate(b) => println!(
                    "  #{idx:<3} q{}  BU {:?} {:?} -> {}",
                    rec.pid,
                    b.components,
                    b.values,
                    match &b.result {
                        Some(v) => format!("atomic {v:?}"),
                        None => "YIELD".into(),
                    }
                ),
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_audit(flags: &HashMap<String, String>) -> ExitCode {
    use revisionist_simulations::core::audit::{audit_kset, AuditVerdict};
    let n = get(flags, "n", 4);
    let k = get(flags, "k", 1);
    let x = get(flags, "x", 1);
    let m = get(flags, "m", 2);
    let schedules = get(flags, "schedules", 300) as u64;
    if !(1 <= x && x <= k && k < n) {
        eprintln!("need 1 <= x <= k < n");
        return ExitCode::FAILURE;
    }
    let inputs: Vec<Value> = (1..=k as i64 + 1).map(Value::Int).collect();
    let verdict = audit_kset(
        n,
        k,
        x,
        m,
        &inputs,
        move |i| PhasedRacing::new(m, Value::Int(i as i64 + 1)),
        schedules,
    )
    .expect("audit run");
    println!(
        "audit: {x}-obstruction-free {k}-set agreement, n = {n}, claimed m = {m}"
    );
    match verdict {
        AuditVerdict::Consistent { bound, .. } => {
            println!("  CONSISTENT with Corollary 33 (bound {bound} <= m).");
            println!("  (Consistency does not certify correctness.)");
        }
        AuditVerdict::Impossible { bound, evidence, schedules_tried, .. } => {
            println!("  IMPOSSIBLE: m = {m} < {bound} = the Corollary 33 bound.");
            match evidence {
                Some(ev) => {
                    println!(
                        "  evidence: seed {} extracts wait-free outputs {:?} \
                         ({} H-steps) — a task violation.",
                        ev.seed, ev.outputs, ev.h_steps
                    );
                }
                None => println!(
                    "  no violating schedule within {schedules_tried} tries \
                     (the bound holds regardless)."
                ),
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_sweep(flags: &HashMap<String, String>) -> ExitCode {
    let n = get(flags, "n", 4);
    let m = get(flags, "m", 2);
    let f = get(flags, "f", 2);
    let runs = get(flags, "runs", 100) as u64;
    let config = SimulationConfig::new(n, m, f, 0);
    if !config.is_feasible() {
        eprintln!("infeasible partition");
        return ExitCode::FAILURE;
    }
    let threads = get(flags, "threads", 0);
    let inputs: Vec<Value> = (1..=f as i64).map(Value::Int).collect();
    let point = stats::sweep_parallel(
        config,
        &inputs,
        move |i| PhasedRacing::new(m, Value::Int(i as i64 + 1)),
        &consensus(),
        0..runs,
        50_000_000,
        threads,
    )
    .expect("sweep");
    println!("  n   m   f | runs   wf replay  viol |    maxH    meanH | maxBU≤b(i)");
    println!("{}", point.row());
    println!(
        "budgets hold: {}; revisions: {}; hidden steps: {}",
        point.budgets_hold(),
        point.revisions,
        point.hidden_steps
    );
    ExitCode::SUCCESS
}

/// Builds the seeded system factory for a campaign protocol family.
/// Shared by `campaign` (finding violations) and `replay` (reproducing
/// them from a bundle), so a bundle's `system` description rebuilds
/// exactly the system the campaign ran.
fn protocol_factory(
    protocol: &str,
    procs: usize,
    m: usize,
    rounds: usize,
) -> Option<Box<dyn Fn(u64) -> revisionist_simulations::smr::system::System + Sync>> {
    use revisionist_simulations::protocols::contrarian::contrarian_system;
    use revisionist_simulations::protocols::illformed::illformed_system;
    use revisionist_simulations::protocols::ladder::ladder_system;
    use revisionist_simulations::protocols::racing::racing_system;
    use revisionist_simulations::protocols::serializable::serializable_system;
    let inputs: Vec<Value> = (1..=procs as i64).map(Value::Int).collect();
    // Generated protocols carry their whole configuration in the name
    // (`gen:SEED[:MUTATION]`); --procs/--m/--rounds are ignored.
    if protocol.starts_with("gen:") {
        return match revisionist_simulations::smr::gen::GenSpec::parse_cli(protocol) {
            Ok(spec) => Some(Box::new(move |_seed| spec.build_system())),
            Err(e) => {
                eprintln!("{e}");
                None
            }
        };
    }
    match protocol {
        "racing" => Some(Box::new(move |_seed| racing_system(m, &inputs))),
        "ladder" => Some(Box::new(move |_seed| ladder_system(&inputs, rounds))),
        "contrarian" => Some(Box::new(move |seed| {
            // Input bits vary with the seed so the campaign covers all
            // 2^procs input assignments (deterministically per seed).
            let bits: Vec<bool> = (0..procs).map(|i| (seed >> i) & 1 == 1).collect();
            contrarian_system(&bits)
        })),
        // The analyzer's acceptance fixture (fixed shape: 4 processes,
        // one 8-component single-writer snapshot). A campaign over it
        // is rejected by the pre-flight unless --no-preflight is given.
        "illformed" => Some(Box::new(move |_seed| illformed_system())),
        // The statically serializable fixture: n blind max-register
        // writers whose independence matrix is edge-free (RS-W010).
        "serializable" => Some(Box::new(move |_seed| {
            let stamps: Vec<i64> = (1..=procs as i64).collect();
            serializable_system(&stamps)
        })),
        _ => None,
    }
}

/// A boxed campaign check: inspects a terminated system, returns the
/// violation message if the protocol's task was violated.
type ProtocolCheck =
    Box<dyn Fn(&revisionist_simulations::smr::system::System) -> Option<String> + Sync>;

/// The campaign check for a protocol family. Terminated runs of the
/// agreement protocols must satisfy consensus; a violation is the
/// observable Theorem 21 artifact and is recorded with its replayable
/// seed. The contrarian family has no output task — there the campaign
/// measures termination only.
fn protocol_check(protocol: &str, procs: usize) -> ProtocolCheck {
    // Generated protocols use the fuzz harness's partial-output check —
    // the same message text, so fuzz-corpus bundle fingerprints
    // reproduce under `replay` and `campaign`.
    if protocol.starts_with("gen:") {
        if let Ok(spec) = revisionist_simulations::smr::gen::GenSpec::parse_cli(protocol)
        {
            return Box::new(revisionist_simulations::smr::gen::fuzz::consensus_check(
                spec.inputs(),
            ));
        }
    }
    // The contrarian family has no output task; the serializable
    // writers each output their own stamp, so consensus does not apply.
    let validate_consensus = protocol != "contrarian" && protocol != "serializable";
    let inputs: Vec<Value> = (1..=procs as i64).map(Value::Int).collect();
    Box::new(move |sys| {
        if !validate_consensus || !sys.all_terminated() {
            return None;
        }
        let outs: Vec<Value> = sys.outputs().into_iter().flatten().collect();
        consensus().validate(&inputs, &outs).err().map(|e| e.to_string())
    })
}

/// Captures and ddmin-minimises one failing cell: re-runs the
/// (spec, seed, plan) cell to record its decision trace, shrinks it
/// while preserving the violation fingerprint, prints the shrink ratio
/// (stderr, so `--json` stdout stays machine-parseable), and returns
/// the minimized counterexample as a portable replay bundle.
fn minimized_bundle(
    system: &[(String, String)],
    spec: &revisionist_simulations::smr::campaign::SchedulerSpec,
    seed: u64,
    budget: usize,
    plan: &revisionist_simulations::smr::fault::FaultPlan,
    factory: &dyn Fn(u64) -> revisionist_simulations::smr::system::System,
    check: revisionist_simulations::smr::shrink::CexCheck,
) -> Option<revisionist_simulations::smr::bundle::ReplayBundle> {
    use revisionist_simulations::smr::bundle::{tool_id, ReplayBundle, BUNDLE_VERSION};
    use revisionist_simulations::smr::shrink;

    let Some((cex, _)) = shrink::capture(spec, seed, budget, plan, factory, check)
    else {
        eprintln!("  could not re-capture the failure as a decision trace");
        return None;
    };
    let seeded = || factory(seed);
    let (shrunk, report) = shrink::shrink(&cex, &seeded, check);
    eprintln!("  shrunk counterexample: {}", report.ratio());
    let outcome = shrink::execute(&seeded, &shrunk, check);
    let (Some(violation), Some(fingerprint)) =
        (outcome.violation.clone(), outcome.fingerprint())
    else {
        eprintln!("  shrunk trace no longer violates — not bundling");
        return None;
    };
    Some(ReplayBundle {
        version: BUNDLE_VERSION,
        tool: tool_id(),
        system: system.to_vec(),
        scheduler: spec.to_string(),
        seed,
        plan: shrunk.plan.to_string(),
        decisions: shrunk.decisions.iter().map(|p| p.0).collect(),
        fingerprint,
        violation,
    })
}

/// [`minimized_bundle`], writing the result to a `--bundle PATH` when
/// one was given.
fn shrink_failure_to_bundle(
    bundle: Option<(&str, &[(String, String)])>,
    spec: &revisionist_simulations::smr::campaign::SchedulerSpec,
    seed: u64,
    budget: usize,
    plan: &revisionist_simulations::smr::fault::FaultPlan,
    factory: &dyn Fn(u64) -> revisionist_simulations::smr::system::System,
    check: revisionist_simulations::smr::shrink::CexCheck,
) -> bool {
    let system = bundle.map_or(&[][..], |(_, s)| s);
    let Some(minimized) =
        minimized_bundle(system, spec, seed, budget, plan, factory, check)
    else {
        return false;
    };
    let Some((path, _)) = bundle else {
        return true;
    };
    match minimized.store(std::path::Path::new(path)) {
        Ok(()) => {
            eprintln!("  replay bundle written to {path}");
            true
        }
        Err(e) => {
            eprintln!("  cannot write bundle {path}: {e}");
            false
        }
    }
}

/// Writes a JSON report atomically when `--json-out PATH` was given.
fn write_json_out(flags: &HashMap<String, String>, json: &str) -> bool {
    let Some(path) = flags.get("json-out") else {
        return true;
    };
    match revisionist_simulations::smr::json::write_atomic(
        std::path::Path::new(path),
        json,
    ) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("cannot write --json-out {path}: {e}");
            false
        }
    }
}

/// The `explore` subcommand: bounded exhaustive model checking of one
/// protocol fixture through the deterministic parallel frontier, with
/// happens-before-guided partial-order reduction on by default
/// (`--no-dpor` disables it; the active setting is recorded in the
/// report so artifacts stay self-describing). Exits nonzero on a
/// violation or an exploration error.
fn cmd_explore(flags: &HashMap<String, String>) -> ExitCode {
    use revisionist_simulations::smr::explore::{Explorer, Limits};

    let protocol = flags.get("protocol").map_or("racing", String::as_str);
    let procs = get(flags, "procs", 3);
    let m = get(flags, "m", 2);
    let rounds = get(flags, "rounds", 3);
    let depth = get(flags, "depth", 64);
    let max_configs = get(flags, "max-configs", 200_000);
    let threads = get(flags, "threads", 1).max(1);
    let dpor = !flags.contains_key("no-dpor");
    let statics = !flags.contains_key("no-static");
    let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(0);

    let Some(factory) = protocol_factory(protocol, procs, m, rounds) else {
        eprintln!("unknown protocol: {protocol}");
        return ExitCode::FAILURE;
    };
    let system = factory(seed);
    let check = protocol_check(protocol, procs);
    let explorer = Explorer::new(Limits { max_depth: depth, max_configs })
        .with_threads(threads)
        .with_dpor(dpor)
        .with_static(statics)
        .with_preflight(!flags.contains_key("no-preflight"));
    let start = std::time::Instant::now();
    let report = match explorer.explore_parallel(&system, &*check) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("exploration failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();
    let states_per_sec = report.configs_visited as f64 / elapsed.as_secs_f64().max(1e-9);

    if flags.contains_key("json") {
        let violation = report.violation.as_ref().map_or("null".to_string(), |(sched, msg)| {
            format!(
                "{{\"schedule\": [{}], \"message\": {}}}",
                sched.iter().map(|p| p.0.to_string()).collect::<Vec<_>>().join(", "),
                revisionist_simulations::smr::json::escape(msg),
            )
        });
        println!(
            "{{\n  \"protocol\": {},\n  \"procs\": {},\n  \"threads\": {},\n  \
             \"dpor\": {},\n  \"static_seed\": {},\n  \"static_indep_pairs\": {},\n  \
             \"prefilter_hits\": {},\n  \
             \"configs_visited\": {},\n  \"terminals\": {},\n  \
             \"pruned\": {},\n  \"reduction_factor\": {:.4},\n  \
             \"truncated\": {},\n  \"truncation\": {},\n  \"violation\": {},\n  \
             \"elapsed_ms\": {},\n  \"states_per_sec\": {:.0}\n}}",
            revisionist_simulations::smr::json::escape(protocol),
            system.process_count(),
            threads,
            report.dpor,
            report.static_seed,
            report.static_indep_pairs,
            report.prefilter_hits,
            report.configs_visited,
            report.terminals,
            report.pruned,
            report.reduction_factor(),
            report.truncated,
            report
                .truncation
                .as_deref()
                .map_or("null".into(), revisionist_simulations::smr::json::escape),
            violation,
            elapsed.as_millis(),
            states_per_sec,
        );
    } else {
        println!(
            "explore {protocol}: {} processes, depth ≤ {depth}, threads {threads}, \
             dpor {}, static seeding {}",
            system.process_count(),
            if report.dpor { "on" } else { "off" },
            if report.static_seed { "on" } else { "off" },
        );
        if report.static_seed {
            println!(
                "  static matrix: {} independent pairs, {} prefilter hits",
                report.static_indep_pairs, report.prefilter_hits,
            );
        }
        println!(
            "  visited {} configurations ({} terminals) in {:.1}ms ({:.0} states/s)",
            report.configs_visited,
            report.terminals,
            elapsed.as_secs_f64() * 1e3,
            states_per_sec,
        );
        println!(
            "  reduction: {} forks pruned, factor {:.2}x",
            report.pruned,
            report.reduction_factor(),
        );
        if report.truncated {
            println!(
                "  TRUNCATED: {}",
                report.truncation.as_deref().unwrap_or("limits reached")
            );
        }
        match &report.violation {
            None => println!("  no violations"),
            Some((sched, msg)) => {
                println!("  VIOLATION: {msg}");
                println!(
                    "  schedule: {}",
                    sched.iter().map(|p| format!("p{}", p.0)).collect::<Vec<_>>().join(" ")
                );
            }
        }
    }
    if report.violation.is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_campaign(flags: &HashMap<String, String>) -> ExitCode {
    use revisionist_simulations::smr::campaign::{
        replay_run, run_campaign_with, CampaignCheckpoint, CampaignConfig,
        CampaignOptions, FaultCampaignConfig, SchedulerSpec,
    };
    use revisionist_simulations::smr::fault::FaultPlan;
    use std::time::Duration;

    let protocol = flags.get("protocol").map_or("racing", String::as_str);
    let procs = get(flags, "procs", 3);
    let m = get(flags, "m", 2);
    let rounds = get(flags, "rounds", 3);
    let specs: Vec<SchedulerSpec> = {
        let raw = flags.get("sched").map_or("random", String::as_str);
        let mut parsed = Vec::new();
        for part in raw.split(',').filter(|p| !p.is_empty()) {
            match SchedulerSpec::parse(part) {
                Ok(spec) => parsed.push(spec),
                Err(e) => {
                    eprintln!("{e}");
                    eprintln!(
                        "valid --sched specs: rr | random | solo:P | quantum:Q \
                         | obstruction:X | crash:C (comma-separated)"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        parsed
    };
    if specs.is_empty() {
        eprintln!("--sched needs at least one scheduler spec");
        return ExitCode::FAILURE;
    }

    let Some(factory) = protocol_factory(protocol, procs, m, rounds) else {
        eprintln!(
            "unknown --protocol {protocol} (racing, contrarian, ladder, illformed, \
             serializable, gen:SEED[:MUTATION])"
        );
        return ExitCode::FAILURE;
    };

    // Mandatory pre-flight: lint the campaign's system before any run
    // burns exploration time. Warnings go to stderr (stdout stays
    // machine-parseable for --json); deny-level findings reject the
    // campaign unless --no-preflight.
    if !flags.contains_key("no-preflight") {
        use revisionist_simulations::smr::analyze::LintConfig;
        use revisionist_simulations::smr::campaign::preflight_campaign;
        let base_seed = get(flags, "seed-start", 0) as u64;
        match preflight_campaign(&factory, base_seed, &LintConfig::default()) {
            Ok(report) => {
                if report.warn_count() > 0 {
                    eprintln!("{}", report.render());
                }
                eprintln!("preflight: ok ({} warnings)", report.warn_count());
            }
            Err(e) => {
                eprintln!("{e}");
                eprintln!("(--no-preflight runs the campaign anyway)");
                return ExitCode::FAILURE;
            }
        }
    }

    let check = protocol_check(protocol, procs);

    let budget = get(flags, "budget", 2_000);
    // The ordered system description stamped into replay bundles: how
    // `replay` rebuilds exactly this campaign's system and check.
    let bundle_system: Vec<(String, String)> = vec![
        ("kind".into(), "campaign".into()),
        ("protocol".into(), protocol.to_string()),
        ("procs".into(), procs.to_string()),
        ("m".into(), m.to_string()),
        ("rounds".into(), rounds.to_string()),
    ];

    if let Some(faults_raw) = flags.get("faults") {
        return cmd_campaign_faults(
            flags,
            faults_raw,
            FaultCampaignConfig {
                base: specs[0].clone(),
                plans: Vec::new(),
                seed_start: get(flags, "seed-start", 0) as u64,
                runs: get(flags, "runs", 100),
                budget,
                threads: get(flags, "threads", 0),
            },
            procs,
            protocol,
            &factory,
            bundle_system,
        );
    }
    if let Some(seed) = flags.get("seed") {
        let Ok(seed) = seed.parse::<u64>() else {
            eprintln!("bad --seed");
            return ExitCode::FAILURE;
        };
        let record = replay_run(&specs[0], seed, budget, &factory, &check);
        println!(
            "replay {} seed {}: {} steps, {}",
            record.scheduler,
            record.seed,
            record.steps,
            if record.terminated { "terminated" } else { "not terminated" }
        );
        match (&record.violation, &record.error) {
            (Some(v), _) => println!("  VIOLATION: {v}"),
            (None, Some(e)) => println!("  ERROR: {e}"),
            (None, None) => println!("  clean"),
        }
        return ExitCode::SUCCESS;
    }

    let config = CampaignConfig {
        schedulers: specs,
        seed_start: get(flags, "seed-start", 0) as u64,
        runs: get(flags, "runs", 100),
        budget,
        threads: get(flags, "threads", 0),
    };
    // The campaign identity stamped into checkpoints; resume refuses a
    // checkpoint from any other campaign instead of silently merging
    // incompatible aggregates.
    let spec_id =
        revisionist_simulations::smr::campaign::campaign_spec_id(protocol, &config);
    let mut options = CampaignOptions {
        wall_limit: flags
            .get("wall-limit")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs),
        stop_after: flags.get("stop-after").and_then(|v| v.parse().ok()),
        cache_budget: flags.get("cache-budget").and_then(|v| v.parse().ok()),
        checkpoint_every: flags.get("checkpoint-every").and_then(|v| v.parse().ok()),
        checkpoint_path: flags.get("checkpoint").map(std::path::PathBuf::from),
        resume_from: None,
        spec_id: Some(spec_id.clone()),
        ..CampaignOptions::default()
    };
    if let Some(path) = flags.get("resume") {
        match CampaignCheckpoint::load(std::path::Path::new(path)) {
            Ok(checkpoint) => {
                if let Err(e) = checkpoint.ensure_matches(&spec_id) {
                    eprintln!("cannot resume: {e}");
                    return ExitCode::FAILURE;
                }
                options.resume_from = Some(checkpoint);
                // Keep checkpointing to the same file unless overridden.
                if options.checkpoint_path.is_none() {
                    options.checkpoint_path = Some(std::path::PathBuf::from(path));
                }
            }
            Err(e) => {
                eprintln!("cannot resume: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = run_campaign_with(&config, &options, &factory, &check);
    if !write_json_out(flags, &report.to_json()) {
        return ExitCode::FAILURE;
    }
    // The first failure shrinks automatically: a raw violating schedule
    // is replayable but noisy; the ddmin-minimized trace (and, with
    // --bundle, its portable artifact) is the useful reproducer.
    if let Some(failure) = report.failures.iter().find(|r| r.violation.is_some()) {
        match SchedulerSpec::parse(&failure.scheduler) {
            Ok(spec) => {
                shrink_failure_to_bundle(
                    flags
                        .get("bundle")
                        .map(|p| (p.as_str(), bundle_system.as_slice())),
                    &spec,
                    failure.seed,
                    budget,
                    &FaultPlan::none(),
                    &|seed| factory(seed),
                    &|sys, _crashed| check(sys),
                );
            }
            Err(e) => eprintln!("  cannot shrink failure: {e}"),
        }
    } else if flags.contains_key("bundle") {
        eprintln!("  no violation to bundle (bundles record violations only)");
    }
    if flags.contains_key("json") {
        print!("{}", report.to_json());
        return ExitCode::SUCCESS;
    }
    println!(
        "campaign: protocol={protocol} procs={procs} schedulers=[{}] \
         seeds={}..{}",
        config
            .schedulers
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(","),
        config.seed_start,
        config.seed_start + config.runs as u64,
    );
    println!(
        "  {} runs: {} terminated, {} distinct configs, {} total steps",
        report.total_runs,
        report.terminated_runs,
        report.distinct_configs,
        report.total_steps,
    );
    if let Some(notice) = &report.truncation {
        println!("  TRUNCATED: {notice} ({} runs skipped)", report.skipped_runs);
    }
    if report.cache_truncated {
        println!(
            "  note: fingerprint cache hit its budget; distinct configs is a \
             lower bound"
        );
    }
    for tally in &report.per_scheduler {
        println!(
            "  {:<14} {} runs, {} terminated, {} failures",
            tally.scheduler, tally.runs, tally.terminated, tally.failures
        );
    }
    if report.failures.is_empty() {
        println!("  no violations or errors");
    } else {
        println!("  {} failing runs (each replayable):", report.failures.len());
        for r in report.failures.iter().take(10) {
            println!(
                "    --sched {} --seed {}: {}",
                r.scheduler,
                r.seed,
                r.violation.as_deref().or(r.error.as_deref()).unwrap_or("?")
            );
        }
        if report.failures.len() > 10 {
            println!("    ... and {} more", report.failures.len() - 10);
        }
    }
    ExitCode::SUCCESS
}

/// The `analyze` subcommand: Pass 1 (static lint of the protocol's
/// footprints) plus Pass 2 (happens-before check of a seeded bounded
/// round-robin run). A runtime `WriterViolation` during the driven run
/// is converted into an RS-W006 diagnostic (and the offending process
/// marked stuck) instead of aborting — the ill-formed fixture's
/// trespasser is reportable, not fatal. Exits nonzero iff any
/// deny-level diagnostic fires.
fn cmd_analyze(flags: &HashMap<String, String>) -> ExitCode {
    use revisionist_simulations::smr::analyze::{self, LintCode, LintConfig};
    use revisionist_simulations::smr::error::ModelError;
    use revisionist_simulations::smr::process::ProcessId;

    // `--explain RS-W0NN` needs no protocol: print the code's summary
    // and paper rationale, exit 1 on an unknown code (with the parser's
    // did-you-mean suggestion on stderr).
    if let Some(spec) = flags.get("explain") {
        return match LintCode::parse(spec) {
            Ok(code) => {
                println!("{}: {}", code.id(), code.summary());
                println!();
                println!("{}", code.rationale());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                eprintln!("known lint codes: {}", analyze::known_codes());
                ExitCode::FAILURE
            }
        };
    }

    let protocol = flags.get("protocol").map_or("racing", String::as_str);
    let procs = get(flags, "procs", 3);
    let m = get(flags, "m", 2);
    let rounds = get(flags, "rounds", 3);
    let budget = get(flags, "budget", analyze::DEFAULT_BUDGET);
    let seed = get(flags, "seed", 0) as u64;
    let steps = get(flags, "steps", 2_000);

    let mut config = LintConfig::default();
    let deny = flags.get("deny").map_or("", String::as_str);
    let warn = flags.get("warn").map_or("", String::as_str);
    let allow = flags.get("allow").map_or("", String::as_str);
    if let Err(e) = config.apply_overrides(deny, warn, allow) {
        eprintln!("{e}");
        eprintln!("known lint codes: {}", analyze::known_codes());
        return ExitCode::FAILURE;
    }

    let Some(factory) = protocol_factory(protocol, procs, m, rounds) else {
        eprintln!(
            "unknown --protocol {protocol} (racing, contrarian, ladder, illformed, \
             serializable, gen:SEED[:MUTATION])"
        );
        return ExitCode::FAILURE;
    };
    let initial = factory(seed);
    let n = initial.process_count();
    println!(
        "analyze: protocol={protocol} n={n} m={} (seed {seed})",
        initial.space_complexity()
    );

    // Pass 1: static lint — no schedule executes.
    let mut findings = analyze::lint_system(&initial, budget);

    // Pass 3: static interference over the same covering budget.
    // `--matrix` prints the exact matrix the findings derive from.
    let matrix = analyze::InterferenceMatrix::build(&initial, budget);
    if flags.contains_key("matrix") {
        println!("{}", matrix.render());
    }
    findings.extend(analyze::interfere_findings(&initial, &matrix));

    // Pass 2: happens-before check over a seeded bounded round-robin
    // run. Ownership violations the runtime rejects become RS-W006
    // findings; the trace itself then replays cleanly.
    let mut sys = initial.clone();
    let mut stuck = vec![false; n];
    for slot in 0..steps {
        let pid = ProcessId(slot % n);
        if stuck[pid.0] || sys.is_terminated(pid) {
            if (0..n).all(|i| stuck[i] || sys.is_terminated(ProcessId(i))) {
                break;
            }
            continue;
        }
        match sys.step(pid) {
            Ok(_) => {}
            Err(ModelError::WriterViolation { process, component }) => {
                findings.push((
                    LintCode::HappensBefore,
                    format!(
                        "run (seed {seed}): runtime rejected p{process}'s write to \
                         single-writer component {component}; process marked stuck"
                    ),
                ));
                stuck[process] = true;
            }
            Err(e) => {
                eprintln!("analyze: driven run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let events = sys.trace().to_vec();
    findings.extend(analyze::check_execution(&initial, &events));

    let report = analyze::AnalysisReport::from_findings(findings, &config);
    for diagnostic in &report.diagnostics {
        println!("{diagnostic}");
    }
    if report.is_clean() {
        println!("analysis: clean ({} warnings)", report.warn_count());
        ExitCode::SUCCESS
    } else {
        println!(
            "analysis: {} deny-level, {} warn-level diagnostics",
            report.deny_count(),
            report.warn_count()
        );
        ExitCode::FAILURE
    }
}

/// The `fuzz` subcommand: seeded protocol generation plus the
/// mutation-kill harness. Exit code 0 iff every generated base passed
/// pre-flight and every mutant matched its paper-predicted verdict.
fn cmd_fuzz(flags: &HashMap<String, String>) -> ExitCode {
    use revisionist_simulations::smr::gen::fuzz::MutantResult;
    use revisionist_simulations::smr::gen::{run_fuzz, FuzzConfig};

    let seeds_raw = flags.get("seeds").map_or("0..16", String::as_str);
    let seeds = match seeds_raw.split_once("..") {
        Some((a, b)) => match (a.parse::<u64>(), b.parse::<u64>()) {
            (Ok(a), Ok(b)) if a < b => a..b,
            _ => {
                eprintln!("bad --seeds `{seeds_raw}` (need A..B with A < B)");
                return ExitCode::FAILURE;
            }
        },
        None => {
            eprintln!("bad --seeds `{seeds_raw}` (need A..B, e.g. 0..100)");
            return ExitCode::FAILURE;
        }
    };
    let defaults = FuzzConfig::default();
    let config = FuzzConfig {
        seeds,
        mutants: flags.contains_key("mutants"),
        corpus: flags.get("corpus").map(std::path::PathBuf::from),
        kill_runs: get(flags, "kill-runs", defaults.kill_runs as usize) as u64,
        clean_runs: get(flags, "clean-runs", defaults.clean_runs as usize) as u64,
        budget: get(flags, "budget", defaults.budget),
        threads: get(flags, "threads", 0),
    };

    let report = run_fuzz(&config);
    let json = report.to_json();
    if !write_json_out(flags, &json) {
        return ExitCode::FAILURE;
    }
    if flags.contains_key("json") {
        print!("{json}");
    } else {
        println!(
            "fuzz: {} protocols generated from seeds {}..{}",
            report.generated(),
            config.seeds.start,
            config.seeds.end
        );
        println!(
            "  preflight: {} ok, {} rejected",
            report.generated() - report.preflight_rejected(),
            report.preflight_rejected()
        );
        if config.mutants {
            println!(
                "  must-violate:    {} killed, {} survived",
                report.killed(),
                report.survived()
            );
            println!(
                "  must-stay-clean: {} clean, {} flagged",
                report.clean(),
                report.flagged()
            );
            println!(
                "  analyzer-reject: {} rejected at preflight, {} missed",
                report.rejected(),
                report.rejected_missed()
            );
            println!("  bundles stored:  {}", report.bundles_stored());
        }
        for seed in &report.per_seed {
            for mutant in &seed.mutants {
                if !mutant.prediction_held() {
                    println!(
                        "  PREDICTION FAILED: gen:{}:{} predicted {}, got {}",
                        seed.seed,
                        mutant.mutation.name(),
                        mutant.mutation.verdict().name(),
                        mutant.result.tag()
                    );
                    if let MutantResult::Flagged { seed: s, violation } = &mutant.result
                    {
                        println!("    run seed {s}: {violation}");
                    }
                }
            }
        }
        println!(
            "fuzz: predictions {}",
            if report.predictions_hold() { "hold" } else { "VIOLATED" }
        );
    }
    if report.predictions_hold() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--faults` usage hint, shared by `campaign` and
/// `campaign-service`.
const FAULTS_HINT: &str = "valid --faults: `sweep[:MAXSTEP]` (every single-crash \
                           placement) or comma-separated plans of crash@P:S, \
                           stall@P:FROM-TO, crash-after@P:OP:K joined by `+`";

/// Expands a `--faults` argument into concrete fault plans: `sweep`
/// crashes each process before each Block-Update step, anything else
/// is a comma-separated plan list.
fn parse_fault_plans(
    faults_raw: &str,
    procs: usize,
) -> Result<Vec<revisionist_simulations::smr::fault::FaultPlan>, String> {
    use revisionist_simulations::smr::fault::FaultPlan;
    let plans = if let Some(rest) = faults_raw.strip_prefix("sweep") {
        let max_step = if rest.is_empty() {
            5 // The 6-step Block-Update sequence: crash before each step.
        } else if let Some(bound) = rest.strip_prefix(':') {
            bound
                .parse()
                .map_err(|_| format!("bad --faults sweep bound `{bound}`"))?
        } else {
            return Err(format!("bad --faults `{faults_raw}`"));
        };
        FaultPlan::single_crash_plans(procs, max_step)
    } else {
        let mut parsed = Vec::new();
        for part in faults_raw.split(',').filter(|p| !p.is_empty()) {
            parsed.push(FaultPlan::parse(part).map_err(|e| e.to_string())?);
        }
        parsed
    };
    if plans.is_empty() {
        return Err("--faults needs at least one plan".into());
    }
    Ok(plans)
}

/// The fault-campaign certificate for a protocol family, shared by the
/// single-process `campaign --faults` runner and service workers — both
/// sides must agree exactly or merged fault reports would drift from
/// the single-process reference.
///
/// Validity survives crashes: any output a survivor produces must be
/// some process's input. Agreement need not — obstruction-free
/// consensus is not crash-tolerant, which is the paper's point — so
/// the certificate here is non-blocking progress plus validity.
fn fault_validity_check(
    protocol: &str,
    procs: usize,
) -> impl Fn(
    &revisionist_simulations::smr::system::System,
    &[revisionist_simulations::smr::process::ProcessId],
) -> Option<String>
       + Sync {
    let inputs: Option<Vec<Value>> = (protocol != "contrarian")
        .then(|| (1..=procs as i64).map(Value::Int).collect());
    move |sys, _crashed| {
        let inputs = inputs.as_ref()?;
        sys.outputs()
            .into_iter()
            .flatten()
            .find(|out| !inputs.contains(out))
            .map(|out| format!("output {out:?} is not any process's input"))
    }
}

fn cmd_campaign_faults(
    flags: &HashMap<String, String>,
    faults_raw: &str,
    mut config: revisionist_simulations::smr::campaign::FaultCampaignConfig,
    procs: usize,
    protocol: &str,
    factory: &(dyn Fn(u64) -> revisionist_simulations::smr::system::System + Sync),
    bundle_system: Vec<(String, String)>,
) -> ExitCode {
    use revisionist_simulations::smr::campaign::run_fault_campaign;
    use revisionist_simulations::smr::fault::FaultPlan;

    config.plans = match parse_fault_plans(faults_raw, procs) {
        Ok(plans) => plans,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{FAULTS_HINT}");
            return ExitCode::FAILURE;
        }
    };

    let check = fault_validity_check(protocol, procs);
    let report = run_fault_campaign(&config, factory, &check);

    if !write_json_out(flags, &report.to_json()) {
        return ExitCode::FAILURE;
    }
    // As in the plain campaign: the first violating run shrinks
    // automatically (decisions *and* fault plan), bundling on request.
    if let Some(failure) = report.failures.iter().find(|r| r.violation.is_some()) {
        match FaultPlan::parse(&failure.plan) {
            Ok(plan) => {
                shrink_failure_to_bundle(
                    flags
                        .get("bundle")
                        .map(|p| (p.as_str(), bundle_system.as_slice())),
                    &config.base,
                    failure.seed,
                    config.budget,
                    &plan,
                    &|seed| factory(seed),
                    &check,
                );
            }
            Err(e) => eprintln!("  cannot shrink failure: {e}"),
        }
    } else if flags.contains_key("bundle") {
        eprintln!("  no violation to bundle (bundles record violations only)");
    }

    if flags.contains_key("json") {
        print!("{}", report.to_json());
        return if report.is_certified() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    println!(
        "fault campaign: base={} plans={} seeds={}..{}",
        report.scheduler,
        report.plans,
        config.seed_start,
        config.seed_start + config.runs as u64,
    );
    println!(
        "  {} runs, {} certified, {} total steps",
        report.total_runs, report.certified_runs, report.total_steps,
    );
    if report.is_certified() {
        println!("  CERTIFIED: survivors made progress under every fault plan");
        ExitCode::SUCCESS
    } else {
        println!("  {} failing runs (each replayable):", report.failures.len());
        for r in report.failures.iter().take(10) {
            let why = r
                .violation
                .as_deref()
                .or(r.error.as_deref())
                .unwrap_or("survivors did not terminate");
            println!("    --faults {} --seed-start {} --runs 1: {}", r.plan, r.seed, why);
        }
        if report.failures.len() > 10 {
            println!("    ... and {} more", report.failures.len() - 10);
        }
        ExitCode::FAILURE
    }
}

/// Executes one leased work unit inside a `campaign-worker` process:
/// rebuilds the protocol from the unit's system description, runs its
/// seed range single-threaded with a per-run checkpoint (so a SIGKILL
/// loses at most the uncommitted run), resumes a dead predecessor's
/// partial checkpoint when its spec id matches, publishes every
/// violation as a deduplicated corpus bundle, and returns the shard
/// result in global matrix coordinates.
fn worker_execute_unit(
    unit: &revisionist_simulations::smr::service::WorkUnit,
    state_dir: &std::path::Path,
    corpus_dir: &std::path::Path,
) -> Result<revisionist_simulations::smr::service::ShardResult, String> {
    use revisionist_simulations::smr::campaign::{
        run_campaign_with, CampaignCheckpoint, CampaignConfig, CampaignOptions,
        SchedulerSpec,
    };
    use revisionist_simulations::smr::fault::FaultPlan;
    use revisionist_simulations::smr::service::ShardResult;

    let field = |key: &str| {
        unit.system.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    };
    let protocol =
        field("protocol").ok_or("unit system lacks `protocol`")?.to_string();
    let num = |key: &str, default: usize| {
        field(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let procs = num("procs", 3);
    let m = num("m", 2);
    let rounds = num("rounds", 3);
    let factory = protocol_factory(&protocol, procs, m, rounds)
        .ok_or_else(|| format!("unknown protocol `{protocol}`"))?;
    // A non-empty fault plan switches the unit to the fault matrix.
    if !unit.plan.is_empty() {
        return worker_execute_fault_unit(unit, &protocol, procs, &factory);
    }
    let check = protocol_check(&protocol, procs);
    let sched =
        SchedulerSpec::parse(&unit.scheduler).map_err(|e| e.to_string())?;

    let config = CampaignConfig {
        schedulers: vec![sched.clone()],
        seed_start: unit.seed_start,
        runs: unit.runs,
        budget: unit.budget,
        threads: 1,
    };
    let spec_id = unit.spec_id();
    let checkpoint_path =
        state_dir.join(format!("unit-{}.checkpoint.json", unit.id));
    let mut options = CampaignOptions {
        checkpoint_every: Some(1),
        checkpoint_path: Some(checkpoint_path.clone()),
        spec_id: Some(spec_id.clone()),
        ..CampaignOptions::default()
    };
    // A killed predecessor's partial checkpoint resumes — but only if it
    // was written for exactly this unit of this campaign.
    if let Ok(checkpoint) = CampaignCheckpoint::load(&checkpoint_path) {
        if checkpoint.ensure_matches(&spec_id).is_ok() {
            options.resume_from = Some(checkpoint);
        }
    }
    let report = run_campaign_with(&config, &options, &factory, &check);

    // The terminal checkpoint is the shard payload: every completed
    // record plus the fingerprint set, durable before the result frame.
    let checkpoint = CampaignCheckpoint::load(&checkpoint_path)
        .map_err(|e| format!("unit checkpoint unreadable after run: {e}"))?;
    if checkpoint.completed.len() < unit.runs {
        return Err(format!(
            "unit incomplete: {} of {} runs recorded",
            checkpoint.completed.len(),
            unit.runs
        ));
    }

    // Every violating run becomes a minimized, deduplicated corpus
    // bundle; dedup is by violation fingerprint, so crash/retry replays
    // of the same failure collapse to one artifact.
    for (_, record) in checkpoint.completed.iter().filter(|(_, r)| r.violation.is_some())
    {
        let Some(bundle) = minimized_bundle(
            &unit.system,
            &sched,
            record.seed,
            unit.budget,
            &FaultPlan::none(),
            &|seed| factory(seed),
            &|sys, _crashed| check(sys),
        ) else {
            continue;
        };
        match bundle.store_dedup(corpus_dir) {
            Ok(true) => eprintln!(
                "  corpus: new bundle {} (seed {})",
                bundle.corpus_file_name(),
                record.seed
            ),
            Ok(false) => {}
            Err(e) => return Err(format!("cannot write corpus bundle: {e}")),
        }
    }

    Ok(ShardResult {
        unit: unit.id,
        records: checkpoint
            .completed
            .into_iter()
            .map(|(local, record)| (unit.index_base + local, record))
            .collect(),
        fault_records: Vec::new(),
        fingerprints: checkpoint.fingerprints,
        degraded_runs: report.degraded_runs,
        cache_truncated: report.cache_truncated,
    })
}

/// Executes one leased *fault* unit: a contiguous seed range under one
/// crash/stall placement, using the same record runner and certificate
/// as `campaign --faults`. Fault runs are deterministic and cheap per
/// unit, so there is no per-run checkpoint — a retried unit simply
/// reruns, and the merge layer's first-wins dedup cannot tell the
/// difference.
fn worker_execute_fault_unit(
    unit: &revisionist_simulations::smr::service::WorkUnit,
    protocol: &str,
    procs: usize,
    factory: &(dyn Fn(u64) -> revisionist_simulations::smr::system::System + Sync),
) -> Result<revisionist_simulations::smr::service::ShardResult, String> {
    use revisionist_simulations::smr::campaign::{
        run_fault_records, CampaignOptions, FaultCampaignConfig, SchedulerSpec,
    };
    use revisionist_simulations::smr::fault::FaultPlan;
    use revisionist_simulations::smr::service::ShardResult;

    let base =
        SchedulerSpec::parse(&unit.scheduler).map_err(|e| e.to_string())?;
    let plan = FaultPlan::parse(&unit.plan).map_err(|e| e.to_string())?;
    let config = FaultCampaignConfig {
        base,
        plans: vec![plan],
        seed_start: unit.seed_start,
        runs: unit.runs,
        budget: unit.budget,
        threads: 1,
    };
    let check = fault_validity_check(protocol, procs);
    let records =
        run_fault_records(&config, &CampaignOptions::default(), factory, &check);
    if records.len() != unit.runs {
        return Err(format!(
            "fault unit incomplete: {} of {} runs recorded",
            records.len(),
            unit.runs
        ));
    }
    Ok(ShardResult {
        unit: unit.id,
        records: Vec::new(),
        fault_records: records
            .into_iter()
            .enumerate()
            .map(|(local, record)| (unit.index_base + local, record))
            .collect(),
        fingerprints: Vec::new(),
        degraded_runs: 0,
        cache_truncated: false,
    })
}

/// The `campaign-worker` subcommand: a service worker process. Without
/// `--connect` it reads length-prefixed [`CoordMsg`] frames from stdin
/// (the spawned-process transport); with `--connect ADDR` it dials the
/// coordinator over TCP instead ([`campaign_worker_remote`]). Either
/// way it heartbeats on a background thread while executing a leased
/// unit and sends the shard result back as a frame. Exits nonzero on
/// any error — the coordinator's lease machinery treats a dead worker
/// as a requeue.
fn cmd_campaign_worker(flags: &HashMap<String, String>) -> ExitCode {
    use revisionist_simulations::smr::service::{
        read_frame, write_frame, CoordMsg, WorkerMsg,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    if let Some(addr) = flags.get("connect") {
        let tag = flags.get("tag").and_then(|v| v.parse().ok());
        return campaign_worker_remote(addr, tag);
    }

    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    // Frames must hit the pipe whole; stdout writes go through one
    // mutex so heartbeats never interleave with a result frame.
    let out = Arc::new(Mutex::new(std::io::stdout()));
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            // Clean EOF between frames: the coordinator went away.
            Ok(None) => return ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("campaign-worker: bad frame: {e}");
                return ExitCode::FAILURE;
            }
        };
        let msg = match CoordMsg::parse(&frame) {
            Ok(msg) => msg,
            Err(e) => {
                eprintln!("campaign-worker: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (unit, state_dir, corpus_dir, heartbeat_ms) = match msg {
            CoordMsg::Shutdown => return ExitCode::SUCCESS,
            CoordMsg::Lease { unit, state_dir, corpus_dir, heartbeat_ms } => {
                (unit, state_dir, corpus_dir, heartbeat_ms)
            }
            // Handshake frames never arrive over stdio; tolerate strays.
            CoordMsg::Welcome { .. } | CoordMsg::Reject { .. } => continue,
        };

        // Heartbeat immediately (the lease is live before the first run
        // finishes), then keep beating from a background thread for the
        // duration of the unit.
        let stop = Arc::new(AtomicBool::new(false));
        let beats = {
            let out = Arc::clone(&out);
            let stop = Arc::clone(&stop);
            let unit_id = unit.id;
            let period = Duration::from_millis(heartbeat_ms.max(1));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let beat = WorkerMsg::Heartbeat { unit: unit_id }.to_json();
                    let sent = {
                        let mut out = out.lock().expect("stdout lock");
                        write_frame(&mut *out, &beat).is_ok()
                    };
                    if !sent {
                        // Closed pipe: the coordinator died or revoked
                        // the lease; executing to completion is still
                        // useful (the checkpoint survives).
                        break;
                    }
                    std::thread::sleep(period);
                }
            })
        };
        let result = worker_execute_unit(
            &unit,
            std::path::Path::new(&state_dir),
            std::path::Path::new(&corpus_dir),
        );
        stop.store(true, Ordering::Relaxed);
        let _ = beats.join();
        match result {
            Ok(shard) => {
                let msg = WorkerMsg::Result { unit: unit.id, shard };
                let mut out = out.lock().expect("stdout lock");
                if let Err(e) = write_frame(&mut *out, &msg.to_json()) {
                    eprintln!("campaign-worker: cannot send result: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("campaign-worker: unit {}: {e}", unit.id);
                return ExitCode::FAILURE;
            }
        }
    }
}

/// The TCP worker loop: dial and handshake through a self-healing
/// [`Remote`], then serve leases until the coordinator says shutdown.
/// Wire hiccups heal transparently — the session token presented on
/// reconnect keeps the current lease alive — and a coordinator that
/// stays gone past the bounded reconnect budget ends the worker
/// cleanly (its lease has been requeued by then anyway).
fn campaign_worker_remote(addr: &str, tag: Option<u64>) -> ExitCode {
    use revisionist_simulations::smr::service::{
        read_frame, CoordMsg, Remote, RemoteError, WorkerMsg,
    };
    use std::io::BufReader;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let remote = Arc::new(Remote::new(addr, tag));
    loop {
        let (stream, generation) = match remote.ensure() {
            Ok(pair) => pair,
            Err(RemoteError::Fatal(e)) => {
                eprintln!("campaign-worker: {e}");
                return ExitCode::FAILURE;
            }
            Err(RemoteError::Unreachable(e)) => {
                // After a completed handshake, a coordinator gone past
                // the reconnect budget is a normal end of service (the
                // lease is requeued by then); before one it's a
                // startup failure.
                if remote.session().is_some() {
                    eprintln!("campaign-worker: coordinator gone ({e}), exiting");
                    return ExitCode::SUCCESS;
                }
                eprintln!("campaign-worker: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut reader = BufReader::new(stream);
        loop {
            let msg = match read_frame(&mut reader) {
                Ok(Some(frame)) => match CoordMsg::parse(&frame) {
                    Ok(msg) => msg,
                    Err(e) => {
                        // A corrupt coordinator frame: drop the link
                        // and re-handshake rather than act on garbage.
                        eprintln!("campaign-worker: bad frame: {e}");
                        remote.disconnect(generation);
                        break;
                    }
                },
                // EOF or a read error (including the idle timeout):
                // this connection is done, reconnect and resume.
                Ok(None) | Err(_) => {
                    remote.disconnect(generation);
                    break;
                }
            };
            let (unit, state_dir, corpus_dir, heartbeat_ms) = match msg {
                CoordMsg::Shutdown => return ExitCode::SUCCESS,
                CoordMsg::Lease { unit, state_dir, corpus_dir, heartbeat_ms } => {
                    (unit, state_dir, corpus_dir, heartbeat_ms)
                }
                // Stray handshake frames carry no work.
                CoordMsg::Welcome { .. } | CoordMsg::Reject { .. } => continue,
            };
            let stop = Arc::new(AtomicBool::new(false));
            let beats = {
                let remote = Arc::clone(&remote);
                let stop = Arc::clone(&stop);
                let unit_id = unit.id;
                let period = Duration::from_millis(heartbeat_ms.max(1));
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let beat =
                            WorkerMsg::Heartbeat { unit: unit_id }.to_json();
                        // `send` reconnects on its own; a hard failure
                        // means the coordinator is past saving, and the
                        // result send will surface that.
                        if remote.send(&beat).is_err() {
                            break;
                        }
                        std::thread::sleep(period);
                    }
                })
            };
            let result = worker_execute_unit(
                &unit,
                std::path::Path::new(&state_dir),
                std::path::Path::new(&corpus_dir),
            );
            stop.store(true, Ordering::Relaxed);
            let _ = beats.join();
            match result {
                Ok(shard) => {
                    let msg = WorkerMsg::Result { unit: unit.id, shard };
                    if let Err(e) = remote.send(&msg.to_json()) {
                        eprintln!("campaign-worker: cannot send result: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("campaign-worker: unit {}: {e}", unit.id);
                    return ExitCode::FAILURE;
                }
            }
        }
    }
}

/// The `campaign-service` subcommand: the crash-tolerant multi-process
/// campaign front-end. Builds the service spec from campaign-style
/// flags, pre-flights the protocol, then hands the matrix to
/// [`run_service`] — which partitions it into journaled work units,
/// leases them to `campaign-worker` processes, and merges shard
/// results into a report byte-identical to a single-process
/// `campaign` run of the same spec.
fn cmd_campaign_service(flags: &HashMap<String, String>) -> ExitCode {
    use revisionist_simulations::smr::campaign::{CampaignConfig, SchedulerSpec};
    use revisionist_simulations::smr::service::{
        run_service, run_service_with_transport, ChaosPlan, MergedReport,
        ServiceOptions, ServiceSpec, Transport,
    };
    use std::path::PathBuf;
    use std::time::Duration;

    let protocol = flags.get("protocol").map_or("racing", String::as_str);
    let procs = get(flags, "procs", 3);
    let m = get(flags, "m", 2);
    let rounds = get(flags, "rounds", 3);
    let specs: Vec<SchedulerSpec> = {
        let raw = flags.get("sched").map_or("random", String::as_str);
        let mut parsed = Vec::new();
        for part in raw.split(',').filter(|p| !p.is_empty()) {
            match SchedulerSpec::parse(part) {
                Ok(spec) => parsed.push(spec),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        parsed
    };
    if specs.is_empty() {
        eprintln!("--sched needs at least one scheduler spec");
        return ExitCode::FAILURE;
    }
    let Some(factory) = protocol_factory(protocol, procs, m, rounds) else {
        eprintln!(
            "unknown --protocol {protocol} (racing, contrarian, ladder, illformed, \
             gen:SEED[:MUTATION])"
        );
        return ExitCode::FAILURE;
    };
    // Same mandatory pre-flight as `campaign`: lint once in the
    // coordinator rather than once per worker process.
    if !flags.contains_key("no-preflight") {
        use revisionist_simulations::smr::analyze::LintConfig;
        use revisionist_simulations::smr::campaign::preflight_campaign;
        let base_seed = get(flags, "seed-start", 0) as u64;
        match preflight_campaign(&factory, base_seed, &LintConfig::default()) {
            Ok(report) => {
                if report.warn_count() > 0 {
                    eprintln!("{}", report.render());
                }
                eprintln!("preflight: ok ({} warnings)", report.warn_count());
            }
            Err(e) => {
                eprintln!("{e}");
                eprintln!("(--no-preflight runs the service anyway)");
                return ExitCode::FAILURE;
            }
        }
    }
    drop(factory);

    let spec = ServiceSpec {
        // The same ordered description `campaign` stamps into replay
        // bundles — workers rebuild the system from it, and corpus
        // bundles replay under the stock `replay` subcommand.
        system: vec![
            ("kind".into(), "campaign".into()),
            ("protocol".into(), protocol.to_string()),
            ("procs".into(), procs.to_string()),
            ("m".into(), m.to_string()),
            ("rounds".into(), rounds.to_string()),
        ],
        config: CampaignConfig {
            schedulers: specs,
            seed_start: get(flags, "seed-start", 0) as u64,
            runs: get(flags, "runs", 100),
            budget: get(flags, "budget", 2_000),
            threads: 1,
        },
        unit_runs: get(flags, "unit-runs", 8).max(1),
        // A fault matrix shards across workers exactly like a
        // scheduler matrix: plans × seeds under the first scheduler.
        faults: match flags.get("faults") {
            Some(raw) => match parse_fault_plans(raw, procs) {
                Ok(plans) => plans.iter().map(|p| p.to_string()).collect(),
                Err(e) => {
                    eprintln!("{e}");
                    eprintln!("{FAULTS_HINT}");
                    return ExitCode::FAILURE;
                }
            },
            None => Vec::new(),
        },
    };

    let state_dir = PathBuf::from(
        flags.get("state").map_or("campaign-state", String::as_str),
    );
    let corpus_dir = flags
        .get("corpus")
        .map_or_else(|| state_dir.join("corpus"), PathBuf::from);
    let exe = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("campaign-service: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = ServiceOptions::new(
        state_dir,
        corpus_dir,
        vec![exe.display().to_string(), "campaign-worker".into()],
    );
    let listen = flags.get("listen");
    // `--workers 0` is meaningful only with `--listen`: an externally
    // managed TCP fleet. Over stdio the service must spawn someone.
    opts.workers = if listen.is_some() {
        get(flags, "workers", 2)
    } else {
        get(flags, "workers", 2).max(1)
    };
    opts.max_lease_attempts = get(flags, "max-lease-attempts", 3).max(1);
    if let Some(secs) = flags.get("lease-timeout").and_then(|v| v.parse().ok()) {
        opts.lease_timeout = Duration::from_secs(secs);
    }
    if let Some(raw) = flags.get("chaos") {
        match ChaosPlan::parse(raw) {
            Ok(plan) => {
                if !plan.is_empty() {
                    eprintln!("chaos plan armed: {plan}");
                }
                opts.chaos = plan;
            }
            Err(e) => {
                eprintln!("{e}");
                eprintln!(
                    "valid --chaos directives: kill@unit:U | torn@result:U | \
                     drop@N | delay@N | dup@N | corrupt@N | partition@A-B \
                     (comma-separated)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let run = if let Some(listen_addr) = listen {
        let listener = match std::net::TcpListener::bind(listen_addr.as_str()) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("campaign-service: cannot bind {listen_addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Resolve port 0 to the actual address before telling workers
        // where to dial.
        let addr = match listener.local_addr() {
            Ok(addr) => addr.to_string(),
            Err(e) => {
                eprintln!("campaign-service: cannot resolve listen address: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("campaign-service: listening on {addr}");
        opts.worker_cmd.extend(["--connect".to_string(), addr]);
        run_service_with_transport(&spec, &opts, &Transport::Tcp(listener))
    } else {
        run_service(&spec, &opts)
    };
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("campaign-service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = &outcome.stats;
    eprintln!(
        "service: {} units ({} recovered), {} leases, {} requeues, \
         {} quarantined, {} workers spawned",
        stats.units,
        stats.recovered_units,
        stats.leases,
        stats.requeues,
        stats.quarantined_units,
        stats.workers_spawned,
    );
    if stats.kills_injected + stats.torn_injected > 0 {
        eprintln!(
            "  chaos: {} worker kills, {} torn journal writes injected",
            stats.kills_injected, stats.torn_injected,
        );
    }
    if stats.dropped_journal_lines > 0 {
        eprintln!(
            "  journal: {} damaged lines dropped during recovery",
            stats.dropped_journal_lines,
        );
    }
    if listen.is_some() {
        eprintln!(
            "  tcp: {} sessions ({} resumed), {} corrupt frames rejected",
            stats.sessions, stats.resumed_sessions, stats.corrupt_frames,
        );
    }
    let net_injected = stats.net_dropped
        + stats.net_delayed
        + stats.net_duplicated
        + stats.net_corrupted
        + stats.net_severed;
    if net_injected > 0 {
        eprintln!(
            "  net chaos: {} dropped, {} delayed, {} duplicated, \
             {} corrupted, {} severed",
            stats.net_dropped,
            stats.net_delayed,
            stats.net_duplicated,
            stats.net_corrupted,
            stats.net_severed,
        );
    }
    // The summary table goes to stderr: stdout must stay byte-identical
    // to the single-process `campaign` report under --json.
    if flags.contains_key("summary") {
        eprint!("{}", outcome.summary.render());
    }

    let report = &outcome.report;
    if !write_json_out(flags, &report.to_json()) {
        return ExitCode::FAILURE;
    }
    let certified = match report {
        MergedReport::Campaign(_) => true,
        MergedReport::Faults(r) => r.is_certified(),
    };
    if flags.contains_key("json") {
        print!("{}", report.to_json());
        return if certified { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    match report {
        MergedReport::Campaign(report) => {
            println!(
                "campaign-service: protocol={protocol} procs={procs} schedulers=[{}] \
                 seeds={}..{} workers={}",
                report
                    .config
                    .schedulers
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                report.config.seed_start,
                report.config.seed_start + report.config.runs as u64,
                opts.workers,
            );
            println!(
                "  {} runs: {} terminated, {} distinct configs, {} total steps",
                report.total_runs,
                report.terminated_runs,
                report.distinct_configs,
                report.total_steps,
            );
            if let Some(notice) = &report.truncation {
                println!(
                    "  TRUNCATED: {notice} ({} runs skipped)",
                    report.skipped_runs
                );
            }
            if report.degraded_runs > 0 {
                println!(
                    "  {} runs completed only after retries (degraded)",
                    report.degraded_runs
                );
            }
            for tally in &report.per_scheduler {
                println!(
                    "  {:<14} {} runs, {} terminated, {} failures",
                    tally.scheduler, tally.runs, tally.terminated, tally.failures
                );
            }
            if report.failures.is_empty() {
                println!("  no violations or errors");
            } else {
                println!(
                    "  {} failing runs (each replayable):",
                    report.failures.len()
                );
                for r in report.failures.iter().take(10) {
                    println!(
                        "    --sched {} --seed {}: {}",
                        r.scheduler,
                        r.seed,
                        r.violation.as_deref().or(r.error.as_deref()).unwrap_or("?")
                    );
                }
                if report.failures.len() > 10 {
                    println!("    ... and {} more", report.failures.len() - 10);
                }
            }
            ExitCode::SUCCESS
        }
        MergedReport::Faults(report) => {
            println!(
                "campaign-service: protocol={protocol} procs={procs} fault base={} \
                 plans={} seeds={}..{} workers={}",
                report.scheduler,
                report.plans,
                spec.config.seed_start,
                spec.config.seed_start + spec.config.runs as u64,
                opts.workers,
            );
            println!(
                "  {} runs, {} certified, {} total steps",
                report.total_runs, report.certified_runs, report.total_steps,
            );
            if report.missing_runs > 0 {
                println!(
                    "  {} runs missing (quarantined units veto certification)",
                    report.missing_runs
                );
            }
            if report.is_certified() {
                println!(
                    "  CERTIFIED: survivors made progress under every fault plan"
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "  {} failing runs (each replayable):",
                    report.failures.len()
                );
                for r in report.failures.iter().take(10) {
                    let why = r
                        .violation
                        .as_deref()
                        .or(r.error.as_deref())
                        .unwrap_or("survivors did not terminate");
                    println!(
                        "    --faults {} --seed-start {} --runs 1: {}",
                        r.plan, r.seed, why
                    );
                }
                if report.failures.len() > 10 {
                    println!("    ... and {} more", report.failures.len() - 10);
                }
                ExitCode::FAILURE
            }
        }
    }
}

fn cmd_replay(args: &[String], flags: &HashMap<String, String>) -> ExitCode {
    use revisionist_simulations::smr::bundle::ReplayBundle;
    use revisionist_simulations::smr::error::ModelError;
    use revisionist_simulations::smr::fingerprint::fingerprint;
    use revisionist_simulations::smr::shrink::CexOutcome;

    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: revisionist-simulations replay BUNDLE.json [--threads T]");
        return ExitCode::FAILURE;
    };
    let bundle = match ReplayBundle::load(std::path::Path::new(path)) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    let threads = get(flags, "threads", 1).max(1);
    let field = |key: &str, default: usize| {
        bundle
            .system_field(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };

    // Every replay runs `threads` times concurrently and all runs must
    // reproduce the recorded fingerprint: the portable artifact doubles
    // as an in-process determinism check across thread counts.
    let results: Vec<Result<CexOutcome, ModelError>> = match bundle
        .system_field("kind")
    {
        Some("campaign") => {
            let protocol = bundle
                .system_field("protocol")
                .unwrap_or("racing")
                .to_string();
            let procs = field("procs", 3);
            let Some(factory) =
                protocol_factory(&protocol, procs, field("m", 2), field("rounds", 3))
            else {
                eprintln!("replay: bundle names unknown protocol `{protocol}`");
                return ExitCode::FAILURE;
            };
            let check = protocol_check(&protocol, procs);
            let seed = bundle.seed;
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            bundle.replay(&|| factory(seed), &|sys, _crashed| {
                                check(sys)
                            })
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().expect("replay worker"))
                    .collect()
            })
        }
        Some("aug-certify") => {
            use revisionist_simulations::snapshot::certify::{
                check_fault_placement, FaultAction, Placement,
            };
            let action = match bundle.system_field("action") {
                Some("crash") => FaultAction::Crash,
                Some("stall") => FaultAction::Stall,
                other => {
                    eprintln!("replay: bad certify action {other:?}");
                    return ExitCode::FAILURE;
                }
            };
            let placement = Placement {
                victim: field("victim", 0),
                after_steps: field("after_steps", 0),
                action,
            };
            let (f, m) = (field("f", 2), field("m", 2));
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let failures = check_fault_placement(f, m, placement);
                            match failures.first() {
                                Some(msg) if fingerprint(msg) == bundle.fingerprint => {
                                    Ok(CexOutcome {
                                        violation: Some(msg.clone()),
                                        steps: 0,
                                        crashed: Vec::new(),
                                    })
                                }
                                Some(msg) => Err(ModelError::BundleMismatch {
                                    expected: bundle.fingerprint,
                                    actual: format!(
                                        "failure `{msg}` (fingerprint {})",
                                        fingerprint(msg)
                                    ),
                                }),
                                None => Err(ModelError::BundleMismatch {
                                    expected: bundle.fingerprint,
                                    actual: format!(
                                        "placement `{placement}` certifies cleanly"
                                    ),
                                }),
                            }
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().expect("replay worker"))
                    .collect()
            })
        }
        other => {
            eprintln!(
                "replay: unsupported bundle kind {:?} (campaign, aug-certify)",
                other.unwrap_or("<missing>")
            );
            return ExitCode::FAILURE;
        }
    };

    for result in &results {
        if let Err(e) = result {
            eprintln!("replay: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    let outcome = results[0].as_ref().expect("all results ok");
    println!(
        "replay {path}: violation reproduced bit-for-bit across {threads} \
         concurrent run{} ({} decisions, fingerprint {})",
        if threads == 1 { "" } else { "s" },
        bundle.decisions.len(),
        bundle.fingerprint,
    );
    println!(
        "  violation: {}",
        outcome.violation.as_deref().unwrap_or("<none>")
    );
    ExitCode::SUCCESS
}

fn cmd_aug(flags: &HashMap<String, String>) -> ExitCode {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use revisionist_simulations::snapshot::client::AugOp;
    use revisionist_simulations::snapshot::real::RealSystem;
    use revisionist_simulations::snapshot::spec;

    let f = get(flags, "f", 3);
    let m = get(flags, "m", 2);
    let ops = get(flags, "ops", 6);
    let seed = get(flags, "seed", 0) as u64;
    if flags.contains_key("certify") {
        use revisionist_simulations::smr::bundle::{
            tool_id, ReplayBundle, BUNDLE_VERSION,
        };
        use revisionist_simulations::smr::fingerprint::fingerprint;
        use revisionist_simulations::snapshot::certify;
        let report = certify::certify_block_update_faults(f, m);
        println!(
            "non-blocking certification f={f} m={m}: {} placements \
             (every victim × every Block-Update step × crash/stall)",
            report.placements.len()
        );
        if report.is_certified() {
            println!(
                "  CERTIFIED: every crash leaves survivors unblocked, every \
                 stalled victim completes, and §3 holds throughout"
            );
            return ExitCode::SUCCESS;
        }
        println!("  {} placements FAILED:", report.failures.len());
        for (_, failure) in &report.failures {
            println!("  !! {failure}");
        }
        // Failed certifications are portable too: bundle the first
        // failed placement so `replay` can re-check it anywhere.
        if let Some(path) = flags.get("bundle") {
            let (placement, message) = &report.failures[0];
            let bundle = ReplayBundle {
                version: BUNDLE_VERSION,
                tool: tool_id(),
                system: vec![
                    ("kind".into(), "aug-certify".into()),
                    ("f".into(), f.to_string()),
                    ("m".into(), m.to_string()),
                    ("victim".into(), placement.victim.to_string()),
                    ("after_steps".into(), placement.after_steps.to_string()),
                    ("action".into(), placement.action.to_string()),
                ],
                scheduler: "round-robin".into(),
                seed: 0,
                plan: "none".into(),
                decisions: Vec::new(),
                fingerprint: fingerprint(message),
                violation: message.clone(),
            };
            match bundle.store(std::path::Path::new(path)) {
                Ok(()) => eprintln!("  replay bundle written to {path}"),
                Err(e) => eprintln!("  cannot write bundle {path}: {e}"),
            }
        }
        return ExitCode::FAILURE;
    }
    let mut rs = RealSystem::new(f, m);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining = vec![ops; f];
    let mut counter = 0i64;
    loop {
        let live: Vec<usize> = (0..f)
            .filter(|&p| remaining[p] > 0 || !rs.is_idle(p))
            .collect();
        if live.is_empty() {
            break;
        }
        let pid = live[rng.gen_range(0..live.len())];
        if rs.is_idle(pid) {
            remaining[pid] -= 1;
            counter += 1;
            let op = if rng.gen_bool(0.5) {
                AugOp::Scan
            } else {
                AugOp::BlockUpdate {
                    components: vec![(counter as usize) % m],
                    values: vec![Value::Int(counter)],
                }
            };
            rs.begin(pid, op);
        }
        rs.step(pid);
    }
    let report = spec::check(&rs, m);
    println!(
        "augmented snapshot f={f} m={m} ops/proc={ops} seed={seed}: {} H-steps",
        rs.log().len()
    );
    println!(
        "  {} atomic Block-Updates, {} yields, {} Scans",
        report.atomic_block_updates, report.yielded_block_updates, report.scans
    );
    println!(
        "  §3 specification: {}",
        if report.is_ok() { "SATISFIED" } else { "VIOLATED" }
    );
    for e in &report.errors {
        println!("  !! {e}");
    }
    if report.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
