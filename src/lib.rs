//! Facade crate for the Revisionist Simulations reproduction.
//!
//! This workspace is an executable reproduction of *"Revisionist
//! Simulations: A New Approach to Proving Space Lower Bounds"* (Ellen,
//! Gelashvili, Zhu; PODC 2018, arXiv:1711.02455). It re-exports the
//! member crates under short module names:
//!
//! * [`smr`] — the asynchronous shared-memory runtime (processes, base
//!   objects, schedulers, exhaustive exploration, linearizability).
//! * [`tasks`] — colorless tasks and their validators, plus the
//!   impossibility substrate (Sperner's lemma, violation search).
//! * [`snapshot`] — snapshot substrate and the Section 3 augmented
//!   snapshot object.
//! * [`protocols`] — concrete protocols fed to the simulation.
//! * [`core`] — the paper's contribution: the revisionist simulation,
//!   intermediate executions, the Lemma 26 replay validator, and the
//!   space lower-bound formulas.
//! * [`solo`] — Section 5: nondeterministic solo termination to
//!   obstruction-freedom conversion.
//!
//! # Quickstart
//!
//! ```
//! use revisionist_simulations::core::bounds;
//!
//! // Corollary 33: obstruction-free consensus among n processes needs
//! // at least n registers.
//! assert_eq!(bounds::kset_space_lower_bound(8, 1, 1), 8);
//! ```

pub use rsim_core as core;
pub use rsim_protocols as protocols;
pub use rsim_smr as smr;
pub use rsim_snapshot as snapshot;
pub use rsim_solo as solo;
pub use rsim_tasks as tasks;
