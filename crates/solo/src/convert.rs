//! Theorem 35: converting a nondeterministic solo terminating protocol
//! into a deterministic obstruction-free protocol over the same
//! m-component object.
//!
//! For each non-final state `s` and response `a`, the determinized
//! transition `δ'_p(s, a)` is:
//!
//! * if a p-solo path from `s` starts with response `a` (which, with
//!   the expected view `E_p`, happens exactly when `a` is the solo
//!   response), the first state `s'` (in the total state order) lying
//!   on a *shortest* p-solo path from `s` through `a`;
//! * otherwise the first state of `δ_p(s, a)`.
//!
//! Along any solo run of the determinized protocol the shortest-path
//! length strictly decreases, so every solo run terminates:
//! obstruction-freedom. Every transition of Π′ is a transition of Π,
//! so every execution of Π′ is an execution of Π — the space
//! complexity is unchanged, which is how every obstruction-free space
//! lower bound transfers to nondeterministic solo terminating (hence
//! randomized wait-free) protocols.

use crate::machine::{EpState, MachineOp, MachineResponse, NondetMachine};
use rsim_smr::object::{ObjectId, Operation, Response};
use rsim_smr::process::{Poised, Process};
use rsim_smr::value::Value;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Searches for the length of a shortest p-solo path from `start`
/// (number of steps to reach a final state, responses determined by
/// the expected view). Explores at most `budget` nodes.
pub fn shortest_solo_path<M: NondetMachine>(
    machine: &M,
    start: &EpState<M::State>,
    budget: usize,
) -> Option<usize> {
    if machine.output(&start.state).is_some() {
        return Some(0);
    }
    let mut seen: HashSet<EpState<M::State>> = HashSet::new();
    let mut queue: VecDeque<(EpState<M::State>, usize)> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back((start.clone(), 0));
    let mut explored = 0;
    while let Some((node, dist)) = queue.pop_front() {
        explored += 1;
        if explored > budget {
            return None;
        }
        let op = machine.step(&node.state);
        let resp = node.solo_response(&op);
        for succ in machine.transitions(&node.state, &resp) {
            let mut next = EpState { state: succ, ep: node.ep.clone() };
            next.advance_ep(&op, &resp);
            if machine.output(&next.state).is_some() {
                return Some(dist + 1);
            }
            if seen.insert(next.clone()) {
                queue.push_back((next, dist + 1));
            }
        }
    }
    None
}

/// The determinized protocol Π′ of Theorem 35, as a deterministic
/// [`Process`] over the m-component snapshot object `object`.
pub struct Determinized<M: NondetMachine> {
    machine: Arc<M>,
    aug: EpState<M::State>,
    object: ObjectId,
    budget: usize,
    cache: HashMap<EpState<M::State>, Option<usize>>,
}

impl<M: NondetMachine> Determinized<M> {
    /// Creates the determinized process with the given input.
    /// `budget` bounds each solo-path search (must exceed the
    /// protocol's solo path lengths).
    pub fn new(machine: Arc<M>, input: &Value, object: ObjectId, budget: usize) -> Self {
        let m = machine.components();
        let state = machine.initial(input);
        Determinized {
            machine,
            aug: EpState::initial(state, m),
            object,
            budget,
            cache: HashMap::new(),
        }
    }

    /// The current machine state.
    pub fn state(&self) -> &M::State {
        &self.aug.state
    }

    fn path_len(&mut self, node: &EpState<M::State>) -> Option<usize> {
        if let Some(len) = self.cache.get(node) {
            return *len;
        }
        let len = shortest_solo_path(self.machine.as_ref(), node, self.budget);
        self.cache.insert(node.clone(), len);
        len
    }

    /// `δ'` applied to the current state and response `resp`; advances
    /// the state and expected view.
    fn apply_deterministic_transition(&mut self, op: &MachineOp, resp: &MachineResponse) {
        let mut candidates = self
            .machine
            .transitions(&self.aug.state, resp);
        candidates.sort();
        candidates.dedup();
        assert!(!candidates.is_empty(), "δ must be nonempty");
        // Successor Ep is the same for all candidates.
        let mut ep_after = self.aug.clone();
        ep_after.advance_ep(op, resp);
        let chosen = if *resp == self.aug.solo_response(op) {
            // A solo path through `resp` may exist: pick the first
            // candidate on a shortest one.
            let mut best: Option<(usize, usize)> = None; // (len, index)
            for (idx, cand) in candidates.iter().enumerate() {
                let node = EpState { state: cand.clone(), ep: ep_after.ep.clone() };
                let len = if self.machine.output(cand).is_some() {
                    Some(0)
                } else {
                    self.path_len(&node)
                };
                if let Some(len) = len {
                    if best.is_none_or(|(b, _)| len < b) {
                        best = Some((len, idx));
                    }
                }
            }
            match best {
                Some((_, idx)) => candidates[idx].clone(),
                None => candidates[0].clone(),
            }
        } else {
            candidates[0].clone()
        };
        self.aug = EpState { state: chosen, ep: ep_after.ep };
    }
}

impl<M: NondetMachine> Clone for Determinized<M> {
    fn clone(&self) -> Self {
        Determinized {
            machine: Arc::clone(&self.machine),
            aug: self.aug.clone(),
            object: self.object,
            budget: self.budget,
            cache: self.cache.clone(),
        }
    }
}

impl<M: NondetMachine> fmt::Debug for Determinized<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Determinized({:?}, ep {:?})", self.aug.state, self.aug.ep)
    }
}

impl<M: NondetMachine + 'static> Process for Determinized<M> {
    fn poised(&self) -> Poised {
        if let Some(y) = self.machine.output(&self.aug.state) {
            return Poised::Output(y);
        }
        let op = match self.machine.step(&self.aug.state) {
            MachineOp::Scan => Operation::Scan { obj: self.object },
            MachineOp::Write { component, value } => Operation::Update {
                obj: self.object,
                component,
                value,
            },
            MachineOp::WriteMax { component, value } => Operation::WriteMax {
                obj: self.object,
                component,
                value,
            },
        };
        Poised::Step(op)
    }

    fn receive(&mut self, resp: Response) {
        let op = self.machine.step(&self.aug.state);
        let machine_resp = match resp {
            Response::View(view) => MachineResponse::View(view),
            Response::Ack => MachineResponse::Ack,
            other => panic!("unexpected response {other:?}"),
        };
        self.apply_deterministic_transition(&op, &machine_resp);
    }

    fn boxed_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }

    fn state_key(&self) -> String {
        // Exclude the memo cache: two processes with equal (state, Ep)
        // are behaviorally identical.
        format!("{:?}{:?}", self.aug.state, self.aug.ep)
    }

    fn write_state_key(&self, out: &mut dyn fmt::Write) {
        // Must stream the same bytes as `state_key` above.
        let _ = write!(out, "{:?}{:?}", self.aug.state, self.aug.ep);
    }
}

/// Builds an n-process system of determinized processes over the given
/// shared object (a snapshot or a max-register with the machine's
/// component count).
pub fn determinized_system_over<M: NondetMachine + 'static>(
    machine: Arc<M>,
    inputs: &[Value],
    budget: usize,
    object: rsim_smr::object::Object,
) -> rsim_smr::system::System {
    assert_eq!(
        object.register_cost(),
        machine.components(),
        "object size must match the machine's component count"
    );
    let processes = inputs
        .iter()
        .map(|input| {
            Box::new(Determinized::new(
                Arc::clone(&machine),
                input,
                ObjectId(0),
                budget,
            )) as Box<dyn Process>
        })
        .collect();
    rsim_smr::system::System::new(vec![object], processes)
}

/// Builds an n-process system of determinized processes over a shared
/// m-component snapshot.
pub fn determinized_system<M: NondetMachine + 'static>(
    machine: Arc<M>,
    inputs: &[Value],
    budget: usize,
) -> rsim_smr::system::System {
    let m = machine.components();
    determinized_system_over(machine, inputs, budget, rsim_smr::object::Object::snapshot(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{RacingState, RandomizedRacing};
    use rsim_smr::explore::{Explorer, Limits};
    use rsim_smr::process::ProcessId;
    use rsim_smr::sched::Random;

    #[test]
    fn shortest_path_from_initial_state() {
        let machine = RandomizedRacing::new(2);
        let start = EpState::initial(
            machine.initial(&Value::Int(1)),
            2,
        );
        // Solo: write to comp 0, scan, write to comp 1, scan (final on
        // that scan's transition): path = scan, write, scan, write,
        // scan→final = 5 steps.
        let len = shortest_solo_path(&machine, &start, 10_000).unwrap();
        assert_eq!(len, 5);
    }

    #[test]
    fn determinized_solo_run_terminates() {
        let machine = Arc::new(RandomizedRacing::new(2));
        let mut sys = determinized_system(
            Arc::clone(&machine),
            &[Value::Int(1), Value::Int(2)],
            10_000,
        );
        let out = sys.run_solo(ProcessId(0), 100).unwrap();
        assert_eq!(out, Value::Int(1));
    }

    #[test]
    fn determinized_is_obstruction_free_everywhere() {
        // Theorem 35's conclusion: from every reachable configuration
        // every solo run terminates.
        let machine = Arc::new(RandomizedRacing::new(2));
        let sys = determinized_system(
            Arc::clone(&machine),
            &[Value::Int(1), Value::Int(2)],
            10_000,
        );
        let explorer = Explorer::new(Limits { max_depth: 14, max_configs: 100_000 });
        let report = explorer.check_solo_termination(&sys, 40).unwrap();
        assert!(report.is_clean(), "violation: {:?}", report.violation);
    }

    #[test]
    fn every_execution_of_pi_prime_is_an_execution_of_pi() {
        // Each transition chosen by Π′ must be in δ of Π. Replay a run
        // of Π′ and check containment step by step.
        let machine = Arc::new(RandomizedRacing::new(2));
        let mut sys = determinized_system(
            Arc::clone(&machine),
            &[Value::Int(1), Value::Int(2)],
            10_000,
        );
        sys.run(&mut Random::seeded(3), 10_000).unwrap();
        // Track each process through the trace, mirroring transitions.
        let mut states: Vec<EpState<RacingState>> = [Value::Int(1), Value::Int(2)]
            .iter()
            .map(|input| EpState::initial(machine.initial(input), 2))
            .collect();
        for event in sys.trace() {
            let pid = event.pid.0;
            let op = machine.step(&states[pid].state);
            let resp = match &event.resp {
                rsim_smr::object::Response::View(v) => MachineResponse::View(v.clone()),
                rsim_smr::object::Response::Ack => MachineResponse::Ack,
                other => panic!("{other:?}"),
            };
            let succs = machine.transitions(&states[pid].state, &resp);
            // The state Π′ reached must be one of Π's successors; mirror
            // by re-running the deterministic choice is overkill — we
            // verify *containment*: some successor matches the next
            // observable behavior. Reconstruct via the same rule.
            let mut ep_after = states[pid].clone();
            ep_after.advance_ep(&op, &resp);
            // Accept any successor; the containment assertion is that
            // succs is nonempty and the mirrored state stays legal.
            assert!(!succs.is_empty());
            // Use the first successor on a shortest path (mirror of δ′)
            // to keep the mirror in lock-step with Π′.
            let mut cands = succs.clone();
            cands.sort();
            cands.dedup();
            let chosen = if resp == states[pid].solo_response(&op) {
                let mut best: Option<(usize, RacingState)> = None;
                for cand in &cands {
                    let node = EpState { state: cand.clone(), ep: ep_after.ep.clone() };
                    let len = if machine.output(cand).is_some() {
                        Some(0)
                    } else {
                        shortest_solo_path(machine.as_ref(), &node, 10_000)
                    };
                    if let Some(len) = len {
                        if best.as_ref().is_none_or(|(b, _)| len < *b) {
                            best = Some((len, cand.clone()));
                        }
                    }
                }
                best.map(|(_, s)| s).unwrap_or_else(|| cands[0].clone())
            } else {
                cands[0].clone()
            };
            assert!(
                succs.contains(&chosen),
                "δ' chose a state outside δ: {chosen:?} not in {succs:?}"
            );
            states[pid] = EpState { state: chosen, ep: ep_after.ep };
        }
        // The mirrored final states agree with the system's outputs.
        for (pid, st) in states.iter().enumerate() {
            if let Some(out) = sys.output(ProcessId(pid)) {
                assert_eq!(machine.output(&st.state), Some(out));
            }
        }
    }

    #[test]
    fn determinized_uses_same_space() {
        let machine = Arc::new(RandomizedRacing::new(3));
        let sys = determinized_system(machine, &[Value::Int(1)], 10_000);
        assert_eq!(sys.space_complexity(), 3);
    }

    #[test]
    fn max_register_machine_determinizes_and_is_of() {
        use crate::machine::MaxRegisterRacing;
        use rsim_smr::object::Object;
        let machine = Arc::new(MaxRegisterRacing::new(1, 8));
        let mk = |machine: &Arc<MaxRegisterRacing>| {
            determinized_system_over(
                Arc::clone(machine),
                &[Value::Int(1), Value::Int(2)],
                100_000,
                Object::max_register(1),
            )
        };
        let mut sys = mk(&machine);
        let out = sys.run_solo(ProcessId(0), 200).unwrap();
        assert_eq!(out, Value::Int(1));
        // The max-register trace is ABA-free by construction
        // (writemax never lowers a component).
        let fresh = mk(&machine);
        let explorer = Explorer::new(Limits { max_depth: 12, max_configs: 60_000 });
        let report = explorer.check_solo_termination(&fresh, 60).unwrap();
        assert!(report.is_clean(), "{:?}", report.violation);
        // Contended runs: the max only grows, so values are monotone.
        let mut sys2 = mk(&machine);
        sys2.run(&mut Random::seeded(4), 50_000).unwrap();
        let mut last = i64::MIN;
        for ev in sys2.trace() {
            if let rsim_smr::object::Response::View(view) = &ev.resp {
                let cur = view[0].as_int().unwrap_or(i64::MIN);
                assert!(cur >= last, "max-register went backwards");
                last = cur;
            }
        }
    }

    #[test]
    fn random_runs_terminate() {
        // Under random schedules the determinized protocol terminates
        // in most runs (obstruction-freedom plus scheduler luck), and
        // validity always holds.
        let machine = Arc::new(RandomizedRacing::new(2));
        let mut terminated = 0;
        for seed in 0..20 {
            let mut sys = determinized_system(
                Arc::clone(&machine),
                &[Value::Int(1), Value::Int(2)],
                10_000,
            );
            sys.run(&mut Random::seeded(seed), 20_000).unwrap();
            if sys.all_terminated() {
                terminated += 1;
                for out in sys.outputs().into_iter().flatten() {
                    assert!(out == Value::Int(1) || out == Value::Int(2));
                }
            }
        }
        assert!(terminated >= 10, "only {terminated}/20 terminated");
    }
}
