//! Nondeterministic protocol state machines (paper §5.1).
//!
//! A nondeterministic protocol gives each process a 5-tuple
//! `(S_p, ν_p, δ_p, I_p, F_p)`: states, a next-step function on
//! non-final states, a transition function mapping `(state, response)`
//! to a *nonempty set* of successor states, initial states (one per
//! input) and final states (one per output). Randomized protocols are
//! the special case where the nondeterministic choice is made by coin
//! flips.
//!
//! Following §5.2 we restrict to protocols over one m-component object
//! whose steps alternate `scan` and single-component operations,
//! starting with a `scan`.

use rsim_smr::value::Value;
use std::fmt;
use std::hash::Hash;

/// The next step of a machine in a non-final state (`ν_p`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MachineOp {
    /// Scan the m-component object.
    Scan,
    /// Write `value` to `component`.
    Write {
        /// Target component.
        component: usize,
        /// Value written.
        value: Value,
    },
    /// `writemax(value)` on `component` (max-register objects, §5.2).
    WriteMax {
        /// Target component.
        component: usize,
        /// Value written if larger.
        value: Value,
    },
}

/// The response to a [`MachineOp`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MachineResponse {
    /// The view returned by a scan.
    View(Vec<Value>),
    /// Acknowledgement of a component operation.
    Ack,
}

/// A nondeterministic state machine over one m-component object.
///
/// `transitions` must return a nonempty, deterministic-ordered list
/// (the determinization of Theorem 35 picks "the first state", so the
/// order is part of the protocol's specification).
pub trait NondetMachine: fmt::Debug + Send + Sync {
    /// The machine's state type (`Send + Sync` so determinized
    /// processes satisfy the [`rsim_smr::process::Process`] thread
    /// bounds).
    type State: Clone + Eq + Ord + Hash + fmt::Debug + Send + Sync;

    /// Number of components of the shared object.
    fn components(&self) -> usize;

    /// The initial state for a given input (`I_p`).
    fn initial(&self, input: &Value) -> Self::State;

    /// The output if `s` is final (`F_p`).
    fn output(&self, s: &Self::State) -> Option<Value>;

    /// The next step in a non-final state (`ν_p`).
    ///
    /// # Panics
    ///
    /// Implementations may panic on final states.
    fn step(&self, s: &Self::State) -> MachineOp;

    /// The nonempty set of successor states (`δ_p`), in a fixed order.
    fn transitions(&self, s: &Self::State, resp: &MachineResponse) -> Vec<Self::State>;
}

/// A machine state augmented with the expected view `E_p` (paper §5.2):
/// what the process would see if it scanned now, assuming no other
/// process has taken steps since its last scan.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EpState<S> {
    /// The underlying machine state.
    pub state: S,
    /// The expected contents of the shared object.
    pub ep: Vec<Value>,
}

impl<S> EpState<S> {
    /// The initial augmented state: `E_p` is the object's initial
    /// contents (all ⊥).
    pub fn initial(state: S, m: usize) -> Self {
        EpState { state, ep: vec![Value::Nil; m] }
    }

    /// Applies the effect of performing `op` with response `resp` on
    /// the expected view.
    pub fn advance_ep(&mut self, op: &MachineOp, resp: &MachineResponse) {
        match (op, resp) {
            (MachineOp::Scan, MachineResponse::View(view)) => {
                self.ep = view.clone();
            }
            (MachineOp::Write { component, value }, MachineResponse::Ack) => {
                self.ep[*component] = value.clone();
            }
            (MachineOp::WriteMax { component, value }, MachineResponse::Ack) => {
                if *value > self.ep[*component] {
                    self.ep[*component] = value.clone();
                }
            }
            (op, resp) => panic!("mismatched op {op:?} / response {resp:?}"),
        }
    }

    /// The response `op` would get in a solo execution (where the
    /// object contents equal `E_p`).
    pub fn solo_response(&self, op: &MachineOp) -> MachineResponse {
        match op {
            MachineOp::Scan => MachineResponse::View(self.ep.clone()),
            MachineOp::Write { .. } | MachineOp::WriteMax { .. } => MachineResponse::Ack,
        }
    }
}

/// The "randomized racing" machine: a model of randomized wait-free
/// consensus used to exercise the Theorem 35 conversion.
///
/// State: `(value, done)`. On a scan showing all `m` components equal
/// to `value`, the process finishes with `value`. Otherwise it
/// nondeterministically either keeps its value or adopts any value in
/// the view (the coin flip), then writes its choice over the first
/// component that differs.
///
/// It is nondeterministic solo terminating — a solo process *can*
/// always keep its value and fill all components — but not every
/// branch terminates (a process may flip-flop between adopted values
/// forever), which is exactly what the determinization must avoid.
#[derive(Clone, Debug)]
pub struct RandomizedRacing {
    m: usize,
}

/// State of [`RandomizedRacing`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RacingState {
    /// Poised to scan, with a current value.
    Scanning(Value),
    /// Poised to write `(component, value)`.
    Writing(usize, Value),
    /// Finished with an output.
    Final(Value),
}

impl RandomizedRacing {
    /// A racing machine over `m` components.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        RandomizedRacing { m }
    }
}

impl NondetMachine for RandomizedRacing {
    type State = RacingState;

    fn components(&self) -> usize {
        self.m
    }

    fn initial(&self, input: &Value) -> RacingState {
        RacingState::Scanning(input.clone())
    }

    fn output(&self, s: &RacingState) -> Option<Value> {
        match s {
            RacingState::Final(v) => Some(v.clone()),
            _ => None,
        }
    }

    fn step(&self, s: &RacingState) -> MachineOp {
        match s {
            RacingState::Scanning(_) => MachineOp::Scan,
            RacingState::Writing(c, v) => {
                MachineOp::Write { component: *c, value: v.clone() }
            }
            RacingState::Final(_) => panic!("step on final state"),
        }
    }

    fn transitions(&self, s: &RacingState, resp: &MachineResponse) -> Vec<RacingState> {
        match (s, resp) {
            (RacingState::Scanning(v), MachineResponse::View(view)) => {
                if view.iter().all(|e| e == v) {
                    return vec![RacingState::Final(v.clone())];
                }
                // Candidate values: keep own, or adopt any non-⊥ value
                // seen (the nondeterministic coin).
                let mut candidates = vec![v.clone()];
                for e in view {
                    if !e.is_nil() && !candidates.contains(e) {
                        candidates.push(e.clone());
                    }
                }
                candidates
                    .into_iter()
                    .map(|w| {
                        let target = view
                            .iter()
                            .position(|e| *e != w)
                            .unwrap_or(0);
                        RacingState::Writing(target, w)
                    })
                    .collect()
            }
            (RacingState::Writing(_, v), MachineResponse::Ack) => {
                vec![RacingState::Scanning(v.clone())]
            }
            (s, resp) => panic!("bad transition: {s:?} with {resp:?}"),
        }
    }
}

/// A nondeterministic machine over an m-component **max-register**
/// (§5.2's second object family): processes `writemax` tagged bids and
/// finish when the maximum stabilizes on their bid. Max-registers are
/// inherently ABA-free (§5.3), so this machine also feeds the
/// Corollary 36 path.
///
/// State: `Bidding(bid)` → scan; if the max component equals the bid,
/// finish with the bid's value; otherwise nondeterministically raise
/// the bid above the max (two choices of increment — the coin) and
/// `writemax` it.
#[derive(Clone, Debug)]
pub struct MaxRegisterRacing {
    m: usize,
    /// Bids above this cap stop raising (keeps the state space finite).
    cap: i64,
}

/// State of [`MaxRegisterRacing`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MaxState {
    /// Poised to scan with a current bid.
    Bidding(i64),
    /// Poised to `writemax` the bid to component 0.
    Raising(i64),
    /// Finished with the winning bid.
    Final(i64),
}

impl MaxRegisterRacing {
    /// A max-register racing machine with the given bid cap.
    pub fn new(m: usize, cap: i64) -> Self {
        assert!(m >= 1);
        MaxRegisterRacing { m, cap }
    }
}

impl NondetMachine for MaxRegisterRacing {
    type State = MaxState;

    fn components(&self) -> usize {
        self.m
    }

    fn initial(&self, input: &Value) -> MaxState {
        MaxState::Bidding(input.as_int().expect("integer input"))
    }

    fn output(&self, s: &MaxState) -> Option<Value> {
        match s {
            MaxState::Final(v) => Some(Value::Int(*v)),
            _ => None,
        }
    }

    fn step(&self, s: &MaxState) -> MachineOp {
        match s {
            MaxState::Bidding(_) => MachineOp::Scan,
            MaxState::Raising(bid) => MachineOp::WriteMax {
                component: 0,
                value: Value::Int(*bid),
            },
            MaxState::Final(_) => panic!("step on final state"),
        }
    }

    fn transitions(&self, s: &MaxState, resp: &MachineResponse) -> Vec<MaxState> {
        match (s, resp) {
            (MaxState::Bidding(bid), MachineResponse::View(view)) => {
                let max = view[0].as_int().unwrap_or(i64::MIN);
                if max == *bid || *bid >= self.cap {
                    return vec![MaxState::Final((*bid).min(self.cap))];
                }
                if max < *bid {
                    // Our bid is not registered yet: write it.
                    return vec![MaxState::Raising(*bid)];
                }
                // Outbid: nondeterministically raise by 1 or 2 (the coin).
                vec![
                    MaxState::Raising((max + 1).min(self.cap)),
                    MaxState::Raising((max + 2).min(self.cap)),
                ]
            }
            (MaxState::Raising(bid), MachineResponse::Ack) => {
                vec![MaxState::Bidding(*bid)]
            }
            (s, resp) => panic!("bad transition: {s:?} with {resp:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_tracks_writes_and_scans() {
        let mut s = EpState::initial(0u8, 2);
        assert_eq!(s.ep, vec![Value::Nil, Value::Nil]);
        s.advance_ep(
            &MachineOp::Write { component: 1, value: Value::Int(5) },
            &MachineResponse::Ack,
        );
        assert_eq!(s.ep[1], Value::Int(5));
        s.advance_ep(
            &MachineOp::Scan,
            &MachineResponse::View(vec![Value::Int(9), Value::Int(5)]),
        );
        assert_eq!(s.ep[0], Value::Int(9));
    }

    #[test]
    fn solo_response_uses_ep() {
        let s = EpState::initial(0u8, 1);
        assert_eq!(
            s.solo_response(&MachineOp::Scan),
            MachineResponse::View(vec![Value::Nil])
        );
        assert_eq!(
            s.solo_response(&MachineOp::Write { component: 0, value: Value::Int(1) }),
            MachineResponse::Ack
        );
    }

    #[test]
    fn racing_machine_is_genuinely_nondeterministic() {
        let machine = RandomizedRacing::new(2);
        let s = RacingState::Scanning(Value::Int(1));
        let view = MachineResponse::View(vec![Value::Int(2), Value::Nil]);
        let succs = machine.transitions(&s, &view);
        assert!(succs.len() >= 2, "expected a coin flip, got {succs:?}");
    }

    #[test]
    fn racing_machine_finishes_on_unanimity() {
        let machine = RandomizedRacing::new(2);
        let s = RacingState::Scanning(Value::Int(1));
        let view = MachineResponse::View(vec![Value::Int(1), Value::Int(1)]);
        let succs = machine.transitions(&s, &view);
        assert_eq!(succs, vec![RacingState::Final(Value::Int(1))]);
        assert_eq!(
            machine.output(&succs[0]),
            Some(Value::Int(1))
        );
    }

    #[test]
    fn max_register_machine_finishes_when_max_is_own_bid() {
        let m = MaxRegisterRacing::new(1, 10);
        let s = MaxState::Bidding(5);
        let view = MachineResponse::View(vec![Value::Int(5)]);
        assert_eq!(m.transitions(&s, &view), vec![MaxState::Final(5)]);
    }

    #[test]
    fn max_register_machine_branches_when_outbid() {
        let m = MaxRegisterRacing::new(1, 10);
        let s = MaxState::Bidding(3);
        let view = MachineResponse::View(vec![Value::Int(7)]);
        let succs = m.transitions(&s, &view);
        assert_eq!(
            succs,
            vec![MaxState::Raising(8), MaxState::Raising(9)]
        );
    }

    #[test]
    fn max_register_machine_caps_bids() {
        let m = MaxRegisterRacing::new(1, 10);
        let s = MaxState::Bidding(10);
        let view = MachineResponse::View(vec![Value::Int(12)]);
        // At the cap: finish rather than bid forever.
        assert_eq!(m.transitions(&s, &view), vec![MaxState::Final(10)]);
    }

    #[test]
    fn writemax_only_increases_ep() {
        let mut s = EpState::initial(0u8, 1);
        s.advance_ep(
            &MachineOp::WriteMax { component: 0, value: Value::Int(5) },
            &MachineResponse::Ack,
        );
        s.advance_ep(
            &MachineOp::WriteMax { component: 0, value: Value::Int(3) },
            &MachineResponse::Ack,
        );
        assert_eq!(s.ep[0], Value::Int(5));
    }
}
