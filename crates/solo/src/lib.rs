//! `rsim-solo`: paper §5 — nondeterministic solo termination implies
//! obstruction-freedom (with the same objects).
//!
//! * [`machine`] — the nondeterministic 5-tuple state machines of
//!   §5.1, the expected-view tracking `E_p` of §5.2, and a randomized
//!   racing machine modelling randomized wait-free consensus.
//! * [`convert`] — the Theorem 35 determinization: shortest p-solo
//!   path search and the deterministic protocol Π′, plus machine
//!   checks that Π′ is obstruction-free and that every execution of Π′
//!   is an execution of Π.
//! * [`aba`] — §5.3: the ABA-free tagging transform for register
//!   protocols (Corollary 36) and an ABA-freedom trace checker.
//!
//! Consequence (paper §5 headline): every space lower bound for
//! obstruction-free protocols — including all of this repository's
//! reproduced bounds — applies verbatim to randomized wait-free
//! protocols.
//!
//! # Example
//!
//! ```
//! use rsim_solo::convert::determinized_system;
//! use rsim_solo::machine::RandomizedRacing;
//! use rsim_smr::process::ProcessId;
//! use rsim_smr::value::Value;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), rsim_smr::error::ModelError> {
//! let machine = Arc::new(RandomizedRacing::new(2));
//! let mut sys = determinized_system(machine, &[Value::Int(7)], 10_000);
//! // The determinized protocol is obstruction-free: solo runs finish.
//! assert_eq!(sys.run_solo(ProcessId(0), 100)?, Value::Int(7));
//! # Ok(())
//! # }
//! ```

pub mod aba;
pub mod convert;
pub mod machine;

pub use aba::{check_aba_freedom, AbaTagged};
pub use convert::{determinized_system, determinized_system_over, shortest_solo_path, Determinized};
pub use machine::{EpState, MachineOp, MachineResponse, MaxRegisterRacing, NondetMachine, RandomizedRacing};
