//! ABA-freedom and Corollary 36.
//!
//! §5.3 extends Theorem 35 to protocols over `m` separate objects: if
//! the protocol is *ABA-free* (no object ever returns to an earlier
//! value after changing), its scans can be implemented with
//! obstruction-free double collects, so the conversion applies to the
//! same `m` objects. Register protocols are made ABA-free by tagging
//! every write with the writer's identifier and a strictly increasing
//! sequence number — the tags are ignored by reads.
//!
//! This module provides the tagging transform ([`AbaTagged`]), a trace
//! checker for ABA-freedom ([`check_aba_freedom`]), and a
//! double-collect scan whose linearizability on ABA-free histories is
//! exercised in the tests.

use rsim_smr::process::{ProtocolStep, SnapshotProtocol};
use rsim_smr::system::Event;
use rsim_smr::value::Value;

/// Wraps each written value as `(value, writer id, sequence number)`;
/// strips the tags from every scanned view before handing it to the
/// inner protocol. The wrapped protocol behaves identically and is
/// ABA-free.
#[derive(Clone, Debug)]
pub struct AbaTagged<P> {
    inner: P,
    id: usize,
    seq: i64,
}

impl<P> AbaTagged<P> {
    /// Tags `inner`'s writes with the process identifier `id`.
    pub fn new(inner: P, id: usize) -> Self {
        AbaTagged { inner, id, seq: 0 }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

/// Removes a tag added by [`AbaTagged`]; non-tagged values (⊥) pass
/// through.
pub fn strip_tag(value: &Value) -> Value {
    match value.as_tuple() {
        Some([v, Value::Int(_), Value::Int(_)]) => v.clone(),
        _ => value.clone(),
    }
}

impl<P: SnapshotProtocol> SnapshotProtocol for AbaTagged<P> {
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
        let stripped: Vec<Value> = view.iter().map(strip_tag).collect();
        match self.inner.on_scan(&stripped) {
            ProtocolStep::Update(c, v) => {
                self.seq += 1;
                ProtocolStep::Update(
                    c,
                    Value::triple(v, Value::Int(self.id as i64), Value::Int(self.seq)),
                )
            }
            ProtocolStep::Output(y) => ProtocolStep::Output(y),
        }
    }

    fn components(&self) -> usize {
        self.inner.components()
    }
}

/// Checks a trace for ABA violations: for each snapshot component (or
/// register), no value may reappear after the component held a
/// different value in between.
///
/// The core now lives in `rsim_smr::analyze` (lint code RS-W002), so
/// the pre-flight analyzer and this module apply the identical
/// Corollary 36 criterion; this wrapper is kept as the solo-crate API.
///
/// # Errors
///
/// Returns a description of the first ABA pattern found.
pub fn check_aba_freedom<'a, I>(trace: I) -> Result<(), String>
where
    I: IntoIterator<Item = &'a Event>,
{
    rsim_smr::analyze::check_aba_events(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_protocols::racing::PhasedRacing;
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, ProcessId, SnapshotProcess};
    use rsim_smr::sched::Random;
    use rsim_smr::system::System;

    fn tagged_system(m: usize, inputs: &[i64]) -> System {
        let processes = inputs
            .iter()
            .enumerate()
            .map(|(i, &input)| {
                Box::new(SnapshotProcess::new(
                    AbaTagged::new(PhasedRacing::new(m, Value::Int(input)), i),
                    ObjectId(0),
                )) as Box<dyn Process>
            })
            .collect();
        System::new(vec![Object::snapshot(m)], processes)
    }

    fn untagged_system(m: usize, inputs: &[i64]) -> System {
        let processes = inputs
            .iter()
            .map(|&input| {
                Box::new(SnapshotProcess::new(
                    PhasedRacing::new(m, Value::Int(input)),
                    ObjectId(0),
                )) as Box<dyn Process>
            })
            .collect();
        System::new(vec![Object::snapshot(m)], processes)
    }

    #[test]
    fn tagged_traces_are_aba_free() {
        for seed in 0..20 {
            let mut sys = tagged_system(2, &[1, 2]);
            sys.run(&mut Random::seeded(seed), 50_000).unwrap();
            check_aba_freedom(sys.trace()).unwrap();
        }
    }

    #[test]
    fn untagged_racing_exhibits_aba() {
        // The raw protocol rewrites identical pairs after overwrites:
        // some schedule shows an ABA pattern.
        let mut found = false;
        for seed in 0..50 {
            let mut sys = untagged_system(2, &[1, 2]);
            sys.run(&mut Random::seeded(seed), 50_000).unwrap();
            if check_aba_freedom(sys.trace()).is_err() {
                found = true;
                break;
            }
        }
        assert!(found, "expected an ABA pattern in the untagged protocol");
    }

    #[test]
    fn tagging_preserves_behavior() {
        // Same schedule, same outputs: tags are invisible to the inner
        // protocol.
        for seed in 0..10 {
            let mut tagged = tagged_system(2, &[1, 2]);
            let mut plain = untagged_system(2, &[1, 2]);
            tagged.run(&mut Random::seeded(seed), 50_000).unwrap();
            plain.run(&mut Random::seeded(seed), 50_000).unwrap();
            assert_eq!(tagged.outputs(), plain.outputs(), "seed {seed}");
        }
    }

    #[test]
    fn tagging_preserves_termination_solo() {
        let mut sys = tagged_system(3, &[5, 6]);
        let out = sys.run_solo(ProcessId(1), 1_000).unwrap();
        assert_eq!(out, Value::Int(6));
    }

    #[test]
    fn strip_tag_roundtrip() {
        let tagged = Value::triple(Value::Int(9), Value::Int(1), Value::Int(4));
        assert_eq!(strip_tag(&tagged), Value::Int(9));
        assert_eq!(strip_tag(&Value::Nil), Value::Nil);
        // A 2-tuple is not a tag.
        let pair = Value::pair(Value::Int(1), Value::Int(2));
        assert_eq!(strip_tag(&pair), pair);
    }
}
