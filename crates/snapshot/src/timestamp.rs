//! Vector timestamps (paper §3.2, "Auxiliary Procedures").
//!
//! Each timestamp is an f-component vector of non-negative integers,
//! ordered lexicographically. Process `i` generates a new timestamp from
//! the result `h` of a scan of `H` with `New-Timestamp` (Algorithm 1):
//! component `j ≠ i` is `#h_j` (the number of Block-Updates by `q_j`
//! recorded in `h`) and component `i` is `#h_i + 1`.

use std::cmp::Ordering;
use std::fmt;

/// An f-component vector timestamp, ordered lexicographically.
///
/// # Examples
///
/// ```
/// use rsim_snapshot::timestamp::Timestamp;
///
/// let t1 = Timestamp::new(vec![1, 0]);
/// let t2 = Timestamp::new(vec![1, 1]);
/// assert!(t1 < t2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Timestamp(Vec<u32>);

impl Timestamp {
    /// Wraps an explicit component vector.
    pub fn new(components: Vec<u32>) -> Self {
        Timestamp(components)
    }

    /// `New-Timestamp` (Algorithm 1): from the per-process Block-Update
    /// counts `counts` (`counts[j] = #h_j`), build the timestamp for a
    /// new Block-Update by process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn generate(i: usize, counts: &[usize]) -> Self {
        let mut t: Vec<u32> = counts.iter().map(|&c| c as u32).collect();
        t[i] += 1;
        Timestamp(t)
    }

    /// The component vector.
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Number of components (= number of real processes f).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the vector empty? (Never true in practice; satisfies
    /// `len`/`is_empty` pairing.)
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl PartialOrd for Timestamp {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Timestamp {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lexicographic; vectors always have equal length f in one run.
        self.0.cmp(&other.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_increments_own_component() {
        let t = Timestamp::generate(1, &[3, 5, 2]);
        assert_eq!(t.components(), &[3, 6, 2]);
    }

    #[test]
    fn lexicographic_order() {
        let a = Timestamp::new(vec![1, 9, 9]);
        let b = Timestamp::new(vec![2, 0, 0]);
        assert!(a < b);
        let c = Timestamp::new(vec![2, 0, 1]);
        assert!(b < c);
    }

    #[test]
    fn corollary_8_generated_exceeds_contained() {
        // A timestamp generated from counts is lexicographically larger
        // than any timestamp whose components are dominated by counts.
        let counts = [2usize, 3, 1];
        for i in 0..3 {
            let t = Timestamp::generate(i, &counts);
            // Any timestamp contained in h satisfies t'_j <= counts[j]
            // (Lemma 7); all such t' are strictly below t.
            let max_contained = Timestamp::new(vec![2, 3, 1]);
            assert!(max_contained < t);
        }
    }

    #[test]
    fn uniqueness_across_processes() {
        // Lemma 9 core case: two processes generating from scans where
        // each's count is consistent can never collide.
        let t1 = Timestamp::generate(0, &[0, 0]);
        let t2 = Timestamp::generate(1, &[0, 0]);
        assert_ne!(t1, t2);
    }

    #[test]
    fn display_nonempty() {
        let t = Timestamp::new(vec![1, 2]);
        assert_eq!(format!("{t}"), "⟨1,2⟩");
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }
}
