//! The real system (paper Figure 1, bottom half): `f` real processes
//! sharing one single-writer snapshot `H`, through which they implement
//! the m-component augmented snapshot `M`.
//!
//! [`RealSystem`] owns `H` and one [`AugClient`] per process. The caller
//! (the revisionist simulation, or a test adversary) decides which
//! process performs its next atomic H-step via [`RealSystem::step`] —
//! that is where the schedule is chosen. Every H-step and every
//! completed high-level operation are logged for the §3.3 specification
//! checker.

use crate::client::{AugClient, AugOp, AugOutcome, HReply, HRequest};
use crate::hbase::{HObject, LWrite, Triple};

/// One atomic H-step in the global timeline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HEvent {
    /// Global time (index in the event log, starting at 1).
    pub time: usize,
    /// The real process that took the step.
    pub pid: usize,
    /// What the step did.
    pub kind: HEventKind,
}

/// The kind of an atomic H-step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HEventKind {
    /// `H.scan()`.
    Scan,
    /// `H.update`: appended `triples`, wrote `lwrites`.
    Update {
        /// Appended update triples (empty for pure helping writes).
        triples: Vec<Triple>,
        /// Helping-register writes.
        lwrites: Vec<LWrite>,
    },
}

impl HEventKind {
    /// Does this step append update triples (the only kind of step that
    /// "counts" for Observation 1 and Lemma 2)?
    pub fn appends_triples(&self) -> bool {
        matches!(self.kind_triples(), Some(t) if !t.is_empty())
    }

    fn kind_triples(&self) -> Option<&[Triple]> {
        match self {
            HEventKind::Scan => None,
            HEventKind::Update { triples, .. } => Some(triples),
        }
    }
}

/// A completed high-level operation on `M`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AugOpRecord {
    /// The invoking real process.
    pub pid: usize,
    /// The operation.
    pub op: AugOp,
    /// Its outcome.
    pub outcome: AugOutcome,
    /// Time of its first H-step.
    pub start: usize,
    /// Time of its last H-step.
    pub end: usize,
}

/// The real system: `H` plus `f` augmented-snapshot clients.
#[derive(Clone, Debug)]
pub struct RealSystem {
    h: HObject,
    clients: Vec<AugClient>,
    log: Vec<HEvent>,
    oplog: Vec<AugOpRecord>,
    op_start: Vec<Option<usize>>,
    current_op: Vec<Option<AugOp>>,
}

impl RealSystem {
    /// Creates a real system of `f` processes over an m-component
    /// augmented snapshot.
    pub fn new(f: usize, m: usize) -> Self {
        RealSystem {
            h: HObject::new(f),
            clients: (0..f).map(|i| AugClient::new(i, f, m)).collect(),
            log: Vec::new(),
            oplog: Vec::new(),
            op_start: vec![None; f],
            current_op: vec![None; f],
        }
    }

    /// Number of real processes.
    pub fn width(&self) -> usize {
        self.clients.len()
    }

    /// Is process `pid` between operations?
    pub fn is_idle(&self, pid: usize) -> bool {
        self.clients[pid].is_idle()
    }

    /// Begins operation `op` for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` already has an operation in progress.
    pub fn begin(&mut self, pid: usize, op: AugOp) {
        self.current_op[pid] = Some(op.clone());
        self.op_start[pid] = None;
        self.clients[pid].begin(op);
    }

    /// Performs the next atomic H-step of process `pid`. Returns the
    /// operation's outcome if this step completed it.
    ///
    /// # Panics
    ///
    /// Panics if `pid` has no operation in progress.
    pub fn step(&mut self, pid: usize) -> Option<AugOutcome> {
        let request = self.clients[pid]
            .pending_request()
            .expect("step on idle process");
        let time = self.log.len() + 1;
        if self.op_start[pid].is_none() {
            self.op_start[pid] = Some(time);
        }
        let (reply, kind) = match request {
            HRequest::Scan => (HReply::View(self.h.scan()), HEventKind::Scan),
            HRequest::Update { triples, lwrites } => {
                self.h.update(pid, triples.clone(), lwrites.clone());
                (HReply::Ack, HEventKind::Update { triples, lwrites })
            }
        };
        self.log.push(HEvent { time, pid, kind });
        let outcome = self.clients[pid].deliver(reply);
        if let Some(outcome) = &outcome {
            self.oplog.push(AugOpRecord {
                pid,
                op: self.current_op[pid].take().expect("current op recorded"),
                outcome: outcome.clone(),
                start: self.op_start[pid].take().expect("op started"),
                end: time,
            });
        }
        outcome
    }

    /// Runs `pid`'s current operation to completion with no
    /// interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `pid` has no operation in progress. `Scan` is
    /// non-blocking, so a solo run always terminates.
    pub fn run_to_completion(&mut self, pid: usize) -> AugOutcome {
        loop {
            if let Some(outcome) = self.step(pid) {
                return outcome;
            }
        }
    }

    /// The global H-step log.
    pub fn log(&self) -> &[HEvent] {
        &self.log
    }

    /// Completed high-level operations, in completion order.
    pub fn oplog(&self) -> &[AugOpRecord] {
        &self.oplog
    }

    /// The underlying `H` (diagnostics).
    pub fn h(&self) -> &HObject {
        &self.h
    }

    /// Mutable oplog access for checker-vacuity tests (crate-private:
    /// the spec tests corrupt recorded outcomes and assert the checker
    /// notices).
    #[cfg(test)]
    pub(crate) fn oplog_mut(&mut self) -> &mut Vec<AugOpRecord> {
        &mut self.oplog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::BlockUpdateOutcome;
    use rsim_smr::value::Value;

    #[test]
    fn sequential_operations_log_correctly() {
        let mut rs = RealSystem::new(2, 2);
        rs.begin(0, AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(1)] });
        let out = rs.run_to_completion(0);
        assert!(matches!(
            out,
            AugOutcome::BlockUpdate(BlockUpdateOutcome { result: Some(_), .. })
        ));
        rs.begin(1, AugOp::Scan);
        match rs.run_to_completion(1) {
            AugOutcome::Scan(s) => assert_eq!(s.view, vec![Value::Int(1), Value::Nil]),
            other => panic!("{other:?}"),
        }
        assert_eq!(rs.oplog().len(), 2);
        assert_eq!(rs.oplog()[0].start, 1);
        assert_eq!(rs.oplog()[0].end, 6);
        assert_eq!(rs.log().len(), 6 + 3);
    }

    #[test]
    fn interleaving_is_caller_controlled() {
        let mut rs = RealSystem::new(2, 2);
        rs.begin(0, AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(1)] });
        rs.begin(1, AugOp::BlockUpdate { components: vec![1], values: vec![Value::Int(2)] });
        // Strict alternation.
        let mut done = 0;
        while done < 2 {
            for pid in 0..2 {
                if !rs.is_idle(pid) && rs.step(pid).is_some() {
                    done += 1;
                }
            }
        }
        assert_eq!(rs.oplog().len(), 2);
        // q0 is atomic always; q1 may or may not yield.
        let q0_rec = rs.oplog().iter().find(|r| r.pid == 0).unwrap();
        match &q0_rec.outcome {
            AugOutcome::BlockUpdate(b) => assert!(b.result.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn event_times_are_dense_and_ordered() {
        let mut rs = RealSystem::new(2, 1);
        rs.begin(0, AugOp::Scan);
        rs.run_to_completion(0);
        for (i, e) in rs.log().iter().enumerate() {
            assert_eq!(e.time, i + 1);
        }
    }
}
