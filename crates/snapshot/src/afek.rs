//! A wait-free single-writer snapshot from single-writer registers,
//! after Afek, Attiya, Dolev, Gafni, Merritt, and Shavit (the paper's
//! citation \[2\]).
//!
//! The paper's real system *assumes* an atomic single-writer snapshot
//! `H`. This module discharges that assumption: it implements the
//! classic construction from single-writer registers and verifies
//! linearizability with the Wing–Gong checker under adversarial
//! interleavings.
//!
//! Construction (register `R_i` is written only by `p_i` and holds
//! `(value, seq, view)`):
//!
//! * `update_i(v)`: perform an embedded `scan`, then write
//!   `(v, seq_i + 1, scan result)` to `R_i`.
//! * `scan()`: repeatedly *collect* (read all registers one step at a
//!   time). Two identical consecutive collects → return their values (a
//!   direct scan). If some process is seen to move twice (its `seq`
//!   advanced in two different collect gaps), return its embedded view
//!   (a borrowed scan) — that view was taken inside our interval.
//!
//! Every read and write is one atomic step, so wait-freedom and step
//! complexity are observable: a scan finishes within `(n + 2)·n` reads.

use rsim_smr::history::{History, OpId};
use rsim_smr::object::{Object, ObjectId, Operation, Response};
use rsim_smr::value::Value;

/// The content of one single-writer register in the construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegVal {
    /// The component value.
    pub value: Value,
    /// The writer's write counter.
    pub seq: u64,
    /// The writer's embedded scan (its view at its last update).
    pub view: Vec<Value>,
}

impl RegVal {
    fn initial(n: usize) -> Self {
        RegVal { value: Value::Nil, seq: 0, view: vec![Value::Nil; n] }
    }
}

/// A high-level operation on the implemented snapshot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SwsOp {
    /// `update_i(value)` (the component is the caller's own index).
    Update(Value),
    /// `scan()`.
    Scan,
}

/// Outcome of a completed operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SwsOutcome {
    /// `update` acknowledged.
    Ack,
    /// `scan` returned this view.
    View(Vec<Value>),
}

#[derive(Clone, Debug)]
struct Collect {
    regs: Vec<RegVal>,
}

#[derive(Clone, Debug)]
struct ScanState {
    /// The previous full collect, if any.
    prev: Option<Collect>,
    /// The collect being assembled.
    current: Vec<RegVal>,
    /// How many times each process has been seen to move.
    moved: Vec<usize>,
}

#[derive(Clone, Debug)]
enum St {
    Idle,
    /// Scanning (either a client scan or the embedded scan of an
    /// update; `for_update` carries the value to write afterwards).
    Scanning { scan: ScanState, for_update: Option<Value> },
    /// Writing the register (updates only).
    Writing,
}

/// The per-process client of the snapshot-from-registers construction.
#[derive(Clone, Debug)]
pub struct SwsClient {
    i: usize,
    n: usize,
    seq: u64,
    state: St,
    steps: usize,
}

/// A pending atomic step on the register array.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SwsRequest {
    /// Read register `j`.
    Read(usize),
    /// Write the caller's own register.
    Write(RegVal),
}

/// Progress of the client after a delivered step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SwsProgress {
    /// Keep going: ask [`SwsClient::pending_request`] for the next step.
    Continue,
    /// Perform this request next (write after an embedded scan).
    Request(SwsRequest),
    /// The high-level operation completed.
    Done(SwsOutcome),
}

impl SwsClient {
    /// Creates the client for process `i` of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn new(i: usize, n: usize) -> Self {
        assert!(i < n);
        SwsClient { i, n, seq: 0, state: St::Idle, steps: 0 }
    }

    /// This client's process index.
    pub fn process(&self) -> usize {
        self.i
    }

    /// Is the client between operations?
    pub fn is_idle(&self) -> bool {
        matches!(self.state, St::Idle)
    }

    /// Steps taken by the current (or last) operation.
    pub fn steps_in_op(&self) -> usize {
        self.steps
    }

    fn fresh_scan(&self) -> ScanState {
        ScanState { prev: None, current: Vec::new(), moved: vec![0; self.n] }
    }

    /// Begins a high-level operation.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in progress.
    pub fn begin(&mut self, op: SwsOp) {
        assert!(self.is_idle(), "operation already in progress");
        self.steps = 0;
        self.state = match op {
            SwsOp::Scan => St::Scanning { scan: self.fresh_scan(), for_update: None },
            SwsOp::Update(v) => {
                St::Scanning { scan: self.fresh_scan(), for_update: Some(v) }
            }
        };
    }

    /// The atomic register step the client is poised to perform
    /// (`None` when idle or when a deferred write is pending at the
    /// driver).
    pub fn pending_request(&self) -> Option<SwsRequest> {
        match &self.state {
            St::Idle | St::Writing => None,
            St::Scanning { scan, .. } => Some(SwsRequest::Read(scan.current.len())),
        }
    }

    /// Delivers the value read by the pending `Read` request.
    ///
    /// # Panics
    ///
    /// Panics if no collect is in progress.
    pub fn deliver_read(&mut self, read: RegVal) -> SwsProgress {
        self.steps += 1;
        let St::Scanning { mut scan, for_update } =
            std::mem::replace(&mut self.state, St::Idle)
        else {
            panic!("deliver_read outside a collect");
        };
        scan.current.push(read);
        if scan.current.len() < self.n {
            self.state = St::Scanning { scan, for_update };
            return SwsProgress::Continue;
        }
        // A collect just completed.
        let current = Collect { regs: std::mem::take(&mut scan.current) };
        if let Some(prev) = &scan.prev {
            if prev.regs == current.regs {
                // Direct scan.
                let view: Vec<Value> =
                    current.regs.iter().map(|r| r.value.clone()).collect();
                return self.finish_scan(view, for_update);
            }
            for j in 0..self.n {
                if prev.regs[j].seq != current.regs[j].seq {
                    scan.moved[j] += 1;
                    if scan.moved[j] >= 2 {
                        // Borrowed scan: p_j's embedded view was taken
                        // entirely within our interval.
                        let view = current.regs[j].view.clone();
                        return self.finish_scan(view, for_update);
                    }
                }
            }
        }
        scan.prev = Some(current);
        self.state = St::Scanning { scan, for_update };
        SwsProgress::Continue
    }

    fn finish_scan(&mut self, view: Vec<Value>, for_update: Option<Value>) -> SwsProgress {
        match for_update {
            None => {
                self.state = St::Idle;
                SwsProgress::Done(SwsOutcome::View(view))
            }
            Some(value) => {
                let req = SwsRequest::Write(RegVal {
                    value,
                    seq: self.seq + 1,
                    view,
                });
                self.state = St::Writing;
                SwsProgress::Request(req)
            }
        }
    }

    /// Acknowledges the deferred register write, completing the update.
    ///
    /// # Panics
    ///
    /// Panics if no write is in progress.
    pub fn deliver_write_ack(&mut self) -> SwsProgress {
        self.steps += 1;
        assert!(matches!(self.state, St::Writing), "no write in progress");
        self.seq += 1;
        self.state = St::Idle;
        SwsProgress::Done(SwsOutcome::Ack)
    }
}

/// The register array plus clients plus a recorded [`History`] against
/// the atomic-snapshot specification, for linearizability checking.
#[derive(Clone, Debug)]
pub struct SwsSystem {
    regs: Vec<RegVal>,
    clients: Vec<SwsClient>,
    pending_write: Vec<Option<SwsRequest>>,
    history: History,
    open_ops: Vec<Option<OpId>>,
}

impl SwsSystem {
    /// Creates an n-process system with all registers ⊥.
    pub fn new(n: usize) -> Self {
        SwsSystem {
            regs: vec![RegVal::initial(n); n],
            clients: (0..n).map(|i| SwsClient::new(i, n)).collect(),
            pending_write: vec![None; n],
            history: History::new(),
            open_ops: vec![None; n],
        }
    }

    /// Is process `i` between operations?
    pub fn is_idle(&self, i: usize) -> bool {
        self.clients[i].is_idle() && self.pending_write[i].is_none()
    }

    /// Steps taken by `i`'s current (or last) operation.
    pub fn steps_in_op(&self, i: usize) -> usize {
        self.clients[i].steps_in_op()
    }

    /// Begins `op` for process `i`, recording its invocation.
    pub fn begin(&mut self, i: usize, op: SwsOp) {
        let abstract_op = match &op {
            SwsOp::Scan => Operation::Scan { obj: ObjectId(0) },
            SwsOp::Update(v) => Operation::Update {
                obj: ObjectId(0),
                component: i,
                value: v.clone(),
            },
        };
        self.open_ops[i] = Some(self.history.invoke(i, abstract_op));
        self.clients[i].begin(op);
    }

    /// Performs one atomic register step for process `i`. Returns the
    /// outcome if the high-level operation completed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is idle.
    pub fn step(&mut self, i: usize) -> Option<SwsOutcome> {
        // A deferred write takes priority.
        if let Some(SwsRequest::Write(rv)) = self.pending_write[i].take() {
            self.regs[i] = rv;
            let progress = self.clients[i].deliver_write_ack();
            return self.absorb(i, progress);
        }
        let req = self.clients[i].pending_request().expect("process is idle");
        match req {
            SwsRequest::Read(j) => {
                let rv = self.regs[j].clone();
                let progress = self.clients[i].deliver_read(rv);
                self.absorb(i, progress)
            }
            SwsRequest::Write(_) => unreachable!("writes are deferred"),
        }
    }

    fn absorb(&mut self, i: usize, progress: SwsProgress) -> Option<SwsOutcome> {
        match progress {
            SwsProgress::Continue => None,
            SwsProgress::Request(req) => {
                self.pending_write[i] = Some(req);
                None
            }
            SwsProgress::Done(outcome) => {
                let op_id = self.open_ops[i].take().expect("operation was open");
                let resp = match &outcome {
                    SwsOutcome::Ack => Response::Ack,
                    SwsOutcome::View(v) => Response::View(v.clone()),
                };
                self.history.respond(op_id, resp);
                Some(outcome)
            }
        }
    }

    /// Runs process `i` to completion with no interleaving.
    pub fn run_to_completion(&mut self, i: usize) -> SwsOutcome {
        loop {
            if let Some(out) = self.step(i) {
                return out;
            }
        }
    }

    /// The recorded history against the atomic n-component snapshot.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Checks the recorded history for linearizability.
    pub fn is_linearizable(&self) -> bool {
        let n = self.regs.len();
        rsim_smr::linearizability::check(&self.history, Object::snapshot(n)).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sequential_update_then_scan() {
        let mut sys = SwsSystem::new(2);
        sys.begin(0, SwsOp::Update(Value::Int(5)));
        assert_eq!(sys.run_to_completion(0), SwsOutcome::Ack);
        sys.begin(1, SwsOp::Scan);
        match sys.run_to_completion(1) {
            SwsOutcome::View(v) => assert_eq!(v, vec![Value::Int(5), Value::Nil]),
            other => panic!("{other:?}"),
        }
        assert!(sys.is_linearizable());
    }

    #[test]
    fn solo_scan_step_complexity() {
        // Solo scan: two identical collects = 2n reads.
        let n = 4;
        let mut sys = SwsSystem::new(n);
        sys.begin(0, SwsOp::Scan);
        sys.run_to_completion(0);
        assert_eq!(sys.steps_in_op(0), 2 * n);
    }

    #[test]
    fn interleaved_random_runs_are_linearizable() {
        for seed in 0..40 {
            let n = 2 + (seed as usize) % 2; // 2..=3
            let mut sys = SwsSystem::new(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut remaining = vec![3usize; n];
            let mut counter = 0i64;
            loop {
                let live: Vec<usize> = (0..n)
                    .filter(|&p| remaining[p] > 0 || !sys.is_idle(p))
                    .collect();
                if live.is_empty() {
                    break;
                }
                let i = live[rng.gen_range(0..live.len())];
                if sys.is_idle(i) {
                    remaining[i] -= 1;
                    counter += 1;
                    let op = if rng.gen_bool(0.5) {
                        SwsOp::Scan
                    } else {
                        SwsOp::Update(Value::Int(counter))
                    };
                    sys.begin(i, op);
                }
                sys.step(i);
            }
            assert!(sys.is_linearizable(), "seed {seed} not linearizable");
        }
    }

    #[test]
    fn borrowed_scan_path_is_exercised_and_correct() {
        // Adversarial schedule forcing p0's scan to observe movement:
        // p1 updates twice during p0's collects.
        let mut sys = SwsSystem::new(2);
        sys.begin(0, SwsOp::Scan);
        // p0 reads R0.
        sys.step(0);
        // p1 completes an update.
        sys.begin(1, SwsOp::Update(Value::Int(1)));
        sys.run_to_completion(1);
        // p0 reads R1 (collect 1 done), then starts collect 2.
        sys.step(0);
        sys.step(0);
        sys.begin(1, SwsOp::Update(Value::Int(2)));
        sys.run_to_completion(1);
        // Let p0 finish.
        let out = sys.run_to_completion(0);
        assert!(matches!(out, SwsOutcome::View(_)));
        assert!(sys.is_linearizable());
    }

    #[test]
    fn wait_freedom_bound_on_scan() {
        // Even with an adversary interleaving updates, a scan finishes
        // within (n + 2) collects: after n + 1 collects some process
        // moved twice.
        let n = 3;
        let mut sys = SwsSystem::new(n);
        let mut rng = StdRng::seed_from_u64(9);
        sys.begin(0, SwsOp::Scan);
        let mut steps = 0;
        let mut counter = 0;
        loop {
            // Adversary: before each p0 step, maybe let p1/p2 update.
            let j = 1 + rng.gen_range(0..2);
            if sys.is_idle(j) && rng.gen_bool(0.7) {
                counter += 1;
                sys.begin(j, SwsOp::Update(Value::Int(counter)));
                sys.run_to_completion(j);
            }
            steps += 1;
            if sys.step(0).is_some() {
                break;
            }
            assert!(steps <= (n + 2) * n, "scan exceeded wait-free bound");
        }
        assert!(sys.is_linearizable());
    }
}
