//! Thread-shared twin of the augmented snapshot.
//!
//! The model-mode [`crate::real::RealSystem`] gives the adversary full
//! control of the schedule; this module runs the *same* client step
//! machines under a real OS-thread schedule. `H` is held behind a
//! coarse `parking_lot::Mutex` — each lock acquisition performs exactly
//! one atomic H-step (a scan or a single-writer update), so the step
//! granularity of the paper is preserved; the mutex stands in for the
//! atomicity of the single-writer snapshot, which §3 assumes and
//! [`crate::afek`] discharges from registers.

use crate::client::{AugClient, AugOp, AugOutcome, HReply, HRequest};
use crate::hbase::HObject;
use parking_lot::Mutex;
use rsim_smr::value::Value;
use std::sync::Arc;

/// A thread-shareable m-component augmented snapshot for `f` threads.
///
/// # Examples
///
/// ```
/// use rsim_snapshot::thread_mode::SharedAug;
/// use rsim_smr::value::Value;
///
/// let aug = SharedAug::new(2, 3);
/// let view = aug.block_update(0, &[0, 1], &[Value::Int(1), Value::Int(2)]);
/// assert_eq!(view, Some(vec![Value::Nil; 3])); // atomic, prior contents
/// assert_eq!(aug.scan(1)[0], Value::Int(1));
/// ```
#[derive(Debug)]
pub struct SharedAug {
    h: Mutex<HObject>,
    f: usize,
    m: usize,
}

impl SharedAug {
    /// Creates a shared augmented snapshot for `f` threads and `m`
    /// components.
    pub fn new(f: usize, m: usize) -> Arc<Self> {
        Arc::new(SharedAug { h: Mutex::new(HObject::new(f)), f, m })
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.m
    }

    /// Number of client slots.
    pub fn width(&self) -> usize {
        self.f
    }

    /// Performs a full high-level operation for thread `i`, returning
    /// the complete outcome (used by the threaded simulation driver).
    ///
    /// # Panics
    ///
    /// Panics if `i >= f` or the operation is malformed.
    pub fn apply(&self, i: usize, op: AugOp) -> AugOutcome {
        self.drive(i, op)
    }

    fn drive(&self, i: usize, op: AugOp) -> AugOutcome {
        let mut client = AugClient::new(i, self.f, self.m);
        client.begin(op);
        loop {
            let request = client.pending_request().expect("op in progress");
            let reply = {
                // One lock acquisition = one atomic H-step.
                let mut h = self.h.lock();
                match request {
                    HRequest::Scan => HReply::View(h.scan()),
                    HRequest::Update { triples, lwrites } => {
                        h.update(i, triples, lwrites);
                        HReply::Ack
                    }
                }
            };
            if let Some(outcome) = client.deliver(reply) {
                return outcome;
            }
        }
    }

    /// `M.Scan()` by thread `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= f`.
    pub fn scan(&self, i: usize) -> Vec<Value> {
        match self.drive(i, AugOp::Scan) {
            AugOutcome::Scan(out) => out.view,
            AugOutcome::BlockUpdate(_) => unreachable!(),
        }
    }

    /// `M.Block-Update(components, values)` by thread `i`. Returns the
    /// returned view for an atomic Block-Update, or `None` for Y.
    ///
    /// # Panics
    ///
    /// Panics if `i >= f`, the slices have different lengths, or the
    /// components are not distinct and in range.
    pub fn block_update(
        &self,
        i: usize,
        components: &[usize],
        values: &[Value],
    ) -> Option<Vec<Value>> {
        let op = AugOp::BlockUpdate {
            components: components.to_vec(),
            values: values.to_vec(),
        };
        match self.drive(i, op) {
            AugOutcome::BlockUpdate(out) => out.result,
            AugOutcome::Scan(_) => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let aug = SharedAug::new(3, 2);
        assert_eq!(
            aug.block_update(2, &[0], &[Value::Int(7)]),
            Some(vec![Value::Nil, Value::Nil])
        );
        assert_eq!(aug.scan(0), vec![Value::Int(7), Value::Nil]);
        assert_eq!(
            aug.block_update(1, &[0, 1], &[Value::Int(8), Value::Int(9)]),
            Some(vec![Value::Int(7), Value::Nil])
        );
        assert_eq!(aug.scan(2), vec![Value::Int(8), Value::Int(9)]);
    }

    #[test]
    fn thread_zero_block_updates_never_yield_under_contention() {
        let aug = SharedAug::new(4, 4);
        std::thread::scope(|s| {
            // Thread 0 hammers Block-Updates; they must all be atomic
            // (Theorem 20).
            let a0 = Arc::clone(&aug);
            s.spawn(move || {
                for round in 0..60 {
                    let v = a0.block_update(0, &[round % 4], &[Value::Int(round as i64)]);
                    assert!(v.is_some(), "q0 yielded at round {round}");
                }
            });
            for i in 1..4usize {
                let ai = Arc::clone(&aug);
                s.spawn(move || {
                    for round in 0..60 {
                        let comps = [(round + i) % 4, (round + i + 1) % 4];
                        let vals =
                            [Value::Int(round as i64), Value::Int((round + i) as i64)];
                        let _ = ai.block_update(i, &comps, &vals);
                        let _ = ai.scan(i);
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_scans_terminate() {
        // Scans are non-blocking: with finitely many Block-Updates they
        // all finish.
        let aug = SharedAug::new(3, 2);
        std::thread::scope(|s| {
            for i in 0..3usize {
                let ai = Arc::clone(&aug);
                s.spawn(move || {
                    for round in 0..40 {
                        if round % 3 == 0 {
                            let _ = ai.block_update(
                                i,
                                &[round % 2],
                                &[Value::Int((i * 1000 + round) as i64)],
                            );
                        } else {
                            let _ = ai.scan(i);
                        }
                    }
                });
            }
        });
        // Final state is readable and well-formed.
        let view = aug.scan(0);
        assert_eq!(view.len(), 2);
    }
}
