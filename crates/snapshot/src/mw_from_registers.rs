//! An m-component multi-writer snapshot from m multi-writer registers
//! (the other direction of the §2 equivalence: "an m-component
//! snapshot object can also be implemented from m registers").
//!
//! Each register holds a tagged value `(value, writer, seq)`; the tags
//! make the registers ABA-free (every write changes the register —
//! exactly the §5.3 trick), so a **double collect** is a correct scan:
//! if two consecutive collects read equal tagged contents, no write
//! was linearized between the first collect's end and the second's
//! start, and the common contents are a snapshot.
//!
//! * `update(j, v)` — one write step (wait-free).
//! * `scan()` — repeated collects until two agree; non-blocking: only
//!   an infinite sequence of concurrent writes can starve it, and a
//!   scan concurrent with `k` writes finishes within `(k + 2)·m`
//!   reads.
//!
//! The tests drive adversarial interleavings and check the recorded
//! histories with the Wing–Gong linearizability checker against the
//! atomic snapshot specification, and verify that dropping the tags
//! (re-introducing ABA) breaks linearizability.

use rsim_smr::history::{History, OpId};
use rsim_smr::object::{Object, ObjectId, Operation, Response};
use rsim_smr::value::Value;

/// A tagged register value: `(value, writer, seq)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tagged {
    /// The logical value.
    pub value: Value,
    /// The writing process.
    pub writer: usize,
    /// The writer's write counter.
    pub seq: u64,
}

impl Tagged {
    fn initial() -> Self {
        Tagged { value: Value::Nil, writer: usize::MAX, seq: 0 }
    }
}

/// A high-level operation on the implemented snapshot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MwOp {
    /// `update(component, value)`.
    Update(usize, Value),
    /// `scan()`.
    Scan,
}

/// Outcome of a completed operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MwOutcome {
    /// Update acknowledged.
    Ack,
    /// Scan returned this view.
    View(Vec<Value>),
}

#[derive(Clone, Debug)]
enum St {
    Idle,
    /// One-step write pending.
    Write(usize, Value),
    /// Collecting: previous full collect (if any) and the current one.
    Collecting { prev: Option<Vec<Tagged>>, current: Vec<Tagged> },
}

/// Per-process client of the construction.
#[derive(Clone, Debug)]
pub struct MwClient {
    i: usize,
    m: usize,
    seq: u64,
    state: St,
    steps: usize,
    /// When true, tags are omitted (regression mode demonstrating why
    /// ABA breaks the double collect).
    tagged: bool,
}

/// A pending atomic register step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MwRequest {
    /// Read register `j`.
    Read(usize),
    /// Write `(register, tagged value)`.
    Write(usize, Tagged),
}

impl MwClient {
    /// Creates the client for process `i` over `m` registers.
    pub fn new(i: usize, m: usize) -> Self {
        MwClient { i, m, seq: 0, state: St::Idle, steps: 0, tagged: true }
    }

    /// The deliberately broken variant: writes carry no distinguishing
    /// tag, so the double collect can be fooled by ABA.
    pub fn untagged(i: usize, m: usize) -> Self {
        MwClient { tagged: false, ..MwClient::new(i, m) }
    }

    /// Is the client between operations?
    pub fn is_idle(&self) -> bool {
        matches!(self.state, St::Idle)
    }

    /// Steps taken by the current (or last) operation.
    pub fn steps_in_op(&self) -> usize {
        self.steps
    }

    /// Begins an operation.
    ///
    /// # Panics
    ///
    /// Panics if one is in progress or the component is out of range.
    pub fn begin(&mut self, op: MwOp) {
        assert!(self.is_idle(), "operation already in progress");
        self.steps = 0;
        self.state = match op {
            MwOp::Update(j, v) => {
                assert!(j < self.m, "component out of range");
                St::Write(j, v)
            }
            MwOp::Scan => St::Collecting { prev: None, current: Vec::new() },
        };
    }

    /// The pending atomic register step.
    pub fn pending_request(&self) -> Option<MwRequest> {
        match &self.state {
            St::Idle => None,
            St::Write(j, v) => {
                let tag = if self.tagged {
                    Tagged { value: v.clone(), writer: self.i, seq: self.seq + 1 }
                } else {
                    Tagged { value: v.clone(), writer: 0, seq: 0 }
                };
                Some(MwRequest::Write(*j, tag))
            }
            St::Collecting { current, .. } => Some(MwRequest::Read(current.len())),
        }
    }

    /// Delivers the result of the pending step. Returns the outcome if
    /// the high-level operation completed.
    ///
    /// # Panics
    ///
    /// Panics on a mismatched delivery.
    pub fn deliver(&mut self, read: Option<Tagged>) -> Option<MwOutcome> {
        self.steps += 1;
        match std::mem::replace(&mut self.state, St::Idle) {
            St::Write(..) => {
                assert!(read.is_none(), "write got a read result");
                self.seq += 1;
                Some(MwOutcome::Ack)
            }
            St::Collecting { prev, mut current } => {
                current.push(read.expect("read result"));
                if current.len() < self.m {
                    self.state = St::Collecting { prev, current };
                    return None;
                }
                if prev.as_ref() == Some(&current) {
                    let view = current.into_iter().map(|t| t.value).collect();
                    return Some(MwOutcome::View(view));
                }
                self.state =
                    St::Collecting { prev: Some(current), current: Vec::new() };
                None
            }
            St::Idle => panic!("deliver on idle client"),
        }
    }
}

/// The register array plus clients plus a recorded history for the
/// linearizability checker.
#[derive(Clone, Debug)]
pub struct MwSystem {
    regs: Vec<Tagged>,
    clients: Vec<MwClient>,
    history: History,
    open_ops: Vec<Option<OpId>>,
    m: usize,
}

impl MwSystem {
    /// Creates a system of `n` processes over `m` registers.
    pub fn new(n: usize, m: usize) -> Self {
        MwSystem {
            regs: vec![Tagged::initial(); m],
            clients: (0..n).map(|i| MwClient::new(i, m)).collect(),
            history: History::new(),
            open_ops: vec![None; n],
            m,
        }
    }

    /// The broken untagged variant (for the ABA regression test).
    pub fn untagged(n: usize, m: usize) -> Self {
        let mut sys = MwSystem::new(n, m);
        sys.clients = (0..n).map(|i| MwClient::untagged(i, m)).collect();
        sys
    }

    /// Is process `i` between operations?
    pub fn is_idle(&self, i: usize) -> bool {
        self.clients[i].is_idle()
    }

    /// Steps taken by `i`'s current (or last) operation.
    pub fn steps_in_op(&self, i: usize) -> usize {
        self.clients[i].steps_in_op()
    }

    /// Begins `op` for process `i`, recording its invocation.
    pub fn begin(&mut self, i: usize, op: MwOp) {
        let abstract_op = match &op {
            MwOp::Scan => Operation::Scan { obj: ObjectId(0) },
            MwOp::Update(j, v) => Operation::Update {
                obj: ObjectId(0),
                component: *j,
                value: v.clone(),
            },
        };
        self.open_ops[i] = Some(self.history.invoke(i, abstract_op));
        self.clients[i].begin(op);
    }

    /// Performs one atomic register step for process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is idle.
    pub fn step(&mut self, i: usize) -> Option<MwOutcome> {
        let req = self.clients[i].pending_request().expect("idle");
        let outcome = match req {
            MwRequest::Read(j) => {
                let t = self.regs[j].clone();
                self.clients[i].deliver(Some(t))
            }
            MwRequest::Write(j, t) => {
                self.regs[j] = t;
                self.clients[i].deliver(None)
            }
        };
        if let Some(out) = &outcome {
            let op_id = self.open_ops[i].take().expect("open");
            let resp = match out {
                MwOutcome::Ack => Response::Ack,
                MwOutcome::View(v) => Response::View(v.clone()),
            };
            self.history.respond(op_id, resp);
        }
        outcome
    }

    /// Runs process `i` to completion solo.
    pub fn run_to_completion(&mut self, i: usize) -> MwOutcome {
        loop {
            if let Some(out) = self.step(i) {
                return out;
            }
        }
    }

    /// Checks the recorded history for linearizability against the
    /// atomic m-component snapshot.
    pub fn is_linearizable(&self) -> bool {
        rsim_smr::linearizability::check(&self.history, Object::snapshot(self.m)).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sequential_semantics() {
        let mut sys = MwSystem::new(2, 3);
        sys.begin(0, MwOp::Update(1, Value::Int(7)));
        assert_eq!(sys.run_to_completion(0), MwOutcome::Ack);
        sys.begin(1, MwOp::Scan);
        match sys.run_to_completion(1) {
            MwOutcome::View(v) => {
                assert_eq!(v, vec![Value::Nil, Value::Int(7), Value::Nil]);
            }
            other => panic!("{other:?}"),
        }
        assert!(sys.is_linearizable());
    }

    #[test]
    fn solo_scan_costs_two_collects() {
        let m = 4;
        let mut sys = MwSystem::new(1, m);
        sys.begin(0, MwOp::Scan);
        sys.run_to_completion(0);
        assert_eq!(sys.steps_in_op(0), 2 * m);
    }

    fn random_drive(sys: &mut MwSystem, n: usize, ops: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut remaining = vec![ops; n];
        let mut counter = 0i64;
        loop {
            let live: Vec<usize> = (0..n)
                .filter(|&p| remaining[p] > 0 || !sys.is_idle(p))
                .collect();
            if live.is_empty() {
                break;
            }
            let i = live[rng.gen_range(0..live.len())];
            if sys.is_idle(i) {
                remaining[i] -= 1;
                counter += 1;
                let op = if rng.gen_bool(0.5) {
                    MwOp::Scan
                } else {
                    MwOp::Update(rng.gen_range(0..2), Value::Int(counter % 3))
                };
                sys.begin(i, op);
            }
            sys.step(i);
        }
    }

    #[test]
    fn tagged_histories_are_linearizable() {
        for seed in 0..40 {
            let mut sys = MwSystem::new(3, 2);
            random_drive(&mut sys, 3, 3, seed);
            assert!(sys.is_linearizable(), "seed {seed}");
        }
    }

    /// Drives the classic ABA witness against `sys`: p0 scans while p1
    /// issues updates timed so that both of p0's collects read
    /// `[A, C] = [1, 11]` although that pair never co-exists:
    ///
    /// states: (1,10) →u1 (2,10) →u2 (2,11) →u3 (2,12) →u4 (1,12)
    ///         →u5 (3,12) →u6 (3,11).
    ///
    /// p0 reads R0=1 before u1, R1=11 between u2 and u3 (collect 1),
    /// then R0=1 between u4 and u5, R1=11 after u6 (collect 2).
    fn drive_aba_witness(sys: &mut MwSystem) -> MwOutcome {
        let upd = |sys: &mut MwSystem, j: usize, v: i64| {
            sys.begin(1, MwOp::Update(j, Value::Int(v)));
            sys.run_to_completion(1);
        };
        // Initial: R0 = 1 (A), R1 = 10 (B).
        upd(sys, 0, 1);
        upd(sys, 1, 10);
        sys.begin(0, MwOp::Scan);
        sys.step(0); // c1: read R0 = 1 (A)
        upd(sys, 0, 2); // u1: R0 -> X
        upd(sys, 1, 11); // u2: R1 -> C
        sys.step(0); // c1: read R1 = 11 (C); collect1 = [A, C]
        upd(sys, 1, 12); // u3: R1 -> D
        upd(sys, 0, 1); // u4: R0 -> A   (ABA on R0's value!)
        sys.step(0); // c2: read R0 = 1 (A)
        upd(sys, 0, 3); // u5: R0 -> Y
        upd(sys, 1, 11); // u6: R1 -> C   (ABA on R1's value!)
        // c2: read R1 = 11 (C). Untagged: collect2 = [A, C] = collect1.
        let mut last = sys.step(0);
        // Tagged mode keeps collecting (tags differ); let it finish.
        while last.is_none() {
            last = sys.step(0);
        }
        last.unwrap()
    }

    #[test]
    fn untagged_double_collect_is_fooled_by_aba() {
        let mut sys = MwSystem::untagged(2, 2);
        let out = drive_aba_witness(&mut sys);
        // The broken scan returns [1, 11] — a pair that never
        // co-existed in any configuration.
        assert_eq!(out, MwOutcome::View(vec![Value::Int(1), Value::Int(11)]));
        assert!(
            !sys.is_linearizable(),
            "ABA must make the untagged history non-linearizable"
        );
    }

    #[test]
    fn tags_defeat_the_aba_witness() {
        // Same schedule, tagged registers: the second collect differs
        // (fresh sequence numbers), the scan keeps collecting, and the
        // final view is the true current contents [3, 11].
        let mut sys = MwSystem::new(2, 2);
        let out = drive_aba_witness(&mut sys);
        assert_eq!(out, MwOutcome::View(vec![Value::Int(3), Value::Int(11)]));
        assert!(sys.is_linearizable());
    }

    #[test]
    fn scan_retries_under_interleaved_writes_then_completes() {
        let mut sys = MwSystem::new(2, 2);
        sys.begin(0, MwOp::Scan);
        sys.step(0); // read R0
        // A write lands mid-collect.
        sys.begin(1, MwOp::Update(1, Value::Int(5)));
        sys.run_to_completion(1);
        let out = sys.run_to_completion(0);
        // Scan eventually returns and includes the write: 1 concurrent
        // write ⇒ at most (1 + 2) * m = 6 reads.
        assert!(sys.steps_in_op(0) <= 6);
        assert_eq!(out, MwOutcome::View(vec![Value::Nil, Value::Int(5)]));
        assert!(sys.is_linearizable());
    }
}
