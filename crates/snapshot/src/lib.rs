//! `rsim-snapshot`: the snapshot substrate of the reproduction,
//! centered on the paper's §3 *augmented snapshot object*.
//!
//! * [`timestamp`] — f-component vector timestamps (Algorithm 1).
//! * [`hbase`] — the single-writer snapshot `H` with update triples and
//!   the folded-in helping registers `L_{i,j}` (Observation 1's prefix
//!   order, `Get-View`).
//! * [`client`] — resumable step machines for `Scan` (Algorithm 3) and
//!   `Block-Update` (Algorithm 4); 6-step Block-Updates, `2k+3`-step
//!   Scans (Lemma 2).
//! * [`real`] — the real system: `f` clients over one `H`, with full
//!   event and operation logs.
//! * [`spec`] — the §3.3 linearization construction and machine checks
//!   of Corollary 15, Lemmas 2/9/11/12/19 and Theorem 20.
//! * [`afek`] — a wait-free single-writer snapshot built from
//!   single-writer registers (the paper's citation \[2\]), discharging
//!   the assumption that `H` is available from registers.
//! * [`mw_from_registers`] — an m-component multi-writer snapshot from
//!   m registers via ABA-free tagged double collects (the other
//!   direction of the §2 equivalence, and the §5.3 double-collect
//!   remark made concrete — including the ABA witness that breaks the
//!   untagged variant).
//! * [`thread_mode`] — a coarse-locked, thread-shared twin of the
//!   augmented snapshot for real-thread stress tests.
//! * [`certify`] — non-blocking certification under deterministic
//!   crash placements: every single-crash position in the Block-Update
//!   sequence, survivors checked for progress and §3 conformance.
//!
//! # Example: one atomic Block-Update
//!
//! ```
//! use rsim_snapshot::client::{AugOp, AugOutcome};
//! use rsim_snapshot::real::RealSystem;
//! use rsim_smr::value::Value;
//!
//! let mut rs = RealSystem::new(2, 3);
//! rs.begin(0, AugOp::BlockUpdate {
//!     components: vec![0, 2],
//!     values: vec![Value::Int(5), Value::Int(7)],
//! });
//! match rs.run_to_completion(0) {
//!     AugOutcome::BlockUpdate(out) => {
//!         // Uncontended Block-Updates are atomic and return the prior
//!         // view of M (all ⊥ here).
//!         assert_eq!(out.result, Some(vec![Value::Nil; 3]));
//!     }
//!     _ => unreachable!(),
//! }
//! ```

pub mod afek;
pub mod certify;
pub mod client;
pub mod hbase;
pub mod mw_from_registers;
pub mod real;
pub mod spec;
pub mod thread_mode;
pub mod timestamp;

pub use client::{AugOp, AugOutcome, BlockUpdateOutcome, ScanOutcome};
pub use real::RealSystem;
pub use spec::{atomic_windows, check, linearize, AtomicWindow, LinOp, SpecReport};
pub use timestamp::Timestamp;
