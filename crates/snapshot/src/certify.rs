//! Non-blocking certification of the augmented snapshot under
//! deterministic crash placements.
//!
//! §3 of the paper proves the augmented snapshot is non-blocking: a
//! crash-stopped process can never prevent the survivors from
//! completing their own operations, and the partial Block-Update it
//! leaves behind must still linearize consistently (as a non-atomic
//! batch, per §3.3).
//!
//! [`certify_nonblocking_block_updates`] machine-checks this on
//! concrete executions. For every victim process and every prefix
//! length `k` of its [`BLOCK_UPDATE_STEPS`]-step Block-Update sequence,
//! the victim takes exactly `k` interleaved steps and then
//! crash-stops; every survivor finishes its own Block-Update and a
//! final `Scan` under a bounded round-robin schedule, and the finished
//! run is checked against the §3 specification ([`crate::spec::check`]).
//! A placement fails certification if any survivor exceeds its step
//! budget (a blocking violation) or the specification check reports an
//! error.
//!
//! [`certify_block_update_faults`] widens the same victim×step sweep to
//! *stalls*: the victim pauses at the same prefix points while the
//! survivors complete everything, then resumes and must itself finish
//! its Block-Update and a Scan — the wait-free counterpart of the
//! crash case. Its failures are structured ([`Placement`] + message) so
//! a failed certification can be packaged into a replay bundle.

use crate::client::AugOp;
use crate::real::RealSystem;
use crate::spec;
use rsim_smr::value::Value;
use std::fmt;

/// Steps in a full (non-yielding) Block-Update sequence (Lemma 2).
pub const BLOCK_UPDATE_STEPS: usize = 6;

/// A single-crash placement: `victim` crash-stops after taking exactly
/// `after_steps` steps of its Block-Update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CrashPlacement {
    /// The process that crash-stops.
    pub victim: usize,
    /// How many steps of its Block-Update it completes first
    /// (`0..BLOCK_UPDATE_STEPS`, so the operation never finishes).
    pub after_steps: usize,
}

impl fmt::Display for CrashPlacement {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(out, "crash q{} after step {}", self.victim, self.after_steps)
    }
}

/// All single-crash placements for an `f`-process system, victim-major
/// then step order: every victim crashing before each of the
/// [`BLOCK_UPDATE_STEPS`] steps of its Block-Update.
pub fn single_crash_placements(f: usize) -> Vec<CrashPlacement> {
    let mut placements = Vec::with_capacity(f * BLOCK_UPDATE_STEPS);
    for victim in 0..f {
        for after_steps in 0..BLOCK_UPDATE_STEPS {
            placements.push(CrashPlacement { victim, after_steps });
        }
    }
    placements
}

/// What happens to the victim at its placement point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// The victim crash-stops for good; survivors must still finish.
    Crash,
    /// The victim pauses while the survivors finish everything, then
    /// resumes and must itself complete (a full stall window).
    Stall,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Crash => write!(out, "crash"),
            FaultAction::Stall => write!(out, "stall"),
        }
    }
}

/// A single-fault placement: `victim` crashes or stalls after taking
/// exactly `after_steps` steps of its Block-Update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Placement {
    /// The process that crashes or stalls.
    pub victim: usize,
    /// How many steps of its Block-Update it completes first
    /// (`0..BLOCK_UPDATE_STEPS`).
    pub after_steps: usize,
    /// Whether the victim crash-stops or merely stalls.
    pub action: FaultAction,
}

impl fmt::Display for Placement {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "{} q{} after step {}",
            self.action, self.victim, self.after_steps
        )
    }
}

/// All single-fault placements for an `f`-process system: the
/// victim×step sweep of [`single_crash_placements`], once per
/// [`FaultAction`] (crash first, then stall, within each coordinate).
pub fn single_fault_placements(f: usize) -> Vec<Placement> {
    let mut placements = Vec::with_capacity(f * BLOCK_UPDATE_STEPS * 2);
    for crash in single_crash_placements(f) {
        for action in [FaultAction::Crash, FaultAction::Stall] {
            placements.push(Placement {
                victim: crash.victim,
                after_steps: crash.after_steps,
                action,
            });
        }
    }
    placements
}

/// The outcome of certifying every placement of a crash space.
#[derive(Clone, Debug)]
pub struct CertifyReport {
    /// Number of real processes.
    pub f: usize,
    /// Components of the augmented snapshot.
    pub m: usize,
    /// Every placement that was checked.
    pub placements: Vec<CrashPlacement>,
    /// One entry per failed placement (empty = certified).
    pub failures: Vec<String>,
}

impl CertifyReport {
    /// Did every placement pass?
    pub fn is_certified(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one crash placement to completion and returns the finished
/// system, or a description of the blocking violation.
///
/// Schedule: every process begins a Block-Update (process `i` writes
/// `i + 1` to component `i mod m`); processes are stepped round-robin,
/// except the victim stops for good after `after_steps` steps. Once
/// the surviving Block-Updates finish, every survivor performs a
/// `Scan`, again round-robin. Each phase is bounded by a step budget,
/// so a blocked survivor is detected rather than looping forever.
pub fn run_placement(
    f: usize,
    m: usize,
    placement: CrashPlacement,
) -> Result<RealSystem, String> {
    run_fault_placement(
        f,
        m,
        Placement {
            victim: placement.victim,
            after_steps: placement.after_steps,
            action: FaultAction::Crash,
        },
    )
}

/// Runs one fault placement (crash *or* stall) to completion.
///
/// The crash case is exactly [`run_placement`]. In the stall case the
/// victim pauses at the same prefix point while the survivors finish
/// their Block-Updates and Scans, then resumes: it must complete its
/// own Block-Update and a final Scan within the same per-phase budget,
/// so a stalled process that can never catch up is detected as a
/// blocking violation rather than looped on.
pub fn run_fault_placement(
    f: usize,
    m: usize,
    placement: Placement,
) -> Result<RealSystem, String> {
    assert!(placement.victim < f, "victim out of range");
    assert!(placement.after_steps < BLOCK_UPDATE_STEPS, "fault after completion");
    let mut real = RealSystem::new(f, m);
    for pid in 0..f {
        real.begin(
            pid,
            AugOp::BlockUpdate {
                components: vec![pid % m],
                values: vec![Value::Int(pid as i64 + 1)],
            },
        );
    }
    let mut victim_steps = 0;
    round_robin(&mut real, f, |pid| {
        if pid == placement.victim {
            if victim_steps == placement.after_steps {
                return false;
            }
            victim_steps += 1;
        }
        true
    })
    .map_err(|pid| format!("{placement}: q{pid}'s Block-Update blocked"))?;
    for pid in 0..f {
        if pid != placement.victim {
            real.begin(pid, AugOp::Scan);
        }
    }
    round_robin(&mut real, f, |pid| pid != placement.victim)
        .map_err(|pid| format!("{placement}: q{pid}'s Scan blocked"))?;
    if placement.action == FaultAction::Stall {
        // The stall window closes: the victim resumes alone and must
        // finish its Block-Update, then a Scan of its own.
        round_robin(&mut real, f, |pid| pid == placement.victim).map_err(
            |pid| format!("{placement}: q{pid}'s resumed Block-Update blocked"),
        )?;
        real.begin(placement.victim, AugOp::Scan);
        round_robin(&mut real, f, |pid| pid == placement.victim)
            .map_err(|pid| format!("{placement}: q{pid}'s resumed Scan blocked"))?;
    }
    Ok(real)
}

/// Steps every non-idle process for which `live` says yes, round-robin,
/// until all such processes are idle. Errs with the stuck process id if
/// the per-phase budget runs out (the non-blocking property failed).
fn round_robin(
    real: &mut RealSystem,
    f: usize,
    mut live: impl FnMut(usize) -> bool,
) -> Result<(), usize> {
    // A Block-Update takes ≤ 6 steps and a Scan ≤ 2k + 3 (Lemma 2);
    // this budget is far beyond any spec-conforming phase for small f.
    let budget = 64 * f * f + 64;
    for _ in 0..budget {
        let mut progressed = false;
        for pid in 0..f {
            if !real.is_idle(pid) && live(pid) {
                real.step(pid);
                progressed = true;
            }
        }
        if !progressed {
            return Ok(());
        }
    }
    let stuck = (0..f)
        .find(|&pid| !real.is_idle(pid) && live(pid))
        .unwrap_or(0);
    Err(stuck)
}

/// Certifies non-blocking progress of the augmented snapshot under
/// every single-crash placement in the Block-Update sequence: for each
/// placement, survivors must complete their Block-Updates and Scans,
/// and the resulting execution must satisfy the §3 specification.
pub fn certify_nonblocking_block_updates(f: usize, m: usize) -> CertifyReport {
    let placements = single_crash_placements(f);
    let mut failures = Vec::new();
    for &placement in &placements {
        match run_placement(f, m, placement) {
            Err(blocked) => failures.push(blocked),
            Ok(real) => {
                let report = spec::check(&real, m);
                for error in &report.errors {
                    failures.push(format!("{placement}: {error}"));
                }
                let expected_scans = f - 1;
                if report.scans != expected_scans {
                    failures.push(format!(
                        "{placement}: {} of {expected_scans} survivor Scans completed",
                        report.scans
                    ));
                }
            }
        }
    }
    CertifyReport { f, m, placements, failures }
}

/// The outcome of certifying every crash *and* stall placement.
///
/// Failures are structured — each carries the [`Placement`] that broke
/// alongside the message — so a failed certification can be packaged
/// into a portable replay bundle instead of just a log line.
#[derive(Clone, Debug)]
pub struct FaultCertifyReport {
    /// Number of real processes.
    pub f: usize,
    /// Components of the augmented snapshot.
    pub m: usize,
    /// Every placement that was checked.
    pub placements: Vec<Placement>,
    /// One entry per failed placement (empty = certified).
    pub failures: Vec<(Placement, String)>,
}

impl FaultCertifyReport {
    /// Did every placement pass?
    pub fn is_certified(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one fault placement and returns its failure messages (empty =
/// the placement certifies). This is the per-placement body of
/// [`certify_block_update_faults`], exposed so a replay of a bundled
/// certification failure can re-check exactly one placement.
pub fn check_fault_placement(f: usize, m: usize, placement: Placement) -> Vec<String> {
    match run_fault_placement(f, m, placement) {
        Err(blocked) => vec![blocked],
        Ok(real) => {
            let report = spec::check(&real, m);
            let mut failures: Vec<String> = report
                .errors
                .iter()
                .map(|error| format!("{placement}: {error}"))
                .collect();
            // Independent cross-check: the happens-before analyzer
            // re-certifies every atomic Block-Update's linearization
            // window from the linearization alone (lint RS-W007),
            // without reusing atomic_windows' search.
            let lin_events = spec::lin_events(&report.lin);
            for failure in
                rsim_smr::analyze::check_block_update_windows(&lin_events)
            {
                failures.push(format!("{placement}: hb window check: {failure}"));
            }
            let expected_scans = match placement.action {
                FaultAction::Crash => f - 1,
                FaultAction::Stall => f,
            };
            if report.scans != expected_scans {
                failures.push(format!(
                    "{placement}: {} of {expected_scans} expected Scans \
                     completed",
                    report.scans
                ));
            }
            failures
        }
    }
}

/// Certifies the augmented snapshot under every single-fault placement
/// — the crash sweep of [`certify_nonblocking_block_updates`] plus the
/// matching stall sweep. Crash placements expect `f - 1` survivor
/// Scans; stall placements expect all `f` (the victim's own Scan runs
/// after it resumes).
pub fn certify_block_update_faults(f: usize, m: usize) -> FaultCertifyReport {
    let placements = single_fault_placements(f);
    let mut failures = Vec::new();
    for &placement in &placements {
        for failure in check_fault_placement(f, m, placement) {
            failures.push((placement, failure));
        }
    }
    FaultCertifyReport { f, m, placements, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LinOp;

    #[test]
    fn placement_space_is_exhaustive_and_victim_major() {
        let placements = single_crash_placements(3);
        assert_eq!(placements.len(), 3 * BLOCK_UPDATE_STEPS);
        assert_eq!(placements[0], CrashPlacement { victim: 0, after_steps: 0 });
        assert_eq!(
            placements[BLOCK_UPDATE_STEPS],
            CrashPlacement { victim: 1, after_steps: 0 }
        );
        // Victim-major, then step order.
        let mut sorted = placements.clone();
        sorted.sort_by_key(|p| (p.victim, p.after_steps));
        assert_eq!(placements, sorted);
    }

    #[test]
    fn all_single_crash_placements_certify_for_small_systems() {
        for f in 1..=3 {
            for m in 1..=3 {
                let report = certify_nonblocking_block_updates(f, m);
                assert!(
                    report.is_certified(),
                    "f={f} m={m} failures: {:?}",
                    report.failures
                );
                assert_eq!(report.placements.len(), f * BLOCK_UPDATE_STEPS);
            }
        }
    }

    #[test]
    fn fault_placement_space_doubles_the_crash_sweep() {
        let placements = single_fault_placements(2);
        assert_eq!(placements.len(), 2 * BLOCK_UPDATE_STEPS * 2);
        assert_eq!(
            placements[0],
            Placement { victim: 0, after_steps: 0, action: FaultAction::Crash }
        );
        assert_eq!(
            placements[1],
            Placement { victim: 0, after_steps: 0, action: FaultAction::Stall }
        );
        // Same victim-major, step order as the crash sweep it reuses.
        let mut sorted = placements.clone();
        sorted.sort_by_key(|p| (p.victim, p.after_steps));
        assert_eq!(placements, sorted);
    }

    #[test]
    fn all_single_fault_placements_certify_for_small_systems() {
        for f in 1..=3 {
            for m in 1..=2 {
                let report = certify_block_update_faults(f, m);
                assert!(
                    report.is_certified(),
                    "f={f} m={m} failures: {:?}",
                    report.failures
                );
                assert_eq!(report.placements.len(), f * BLOCK_UPDATE_STEPS * 2);
            }
        }
    }

    #[test]
    fn stalled_victim_completes_and_its_batch_linearizes_atomically() {
        // A stall is survivable: once the window closes the victim's
        // Block-Update runs to completion, so unlike a crash its batch
        // linearizes as a *completed* operation.
        let placement =
            Placement { victim: 0, after_steps: 2, action: FaultAction::Stall };
        let real = run_fault_placement(2, 2, placement).expect("all complete");
        let lin = spec::linearize(&real);
        let victim_update = lin
            .iter()
            .find(|op| matches!(op, LinOp::Update { pid: 0, .. }))
            .expect("resumed victim's update linearizes");
        if let LinOp::Update { op_index, .. } = victim_update {
            assert!(
                op_index.is_some(),
                "a resumed Block-Update completes, so it carries its op index"
            );
        }
    }

    #[test]
    fn late_crash_leaves_a_non_atomic_batch_in_the_linearization() {
        // Crashing after step 5 means the victim already appended its
        // triples to H (its second H-step, Algorithm 4's update); §3.3
        // linearizes them as a non-atomic batch even though the
        // operation never completed.
        let placement = CrashPlacement { victim: 0, after_steps: 5 };
        let real = run_placement(2, 2, placement).expect("survivors complete");
        let lin = spec::linearize(&real);
        let victim_update = lin.iter().find(|op| {
            matches!(op, LinOp::Update { pid: 0, op_index: None, .. })
        });
        let update = victim_update.expect("victim's partial batch linearizes");
        if let LinOp::Update { atomic, .. } = update {
            assert!(!atomic, "an incomplete Block-Update is never atomic");
        }
    }

    #[test]
    fn early_crash_leaves_no_trace_of_the_victim() {
        // A Block-Update appends its triples at its second H-step;
        // crashing after one step means the victim appended nothing,
        // so its batch must not linearize at all.
        let placement = CrashPlacement { victim: 1, after_steps: 1 };
        let real = run_placement(3, 2, placement).expect("survivors complete");
        let lin = spec::linearize(&real);
        assert!(
            !lin.iter().any(|op| matches!(op, LinOp::Update { pid: 1, .. })),
            "victim appended nothing, yet its update linearized"
        );
    }

    #[test]
    fn hb_checker_confirms_windows_on_certified_placements() {
        // E12's acceptance cross-check: on every certified fault
        // placement, the happens-before analyzer independently
        // confirms that each atomic Block-Update's updates form a
        // contiguous linearization window (RS-W007 never fires).
        for &placement in &single_fault_placements(3) {
            let Ok(real) = run_fault_placement(3, 2, placement) else {
                panic!("{placement}: placement did not complete")
            };
            let report = spec::check(&real, 2);
            assert!(report.errors.is_empty(), "{placement}: {:?}", report.errors);
            let events = spec::lin_events(&report.lin);
            let failures = rsim_smr::analyze::check_block_update_windows(&events);
            assert!(failures.is_empty(), "{placement}: {failures:?}");
        }
    }

    #[test]
    fn hb_checker_rejects_a_torn_window() {
        // A genuine two-component Block-Update linearizes as a
        // two-update atomic batch; corrupting the linearization by
        // pushing a scan inside that window must trip the independent
        // checker (the fault-sweep placements all write singleton
        // batches, which no corruption can tear).
        use rsim_smr::analyze::LinEvent;
        use rsim_smr::process::ProcessId;
        let mut real = RealSystem::new(2, 2);
        real.begin(
            0,
            AugOp::BlockUpdate {
                components: vec![0, 1],
                values: vec![Value::Int(1), Value::Int(2)],
            },
        );
        round_robin(&mut real, 2, |_| true).expect("block-update completes");
        real.begin(1, AugOp::Scan);
        round_robin(&mut real, 2, |_| true).expect("scan completes");
        let report = spec::check(&real, 2);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let mut events = spec::lin_events(&report.lin);
        assert!(
            rsim_smr::analyze::check_block_update_windows(&events).is_empty(),
            "honest linearization must certify"
        );
        let second_update = events
            .iter()
            .rposition(|e| matches!(e, LinEvent::Update { atomic: true, .. }))
            .expect("two-component batch linearizes atomically");
        assert!(second_update > 0, "batch has two updates");
        events.insert(second_update, LinEvent::Scan { pid: ProcessId(1), time: 99 });
        let failures = rsim_smr::analyze::check_block_update_windows(&events);
        assert!(!failures.is_empty(), "torn window went unnoticed");
    }

    #[test]
    fn a_blocked_survivor_is_reported_not_looped_on() {
        // `live` that freezes every process after the victim makes the
        // budget trip; the report must name the stuck process.
        let mut real = RealSystem::new(2, 2);
        real.begin(
            0,
            AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(1)] },
        );
        let stuck = round_robin(&mut real, 2, |_| false);
        assert_eq!(stuck, Ok(()), "frozen processes make no progress and exit");
    }
}
