//! The augmented-snapshot client: resumable step machines for `Scan`
//! (Algorithm 3) and `Block-Update` (Algorithm 4).
//!
//! Every step of a client is one atomic operation on the single-writer
//! snapshot `H` (a scan, or an update of the process's own component).
//! The machine is *resumable*: the driver asks for the pending
//! [`HRequest`], performs it on `H` at a point of its choosing (this is
//! where the adversary schedules), and delivers the [`HReply`]. When an
//! operation completes, [`AugClient::deliver`] returns its outcome.
//!
//! Step counts follow Lemma 2: a `Block-Update` takes 6 steps (5 when
//! it yields); a `Scan` takes `2k + 3` steps where `k` is the number of
//! concurrent triple-appending updates by other processes.

use crate::hbase::{
    get_view, is_proper_prefix, HView, LWrite, Triple, TriplesView,
};
use crate::timestamp::Timestamp;
use rsim_smr::value::Value;
use std::sync::Arc;

/// A high-level operation on the augmented snapshot `M`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AugOp {
    /// `M.Scan()`.
    Scan,
    /// `M.Block-Update([j_1..j_r], [v_1..v_r])`.
    BlockUpdate {
        /// The distinct components to update.
        components: Vec<usize>,
        /// The values, one per component.
        values: Vec<Value>,
    },
}

/// A single atomic step on `H`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HRequest {
    /// `H.scan()`.
    Scan,
    /// `H.update_i(...)`: append `triples` and perform register writes
    /// `lwrites` on the caller's own component.
    Update {
        /// Update triples to append (empty for pure helping writes).
        triples: Vec<Triple>,
        /// Helping-register writes.
        lwrites: Vec<LWrite>,
    },
}

/// The reply to an [`HRequest`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HReply {
    /// Result of a scan.
    View(HView),
    /// Acknowledgement of an update.
    Ack,
}

/// Outcome of a completed `M.Scan`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScanOutcome {
    /// The returned view of `M`.
    pub view: Vec<Value>,
    /// The triples part of the final (linearizing) scan of `H`.
    pub h: TriplesView,
    /// H-steps the operation took (Lemma 2: `2k + 3`).
    pub steps: usize,
}

/// Outcome of a completed `M.Block-Update`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockUpdateOutcome {
    /// The returned view of `M`, or `None` for the yield symbol Y.
    pub result: Option<Vec<Value>>,
    /// The timestamp associated with the Block-Update (and all its
    /// Updates).
    pub ts: Timestamp,
    /// The `last` triples-view whose `Get-View` was returned (atomic
    /// Block-Updates only).
    pub last: Option<TriplesView>,
    /// The triples part of the line-2 scan `H`.
    pub h: TriplesView,
    /// The components updated.
    pub components: Vec<usize>,
    /// The values written.
    pub values: Vec<Value>,
    /// H-steps the operation took (6, or 5 on yield).
    pub steps: usize,
}

/// Outcome of a completed augmented-snapshot operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AugOutcome {
    /// A completed `Scan`.
    Scan(ScanOutcome),
    /// A completed `Block-Update`.
    BlockUpdate(BlockUpdateOutcome),
}

#[derive(Clone, Debug)]
enum St {
    Idle,
    // --- Scan (Algorithm 3) ---
    SScan1,
    SWrite { h: HView },
    SScan2 { h: HView },
    // --- Block-Update (Algorithm 4) ---
    B1 { components: Vec<usize>, values: Vec<Value> },
    B2 { info: BuInfo },
    B3 { info: BuInfo },
    B4 { info: BuInfo, lwrites: Vec<LWrite> },
    B5 { info: BuInfo },
    B6 { info: BuInfo },
}

#[derive(Clone, Debug)]
struct BuInfo {
    h: HView,
    ts: Timestamp,
    components: Vec<usize>,
    values: Vec<Value>,
    triples: Vec<Triple>,
}

/// The per-process augmented-snapshot client.
#[derive(Clone, Debug)]
pub struct AugClient {
    i: usize,
    f: usize,
    m: usize,
    state: St,
    steps_in_op: usize,
    completed_block_updates: usize,
}

impl AugClient {
    /// Creates the client for real process `i` of `f`, over an
    /// m-component augmented snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `i >= f` or `m == 0`.
    pub fn new(i: usize, f: usize, m: usize) -> Self {
        assert!(i < f, "process index out of range");
        assert!(m > 0, "augmented snapshot needs at least one component");
        AugClient { i, f, m, state: St::Idle, steps_in_op: 0, completed_block_updates: 0 }
    }

    /// This client's process index.
    pub fn process(&self) -> usize {
        self.i
    }

    /// Is the client between operations?
    pub fn is_idle(&self) -> bool {
        matches!(self.state, St::Idle)
    }

    /// Block-Updates completed so far (diagnostics).
    pub fn completed_block_updates(&self) -> usize {
        self.completed_block_updates
    }

    /// Begins a high-level operation.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in progress, or if a
    /// Block-Update names duplicate/out-of-range components or has
    /// mismatched lengths.
    pub fn begin(&mut self, op: AugOp) {
        assert!(self.is_idle(), "operation already in progress");
        self.steps_in_op = 0;
        match op {
            AugOp::Scan => self.state = St::SScan1,
            AugOp::BlockUpdate { components, values } => {
                assert_eq!(
                    components.len(),
                    values.len(),
                    "components/values length mismatch"
                );
                assert!(!components.is_empty(), "Block-Update needs r >= 1");
                let mut sorted = components.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), components.len(), "components must be distinct");
                assert!(
                    components.iter().all(|&c| c < self.m),
                    "component out of range"
                );
                self.state = St::B1 { components, values };
            }
        }
    }

    /// The H-step the client is poised to perform, or `None` if idle.
    pub fn pending_request(&self) -> Option<HRequest> {
        match &self.state {
            St::Idle => None,
            St::SScan1 | St::SScan2 { .. } => Some(HRequest::Scan),
            St::SWrite { h } => {
                let counts = h.counts();
                let view = Arc::new(h.triples());
                let lwrites = (0..self.f)
                    .filter(|&j| j != self.i)
                    .map(|j| LWrite {
                        target: j,
                        index: counts[j],
                        view: Arc::clone(&view),
                    })
                    .collect();
                Some(HRequest::Update { triples: vec![], lwrites })
            }
            St::B1 { .. } | St::B3 { .. } | St::B5 { .. } | St::B6 { .. } => {
                Some(HRequest::Scan)
            }
            St::B2 { info } => Some(HRequest::Update {
                triples: info.triples.clone(),
                lwrites: vec![],
            }),
            St::B4 { lwrites, .. } => Some(HRequest::Update {
                triples: vec![],
                lwrites: lwrites.clone(),
            }),
        }
    }

    /// Delivers the reply of the pending H-step, advancing the machine.
    /// Returns the operation's outcome when it completes.
    ///
    /// # Panics
    ///
    /// Panics if idle or if the reply does not match the pending
    /// request (driver bug).
    pub fn deliver(&mut self, reply: HReply) -> Option<AugOutcome> {
        self.steps_in_op += 1;
        let state = std::mem::replace(&mut self.state, St::Idle);
        match (state, reply) {
            // --- Scan ---
            (St::SScan1, HReply::View(h)) => {
                self.state = St::SWrite { h };
                None
            }
            (St::SWrite { h }, HReply::Ack) => {
                self.state = St::SScan2 { h };
                None
            }
            (St::SScan2 { h }, HReply::View(h2)) => {
                if h.triples() == h2.triples() {
                    let triples = h2.triples();
                    let outcome = ScanOutcome {
                        view: get_view(&triples, self.m),
                        h: triples,
                        steps: self.steps_in_op,
                    };
                    Some(AugOutcome::Scan(outcome))
                } else {
                    self.state = St::SWrite { h: h2 };
                    None
                }
            }
            // --- Block-Update ---
            (St::B1 { components, values }, HReply::View(h)) => {
                let ts = Timestamp::generate(self.i, &h.counts());
                let triples = components
                    .iter()
                    .zip(&values)
                    .map(|(&c, v)| Triple { component: c, value: v.clone(), ts: ts.clone() })
                    .collect();
                self.state = St::B2 {
                    info: BuInfo { h, ts, components, values, triples },
                };
                None
            }
            (St::B2 { info }, HReply::Ack) => {
                self.state = St::B3 { info };
                None
            }
            (St::B3 { info }, HReply::View(g)) => {
                let counts = g.counts();
                let view = Arc::new(g.triples());
                let lwrites = (0..self.i)
                    .map(|j| LWrite {
                        target: j,
                        index: counts[j],
                        view: Arc::clone(&view),
                    })
                    .collect();
                self.state = St::B4 { info, lwrites };
                None
            }
            (St::B4 { info, .. }, HReply::Ack) => {
                self.state = St::B5 { info };
                None
            }
            (St::B5 { info }, HReply::View(h2)) => {
                let old = info.h.counts();
                let new = h2.counts();
                let lower_id_appended = (0..self.i).any(|j| new[j] > old[j]);
                if lower_id_appended {
                    self.completed_block_updates += 1;
                    let outcome = BlockUpdateOutcome {
                        result: None,
                        ts: info.ts,
                        last: None,
                        h: info.h.triples(),
                        components: info.components,
                        values: info.values,
                        steps: self.steps_in_op,
                    };
                    Some(AugOutcome::BlockUpdate(outcome))
                } else {
                    self.state = St::B6 { info };
                    None
                }
            }
            (St::B6 { info }, HReply::View(r)) => {
                let b = info.h.counts()[self.i];
                let mut last = info.h.triples();
                for j in (0..self.f).filter(|&j| j != self.i) {
                    if let Some(v) = r.read_lreg(j, self.i, b) {
                        if is_proper_prefix(&last, v) {
                            last = v.clone();
                        }
                    }
                }
                self.completed_block_updates += 1;
                let outcome = BlockUpdateOutcome {
                    result: Some(get_view(&last, self.m)),
                    ts: info.ts,
                    last: Some(last),
                    h: info.h.triples(),
                    components: info.components,
                    values: info.values,
                    steps: self.steps_in_op,
                };
                Some(AugOutcome::BlockUpdate(outcome))
            }
            (state, reply) => {
                panic!("AugClient driver bug: state {state:?} got reply {reply:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbase::HObject;

    /// Runs `client` solo over `h` to completion; returns the outcome.
    fn run_solo(client: &mut AugClient, h: &mut HObject) -> AugOutcome {
        loop {
            let req = client.pending_request().expect("operation in progress");
            let reply = match req {
                HRequest::Scan => HReply::View(h.scan()),
                HRequest::Update { triples, lwrites } => {
                    h.update(client.process(), triples, lwrites);
                    HReply::Ack
                }
            };
            if let Some(outcome) = client.deliver(reply) {
                return outcome;
            }
        }
    }

    #[test]
    fn solo_scan_takes_three_steps_and_sees_bottom() {
        let mut h = HObject::new(2);
        let mut c = AugClient::new(0, 2, 3);
        c.begin(AugOp::Scan);
        match run_solo(&mut c, &mut h) {
            AugOutcome::Scan(out) => {
                assert_eq!(out.steps, 3);
                assert_eq!(out.view, vec![Value::Nil; 3]);
            }
            other => panic!("expected scan outcome, got {other:?}"),
        }
    }

    #[test]
    fn solo_block_update_is_atomic_and_takes_six_steps() {
        let mut h = HObject::new(2);
        let mut c = AugClient::new(1, 2, 3);
        c.begin(AugOp::BlockUpdate {
            components: vec![0, 2],
            values: vec![Value::Int(5), Value::Int(7)],
        });
        match run_solo(&mut c, &mut h) {
            AugOutcome::BlockUpdate(out) => {
                assert_eq!(out.steps, 6);
                // Solo: no contention, so atomic; the returned view is
                // the contents before the update: all ⊥.
                assert_eq!(out.result, Some(vec![Value::Nil; 3]));
            }
            other => panic!("expected block-update outcome, got {other:?}"),
        }
        // A subsequent scan sees the written values.
        let mut s = AugClient::new(0, 2, 3);
        s.begin(AugOp::Scan);
        match run_solo(&mut s, &mut h) {
            AugOutcome::Scan(out) => {
                assert_eq!(
                    out.view,
                    vec![Value::Int(5), Value::Nil, Value::Int(7)]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn process_zero_never_yields() {
        // Even with maximal interleaving by q1, q0's Block-Update is
        // atomic (Theorem 20).
        let mut h = HObject::new(2);
        let mut q0 = AugClient::new(0, 2, 2);
        let mut q1 = AugClient::new(1, 2, 2);
        q0.begin(AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(1)] });
        q1.begin(AugOp::BlockUpdate { components: vec![1], values: vec![Value::Int(2)] });
        // Interleave: q1 fully first of each step, then q0's step.
        let mut outcome0 = None;
        for _ in 0..12 {
            for c in [&mut q1, &mut q0] {
                if let Some(req) = c.pending_request() {
                    let reply = match req {
                        HRequest::Scan => HReply::View(h.scan()),
                        HRequest::Update { triples, lwrites } => {
                            h.update(c.process(), triples, lwrites);
                            HReply::Ack
                        }
                    };
                    if let Some(out) = c.deliver(reply) {
                        if c.process() == 0 {
                            outcome0 = Some(out);
                        }
                    }
                }
            }
        }
        match outcome0.expect("q0 completed") {
            AugOutcome::BlockUpdate(out) => {
                assert!(out.result.is_some(), "q0 must be atomic");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn yield_on_lower_id_contention() {
        // q1 scans (B1), then q0 appends triples, then q1 proceeds:
        // q1's line-8 scan sees a new q0 batch and yields.
        let mut h = HObject::new(2);
        let mut q0 = AugClient::new(0, 2, 2);
        let mut q1 = AugClient::new(1, 2, 2);
        q1.begin(AugOp::BlockUpdate { components: vec![1], values: vec![Value::Int(2)] });
        // q1 performs its line-2 scan.
        assert_eq!(q1.pending_request(), Some(HRequest::Scan));
        assert!(q1.deliver(HReply::View(h.scan())).is_none());
        // q0 performs a complete Block-Update solo.
        q0.begin(AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(1)] });
        let out0 = run_solo(&mut q0, &mut h);
        assert!(matches!(
            out0,
            AugOutcome::BlockUpdate(BlockUpdateOutcome { result: Some(_), .. })
        ));
        // q1 finishes; must yield after its line-8 scan (5 steps total).
        let out1 = run_solo(&mut q1, &mut h);
        match out1 {
            AugOutcome::BlockUpdate(out) => {
                assert_eq!(out.result, None, "q1 must yield");
                assert_eq!(out.steps, 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scan_retries_on_concurrent_append() {
        let mut h = HObject::new(2);
        let mut q0 = AugClient::new(0, 2, 2);
        q0.begin(AugOp::Scan);
        // First scan.
        assert!(q0.deliver(HReply::View(h.scan())).is_none());
        // Helping write.
        if let Some(HRequest::Update { triples, lwrites }) = q0.pending_request() {
            h.update(0, triples, lwrites);
        } else {
            panic!("expected helping write");
        }
        assert!(q0.deliver(HReply::Ack).is_none());
        // q1 appends a batch before q0's re-scan: forces a retry.
        let mut q1 = AugClient::new(1, 2, 2);
        q1.begin(AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(9)] });
        run_solo(&mut q1, &mut h);
        // q0's second scan mismatches → loop continues.
        assert!(q0.deliver(HReply::View(h.scan())).is_none());
        let outcome = run_solo(&mut q0, &mut h);
        match outcome {
            AugOutcome::Scan(out) => {
                // 2k + 3 with k = 1 concurrent update: 5 steps.
                assert_eq!(out.steps, 5);
                assert_eq!(out.view[0], Value::Int(9));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn helping_reads_return_prefix_chains() {
        // Lemma 3's substrate: all scan results recorded in L-registers
        // are prefix-comparable (H is append-only), so the `last`
        // maximization in Block-Update line 11–15 is well defined.
        let mut h = HObject::new(3);
        // Interleave three processes' Scans and Block-Updates, then
        // inspect every recorded L value: pairwise prefix-comparable.
        let mut clients: Vec<AugClient> =
            (0..3).map(|i| AugClient::new(i, 3, 2)).collect();
        clients[0].begin(AugOp::Scan);
        clients[1].begin(AugOp::BlockUpdate {
            components: vec![0],
            values: vec![Value::Int(1)],
        });
        clients[2].begin(AugOp::BlockUpdate {
            components: vec![1],
            values: vec![Value::Int(2)],
        });
        let mut done = 0;
        let mut guard = 0;
        while done < 3 && guard < 200 {
            guard += 1;
            for c in clients.iter_mut() {
                if let Some(req) = c.pending_request() {
                    let reply = match req {
                        HRequest::Scan => HReply::View(h.scan()),
                        HRequest::Update { triples, lwrites } => {
                            h.update(c.process(), triples, lwrites);
                            HReply::Ack
                        }
                    };
                    if c.deliver(reply).is_some() {
                        done += 1;
                    }
                }
            }
        }
        let view = h.scan();
        let mut recorded: Vec<crate::hbase::TriplesView> = Vec::new();
        for writer in 0..3 {
            for target in 0..3 {
                for index in 0..4 {
                    if let Some(v) = view.read_lreg(writer, target, index) {
                        recorded.push(v.clone());
                    }
                }
            }
        }
        assert!(!recorded.is_empty(), "some helping writes happened");
        for a in &recorded {
            for b in &recorded {
                assert!(
                    crate::hbase::is_prefix(a, b) || crate::hbase::is_prefix(b, a),
                    "recorded views must form a chain"
                );
            }
        }
    }

    #[test]
    fn block_update_count_tracks_completions() {
        let mut h = HObject::new(1);
        let mut c = AugClient::new(0, 1, 2);
        assert_eq!(c.completed_block_updates(), 0);
        for round in 0..3 {
            c.begin(AugOp::BlockUpdate {
                components: vec![round % 2],
                values: vec![Value::Int(round as i64)],
            });
            run_solo(&mut c, &mut h);
            assert_eq!(c.completed_block_updates(), round + 1);
        }
    }

    #[test]
    #[should_panic(expected = "components must be distinct")]
    fn duplicate_components_rejected() {
        let mut c = AugClient::new(0, 2, 3);
        c.begin(AugOp::BlockUpdate {
            components: vec![1, 1],
            values: vec![Value::Int(1), Value::Int(2)],
        });
    }

    #[test]
    #[should_panic(expected = "operation already in progress")]
    fn overlapping_operations_rejected() {
        let mut c = AugClient::new(0, 2, 3);
        c.begin(AugOp::Scan);
        c.begin(AugOp::Scan);
    }
}
