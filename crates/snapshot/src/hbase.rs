//! The single-writer snapshot object `H` of the real system (paper
//! §3.2) and the views obtained by scanning it.
//!
//! Component `i` of `H` belongs to real process `q_i` and records:
//!
//! * an append-only list of update [`Triple`]s `(component, value,
//!   timestamp)`, one batch per Block-Update — the "real" content of H;
//! * the helping registers `L_{i,j}[b]`, which the paper folds into
//!   `H[i]` as an extra field. `L_{i,j}[b]` is written only by `q_i` and
//!   read only by `q_j`; we store the *last written value* per `(j, b)`
//!   key, which is exactly register semantics.
//!
//! The prefix relation of Observation 1 and the scan-equality test in
//! `Scan`'s repeat-loop are on the **triples part only**: every update
//! performed on line 4 of `Block-Update` appends triples, while the
//! helping writes (Scan lines 5–6, Block-Update lines 6–7) only change
//! register values. Lemma 2 counts only triple-appending updates as the
//! cause of `Scan` retries, which forces this reading — otherwise two
//! concurrent `Scan`s could block each other with helping writes
//! forever.
//!
//! `L` registers store only the triples part of a scan result
//! ([`TriplesView`]): the readers use them solely for prefix comparisons
//! and `Get-View`, both of which are triples-based.

use crate::timestamp::Timestamp;
use rsim_smr::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An update triple `(component of M, value, timestamp)` (paper §3.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Triple {
    /// The component of the augmented snapshot `M` being updated.
    pub component: usize,
    /// The value written.
    pub value: Value,
    /// The Block-Update's vector timestamp.
    pub ts: Timestamp,
}

/// The triples part of a scan of `H`: one triple list per real process.
pub type TriplesView = Vec<Vec<Triple>>;

/// A helping-register write: set `L_{writer, target}[index] = view`.
///
/// The recorded view is reference-counted: a helping step records the
/// same scan result into up to `f - 1` registers, and `H` is cloned on
/// every atomic scan, so sharing keeps the model polynomial.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LWrite {
    /// The reader the record helps (`j` in `L_{i,j}`).
    pub target: usize,
    /// The array index `b` (the reader's Block-Update count).
    pub index: usize,
    /// The recorded scan result (triples part).
    pub view: Arc<TriplesView>,
}

/// One component of `H`, owned by a single real process.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HComponent {
    /// Append-only triple list (one batch per Block-Update).
    pub triples: Vec<Triple>,
    /// Helping registers: `(target, index) -> last written view`.
    pub lregs: BTreeMap<(usize, usize), Arc<TriplesView>>,
}

/// The full result of an atomic scan of `H`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HView {
    components: Vec<HComponent>,
}

impl HView {
    /// The triples part, used for all prefix/equality logic.
    pub fn triples(&self) -> TriplesView {
        self.components.iter().map(|c| c.triples.clone()).collect()
    }

    /// Reads register `L_{writer, target}[index]` out of the view;
    /// ⊥ (None) if never written.
    pub fn read_lreg(&self, writer: usize, target: usize, index: usize) -> Option<&TriplesView> {
        self.components[writer]
            .lregs
            .get(&(target, index))
            .map(|v| v.as_ref())
    }

    /// `#h_j` for every `j`: the number of Block-Updates by `q_j`
    /// recorded in the view (= number of distinct timestamps in
    /// component `j`, which is the number of batches appended).
    pub fn counts(&self) -> Vec<usize> {
        self.components
            .iter()
            .map(|c| count_batches(&c.triples))
            .collect()
    }

    /// Number of real processes.
    pub fn width(&self) -> usize {
        self.components.len()
    }
}

/// Counts the distinct timestamps in an append-only triple list. Each
/// Block-Update appends one batch sharing a timestamp, so batches are
/// contiguous runs.
pub fn count_batches(triples: &[Triple]) -> usize {
    let mut count = 0;
    let mut last: Option<&Timestamp> = None;
    for t in triples {
        if last != Some(&t.ts) {
            count += 1;
            last = Some(&t.ts);
        }
    }
    count
}

/// Per-process Block-Update counts of a triples view (`#h`).
pub fn view_counts(view: &TriplesView) -> Vec<usize> {
    view.iter().map(|t| count_batches(t)).collect()
}

/// Is `a` a (componentwise) prefix of `b`? (Observation 1.)
pub fn is_prefix(a: &TriplesView, b: &TriplesView) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() <= y.len() && x[..] == y[..x.len()]
        })
}

/// Is `a` a *proper* prefix of `b`?
pub fn is_proper_prefix(a: &TriplesView, b: &TriplesView) -> bool {
    is_prefix(a, b) && a.iter().zip(b).any(|(x, y)| x.len() < y.len())
}

/// `Get-View` (Algorithm 2): for each component `j` of `M`, the value
/// with the lexicographically largest timestamp among all triples with
/// component `j`, or ⊥.
pub fn get_view(view: &TriplesView, m: usize) -> Vec<Value> {
    let mut out = vec![Value::Nil; m];
    let mut best: Vec<Option<&Timestamp>> = vec![None; m];
    for comp in view {
        for t in comp {
            if t.component >= m {
                continue;
            }
            if best[t.component].is_none() || Some(&t.ts) > best[t.component] {
                best[t.component] = Some(&t.ts);
                out[t.component] = t.value.clone();
            }
        }
    }
    out
}

/// The shared single-writer snapshot `H`.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct HObject {
    components: Vec<HComponent>,
}

impl HObject {
    /// A fresh `H` for `f` real processes (all components ⊥).
    pub fn new(f: usize) -> Self {
        HObject { components: vec![HComponent::default(); f] }
    }

    /// Number of real processes.
    pub fn width(&self) -> usize {
        self.components.len()
    }

    /// Atomic scan: the current view of all components.
    pub fn scan(&self) -> HView {
        HView { components: self.components.clone() }
    }

    /// Atomic update by process `i`: appends `triples` (a Block-Update
    /// batch, possibly empty) and performs the register writes
    /// `lwrites` on `H[i]`'s L field.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn update(&mut self, i: usize, triples: Vec<Triple>, lwrites: Vec<LWrite>) {
        let comp = &mut self.components[i];
        comp.triples.extend(triples);
        for w in lwrites {
            comp.lregs.insert((w.target, w.index), w.view);
        }
    }

    /// Direct access to the triples content (diagnostics).
    pub fn triples(&self) -> TriplesView {
        self.components.iter().map(|c| c.triples.clone()).collect()
    }
}

impl fmt::Debug for HObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            writeln!(f, "H[{i}]: {} triples, {} lregs", c.triples.len(), c.lregs.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[u32]) -> Timestamp {
        Timestamp::new(v.to_vec())
    }

    fn triple(c: usize, v: i64, t: &[u32]) -> Triple {
        Triple { component: c, value: Value::Int(v), ts: ts(t) }
    }

    #[test]
    fn scan_reflects_updates() {
        let mut h = HObject::new(2);
        h.update(0, vec![triple(0, 1, &[1, 0])], vec![]);
        let view = h.scan();
        assert_eq!(view.counts(), vec![1, 0]);
        assert_eq!(view.triples()[0].len(), 1);
    }

    #[test]
    fn count_batches_groups_by_timestamp() {
        let list = vec![
            triple(0, 1, &[1, 0]),
            triple(1, 2, &[1, 0]), // same batch
            triple(0, 3, &[2, 0]), // new batch
        ];
        assert_eq!(count_batches(&list), 2);
    }

    #[test]
    fn prefix_relation() {
        let mut h = HObject::new(2);
        h.update(0, vec![triple(0, 1, &[1, 0])], vec![]);
        let a = h.scan().triples();
        h.update(1, vec![triple(1, 2, &[1, 1])], vec![]);
        let b = h.scan().triples();
        assert!(is_prefix(&a, &b));
        assert!(is_proper_prefix(&a, &b));
        assert!(!is_prefix(&b, &a));
        assert!(is_prefix(&a, &a));
        assert!(!is_proper_prefix(&a, &a));
    }

    #[test]
    fn observation_1_incomparable_views() {
        // Two views where each has content the other lacks: neither is a
        // prefix of the other.
        let a: TriplesView = vec![vec![triple(0, 1, &[1, 0])], vec![]];
        let b: TriplesView = vec![vec![], vec![triple(0, 2, &[0, 1])]];
        assert!(!is_prefix(&a, &b));
        assert!(!is_prefix(&b, &a));
    }

    #[test]
    fn get_view_takes_largest_timestamp() {
        let view: TriplesView = vec![
            vec![triple(0, 10, &[1, 0])],
            vec![triple(0, 20, &[1, 1]), triple(1, 30, &[1, 1])],
        ];
        assert_eq!(
            get_view(&view, 3),
            vec![Value::Int(20), Value::Int(30), Value::Nil]
        );
    }

    #[test]
    fn lregs_have_register_semantics() {
        let mut h = HObject::new(2);
        let v1: TriplesView = vec![vec![], vec![]];
        let v2: TriplesView = vec![vec![triple(0, 1, &[1, 0])], vec![]];
        h.update(0, vec![], vec![LWrite { target: 1, index: 0, view: Arc::new(v1) }]);
        h.update(
            0,
            vec![],
            vec![LWrite { target: 1, index: 0, view: Arc::new(v2.clone()) }],
        );
        let view = h.scan();
        assert_eq!(view.read_lreg(0, 1, 0), Some(&v2));
        assert_eq!(view.read_lreg(0, 1, 5), None);
        // L writes do not change the triples part.
        assert_eq!(view.counts(), vec![0, 0]);
    }

    #[test]
    fn empty_update_is_invisible_to_triples() {
        let mut h = HObject::new(1);
        let before = h.scan().triples();
        h.update(0, vec![], vec![]);
        assert_eq!(before, h.scan().triples());
    }
}
