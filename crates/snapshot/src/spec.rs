//! The §3.1/§3.3 specification of the augmented snapshot, machine-
//! checked on concrete executions.
//!
//! From a finished [`RealSystem`] run we rebuild the linearization of
//! §3.3 ("Linearization Points"):
//!
//! * a complete `Scan` linearizes at its last scan of `H`;
//! * an `Update` to component `j` with timestamp `t` linearizes at the
//!   first point where `H` contains a triple with component `j` and
//!   timestamp `t' ⪰ t`; simultaneous Updates are ordered by timestamp,
//!   then component.
//!
//! [`check`] then verifies, on the actual execution:
//!
//! * **Corollary 15** — every `Scan` returns, for each component, the
//!   value of the last linearized `Update` before it;
//! * **Lemma 11** — the Updates of an atomic `Block-Update` linearize
//!   consecutively at its line-4 update of `H`;
//! * **Lemma 12** — every Update linearizes within its operation's
//!   execution interval;
//! * **Lemma 19** (+ §3.1 spec) — an atomic `Block-Update` returns the
//!   contents of `M` at a point `T` after the previous atomic
//!   Block-Update's window, with no `Scan` and only foreign non-atomic
//!   Updates linearized between `T` and its first Update;
//! * **Theorem 20** — a `Block-Update` by `q_i` yields only if a
//!   lower-id process appended triples during its execution interval;
//! * **Lemma 2** — step counts: 6 per `Block-Update` (5 on yield),
//!   `≤ 2k + 3` per `Scan` with `k` concurrent foreign appends;
//! * **Lemma 9** — all Block-Update timestamps are distinct.

use crate::client::AugOutcome;
use crate::hbase::Triple;
use crate::real::{HEvent, HEventKind, RealSystem};
use crate::timestamp::Timestamp;
use rsim_smr::value::Value;

/// A linearized high-level operation on `M`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinOp {
    /// A linearized `M.Scan`.
    Scan {
        /// The scanning real process.
        pid: usize,
        /// Linearization time (H-event time of its last scan).
        time: usize,
        /// The view it returned.
        view: Vec<Value>,
        /// Index into the oplog.
        op_index: usize,
    },
    /// A linearized `M.Update` (part of some Block-Update).
    Update {
        /// The updating real process.
        pid: usize,
        /// The component of `M` updated.
        component: usize,
        /// The value written.
        value: Value,
        /// The Block-Update's timestamp.
        ts: Timestamp,
        /// Linearization time (an H-event time).
        time: usize,
        /// Index into the oplog, if the Block-Update completed.
        op_index: Option<usize>,
        /// Whether the Block-Update was atomic (completed without Y).
        atomic: bool,
    },
}

impl LinOp {
    /// The linearization time.
    pub fn time(&self) -> usize {
        match self {
            LinOp::Scan { time, .. } | LinOp::Update { time, .. } => *time,
        }
    }

    /// The acting process.
    pub fn pid(&self) -> usize {
        match self {
            LinOp::Scan { pid, .. } | LinOp::Update { pid, .. } => *pid,
        }
    }
}

/// One Block-Update batch gathered from the oplog or (if incomplete)
/// from the raw event log.
#[derive(Clone, Debug)]
struct Batch {
    pid: usize,
    ts: Timestamp,
    components: Vec<usize>,
    values: Vec<Value>,
    atomic: bool,
    op_index: Option<usize>,
}

fn gather_batches(real: &RealSystem) -> Vec<Batch> {
    let mut batches = Vec::new();
    for (op_index, rec) in real.oplog().iter().enumerate() {
        if let AugOutcome::BlockUpdate(b) = &rec.outcome {
            batches.push(Batch {
                pid: rec.pid,
                ts: b.ts.clone(),
                components: b.components.clone(),
                values: b.values.clone(),
                atomic: b.result.is_some(),
                op_index: Some(op_index),
            });
        }
    }
    // Incomplete Block-Updates that already appended triples: their
    // Updates are linearized too (they are in H), as non-atomic.
    for event in real.log() {
        if let HEventKind::Update { triples, .. } = &event.kind {
            if triples.is_empty() {
                continue;
            }
            let ts = &triples[0].ts;
            if batches.iter().any(|b| b.pid == event.pid && &b.ts == ts) {
                continue;
            }
            batches.push(Batch {
                pid: event.pid,
                ts: ts.clone(),
                components: triples.iter().map(|t| t.component).collect(),
                values: triples.iter().map(|t| t.value.clone()).collect(),
                atomic: false,
                op_index: None,
            });
        }
    }
    batches
}

/// Computes, for every `(component, ts)` pair of every batch, the
/// linearization time: the time of the first H-event after which `H`
/// contains a triple with that component and a timestamp `⪰ ts`.
fn update_lin_times(log: &[HEvent], batches: &[Batch]) -> Vec<Vec<usize>> {
    let mut times: Vec<Vec<Option<usize>>> =
        batches.iter().map(|b| vec![None; b.components.len()]).collect();
    let mut appended: Vec<Triple> = Vec::new();
    for event in log {
        if let HEventKind::Update { triples, .. } = &event.kind {
            if triples.is_empty() {
                continue;
            }
            appended.extend(triples.iter().cloned());
            for (bi, batch) in batches.iter().enumerate() {
                for (ci, &component) in batch.components.iter().enumerate() {
                    if times[bi][ci].is_some() {
                        continue;
                    }
                    let covered = triples
                        .iter()
                        .any(|t| t.component == component && t.ts >= batch.ts);
                    if covered {
                        times[bi][ci] = Some(event.time);
                    }
                }
            }
        }
    }
    times
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|t| t.expect("every appended update is eventually covered"))
                .collect()
        })
        .collect()
}

/// Builds the §3.3 linearization of a finished run.
pub fn linearize(real: &RealSystem) -> Vec<LinOp> {
    let batches = gather_batches(real);
    let times = update_lin_times(real.log(), &batches);
    let mut ops: Vec<LinOp> = Vec::new();
    for (bi, batch) in batches.iter().enumerate() {
        for (ci, (&component, value)) in
            batch.components.iter().zip(&batch.values).enumerate()
        {
            ops.push(LinOp::Update {
                pid: batch.pid,
                component,
                value: value.clone(),
                ts: batch.ts.clone(),
                time: times[bi][ci],
                op_index: batch.op_index,
                atomic: batch.atomic,
            });
        }
    }
    for (op_index, rec) in real.oplog().iter().enumerate() {
        if let AugOutcome::Scan(s) = &rec.outcome {
            ops.push(LinOp::Scan {
                pid: rec.pid,
                time: rec.end,
                view: s.view.clone(),
                op_index,
            });
        }
    }
    // Scans occupy scan events, updates occupy update events; times
    // never collide across kinds. Simultaneous updates are ordered by
    // timestamp then component (§3.3).
    ops.sort_by(|a, b| {
        a.time().cmp(&b.time()).then_with(|| match (a, b) {
            (
                LinOp::Update { ts: ta, component: ca, .. },
                LinOp::Update { ts: tb, component: cb, .. },
            ) => ta.cmp(tb).then(ca.cmp(cb)),
            _ => std::cmp::Ordering::Equal,
        })
    });
    ops
}

/// Position of an atomic Block-Update in the linearization: its
/// returned view equals the contents after `lin[..t]`, no `Scan` and
/// only foreign non-atomic Updates linearize in `lin[t..z]`, and `z`
/// is the index of its first Update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AtomicWindow {
    /// Index of the Block-Update in the oplog.
    pub op_index: usize,
    /// The `T` point: the view equals the contents after `lin[..t]`.
    pub t: usize,
    /// Index in `lin` of the Block-Update's first Update.
    pub z: usize,
    /// The Block-Update's timestamp.
    pub ts: Timestamp,
}

/// Computes the window of every atomic Block-Update (Lemmas 16–19): the
/// latest valid `T` position for each. Returns `None` for a run that
/// violates the specification (no valid window exists for some atomic
/// Block-Update).
pub fn atomic_windows(real: &RealSystem, m: usize, lin: &[LinOp]) -> Option<Vec<AtomicWindow>> {
    let mut windows = Vec::new();
    for (op_index, rec) in real.oplog().iter().enumerate() {
        let AugOutcome::BlockUpdate(b) = &rec.outcome else { continue };
        let Some(returned_view) = &b.result else { continue };
        let z = lin.iter().position(|op| {
            matches!(op, LinOp::Update { op_index: Some(oi), .. } if *oi == op_index)
        })?;
        let z_prev = lin[..z]
            .iter()
            .rposition(|op| matches!(op, LinOp::Update { atomic: true, .. }));
        let lower = z_prev.map_or(0, |i| i + 1);
        let mut found = None;
        for t in (lower..=z).rev() {
            if contents_after(lin, t, m) != *returned_view {
                continue;
            }
            let gap_ok = lin[t..z].iter().all(|op| match op {
                LinOp::Scan { .. } => false,
                LinOp::Update { atomic, pid, .. } => !*atomic && *pid != rec.pid,
            });
            if gap_ok {
                found = Some(t);
                break;
            }
        }
        windows.push(AtomicWindow { op_index, t: found?, z, ts: b.ts.clone() });
    }
    Some(windows)
}

/// Projects a linearization onto the pre-flight analyzer's event
/// alphabet ([`rsim_smr::analyze::LinEvent`]). Each Block-Update —
/// identified by its `(pid, timestamp)` pair — becomes one numeric
/// batch id, so `analyze::check_block_update_windows` can certify the
/// contiguity of every atomic batch's window from the linearization
/// alone, independently of [`atomic_windows`]'s own search.
pub fn lin_events(lin: &[LinOp]) -> Vec<rsim_smr::analyze::LinEvent> {
    use rsim_smr::analyze::LinEvent;
    use rsim_smr::process::ProcessId;
    let mut batches: Vec<(usize, Timestamp)> = Vec::new();
    lin.iter()
        .map(|op| match op {
            LinOp::Scan { pid, time, .. } => {
                LinEvent::Scan { pid: ProcessId(*pid), time: *time as u64 }
            }
            LinOp::Update { pid, component, ts, time, atomic, .. } => {
                let key = (*pid, ts.clone());
                let batch = match batches.iter().position(|b| *b == key) {
                    Some(i) => i as u64,
                    None => {
                        batches.push(key);
                        (batches.len() - 1) as u64
                    }
                };
                LinEvent::Update {
                    pid: ProcessId(*pid),
                    component: *component,
                    batch,
                    atomic: *atomic,
                    time: *time as u64,
                }
            }
        })
        .collect()
}

/// The result of checking a run against the specification.
#[derive(Clone, Debug)]
pub struct SpecReport {
    /// The linearization that was checked.
    pub lin: Vec<LinOp>,
    /// All specification violations found (empty = the run satisfies
    /// the augmented-snapshot specification).
    pub errors: Vec<String>,
    /// Number of atomic Block-Updates.
    pub atomic_block_updates: usize,
    /// Number of yielded Block-Updates.
    pub yielded_block_updates: usize,
    /// Number of completed Scans.
    pub scans: usize,
}

impl SpecReport {
    /// Did the run satisfy the specification?
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Replays `lin[..k]` and returns the contents of `M` after it.
fn contents_after(lin: &[LinOp], k: usize, m: usize) -> Vec<Value> {
    let mut contents = vec![Value::Nil; m];
    for op in &lin[..k] {
        if let LinOp::Update { component, value, .. } = op {
            contents[*component] = value.clone();
        }
    }
    contents
}

/// Checks a finished run of `real` (an m-component augmented snapshot)
/// against the §3 specification. See the module docs for the list of
/// checked lemmas.
pub fn check(real: &RealSystem, m: usize) -> SpecReport {
    let lin = linearize(real);
    let mut errors = Vec::new();

    // --- Corollary 15: scans see the latest linearized updates. ---
    let mut contents = vec![Value::Nil; m];
    for op in &lin {
        match op {
            LinOp::Update { component, value, .. } => {
                contents[*component] = value.clone();
            }
            LinOp::Scan { view, pid, time, .. } => {
                if view != &contents {
                    errors.push(format!(
                        "Corollary 15 violated: scan by q{pid} at t={time} returned \
                         {view:?} but contents were {contents:?}"
                    ));
                }
            }
        }
    }

    // --- Lemma 9: Block-Update timestamps are unique. ---
    {
        let mut batch_keys: Vec<(usize, &Timestamp)> = Vec::new();
        for op in &lin {
            if let LinOp::Update { pid, ts, component, .. } = op {
                if batch_keys.iter().any(|(p, t)| *t == ts && *p != *pid) {
                    errors.push(format!(
                        "Lemma 9 violated: timestamp {ts:?} used by two processes \
                         (component {component})"
                    ));
                }
                batch_keys.push((*pid, ts));
            }
        }
    }

    // --- Lemma 11: atomic Block-Updates linearize consecutively at one
    // point, ordered by component. ---
    let mut atomic_count = 0;
    let mut yield_count = 0;
    let mut scan_count = 0;
    for (op_index, rec) in real.oplog().iter().enumerate() {
        match &rec.outcome {
            AugOutcome::Scan(_) => scan_count += 1,
            AugOutcome::BlockUpdate(b) => {
                let positions: Vec<usize> = lin
                    .iter()
                    .enumerate()
                    .filter(|(_, op)| {
                        matches!(op, LinOp::Update { op_index: Some(oi), .. } if *oi == op_index)
                    })
                    .map(|(i, _)| i)
                    .collect();
                if positions.len() != b.components.len() {
                    errors.push(format!(
                        "Block-Update #{op_index}: expected {} linearized updates, \
                         found {}",
                        b.components.len(),
                        positions.len()
                    ));
                    continue;
                }
                // Lemma 12: every update within the execution interval.
                for &p in &positions {
                    let t = lin[p].time();
                    if t < rec.start || t > rec.end {
                        errors.push(format!(
                            "Lemma 12 violated: update of Block-Update #{op_index} \
                             linearized at t={t} outside [{}, {}]",
                            rec.start, rec.end
                        ));
                    }
                }
                if b.result.is_some() {
                    atomic_count += 1;
                    let consecutive =
                        positions.windows(2).all(|w| w[1] == w[0] + 1);
                    if !consecutive {
                        errors.push(format!(
                            "Lemma 11 violated: atomic Block-Update #{op_index} \
                             updates not consecutive: {positions:?}"
                        ));
                    }
                    let same_time = positions
                        .windows(2)
                        .all(|w| lin[w[0]].time() == lin[w[1]].time());
                    if !same_time {
                        errors.push(format!(
                            "Lemma 11 violated: atomic Block-Update #{op_index} \
                             updates at different H-events"
                        ));
                    }
                } else {
                    yield_count += 1;
                    // Theorem 20: yield requires a lower-id append in
                    // the execution interval.
                    let lower_append = real.log().iter().any(|e| {
                        e.pid < rec.pid
                            && e.time >= rec.start
                            && e.time <= rec.end
                            && e.kind.appends_triples()
                    });
                    if !lower_append {
                        errors.push(format!(
                            "Theorem 20 violated: Block-Update #{op_index} by \
                             q{} yielded with no lower-id append in [{}, {}]",
                            rec.pid, rec.start, rec.end
                        ));
                    }
                }
            }
        }
    }

    // --- §3.1 + Lemmas 17/18/19: atomic Block-Update windows. ---
    match atomic_windows(real, m, &lin) {
        None => errors.push(
            "Lemma 19 violated: some atomic Block-Update has no valid \
             linearization point T"
                .to_string(),
        ),
        Some(windows) => {
            // Lemma 17: no Scan is linearized inside any window (the
            // window finder enforces it; re-assert for reporting).
            for w in &windows {
                for op in &lin[w.t..w.z] {
                    if matches!(op, LinOp::Scan { .. }) {
                        errors.push(format!(
                            "Lemma 17 violated: a Scan is linearized inside the \
                             window of Block-Update #{}",
                            w.op_index
                        ));
                    }
                }
            }
            // Lemma 18: windows are pairwise disjoint. A window is the
            // interval (t, z] in linearization positions.
            let mut sorted = windows.clone();
            sorted.sort_by_key(|w| w.z);
            for pair in sorted.windows(2) {
                if pair[1].t < pair[0].z {
                    errors.push(format!(
                        "Lemma 18 violated: windows of Block-Updates #{} and #{} \
                         overlap ((t={}, z={}] vs (t={}, z={}])",
                        pair[0].op_index,
                        pair[1].op_index,
                        pair[0].t,
                        pair[0].z,
                        pair[1].t,
                        pair[1].z
                    ));
                }
            }
        }
    }

    // --- Lemma 2: step counts. ---
    for (op_index, rec) in real.oplog().iter().enumerate() {
        match &rec.outcome {
            AugOutcome::BlockUpdate(b) => {
                let expected = if b.result.is_some() { 6 } else { 5 };
                if b.steps != expected {
                    errors.push(format!(
                        "Lemma 2 violated: Block-Update #{op_index} took {} steps, \
                         expected {expected}",
                        b.steps
                    ));
                }
            }
            AugOutcome::Scan(s) => {
                let k = real
                    .log()
                    .iter()
                    .filter(|e| {
                        e.pid != rec.pid
                            && e.time >= rec.start
                            && e.time <= rec.end
                            && e.kind.appends_triples()
                    })
                    .count();
                if s.steps > 2 * k + 3 {
                    errors.push(format!(
                        "Lemma 2 violated: Scan #{op_index} took {} steps with \
                         k = {k} concurrent appends (bound {})",
                        s.steps,
                        2 * k + 3
                    ));
                }
            }
        }
    }

    SpecReport {
        lin,
        errors,
        atomic_block_updates: atomic_count,
        yielded_block_updates: yield_count,
        scans: scan_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::AugOp;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Drives `f` processes, each performing `ops_per_proc` random
    /// operations, with a random H-step interleaving.
    fn random_run(f: usize, m: usize, ops_per_proc: usize, seed: u64) -> RealSystem {
        let mut rs = RealSystem::new(f, m);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut remaining = vec![ops_per_proc; f];
        let mut counter = 0i64;
        loop {
            let live: Vec<usize> = (0..f)
                .filter(|&p| remaining[p] > 0 || !rs.is_idle(p))
                .collect();
            if live.is_empty() {
                break;
            }
            let pid = live[rng.gen_range(0..live.len())];
            if rs.is_idle(pid) {
                remaining[pid] -= 1;
                counter += 1;
                let op = if rng.gen_bool(0.5) {
                    AugOp::Scan
                } else {
                    let r = rng.gen_range(1..=m);
                    let mut comps: Vec<usize> = (0..m).collect();
                    for i in (1..comps.len()).rev() {
                        comps.swap(i, rng.gen_range(0..=i));
                    }
                    comps.truncate(r);
                    let values = comps
                        .iter()
                        .map(|_| {
                            counter += 1;
                            Value::Int(counter)
                        })
                        .collect();
                    AugOp::BlockUpdate { components: comps, values }
                };
                rs.begin(pid, op);
            }
            rs.step(pid);
        }
        rs
    }

    #[test]
    fn sequential_run_satisfies_spec() {
        let mut rs = RealSystem::new(2, 2);
        rs.begin(0, AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(1)] });
        rs.run_to_completion(0);
        rs.begin(1, AugOp::Scan);
        rs.run_to_completion(1);
        let report = check(&rs, 2);
        assert!(report.is_ok(), "errors: {:?}", report.errors);
        assert_eq!(report.atomic_block_updates, 1);
        assert_eq!(report.scans, 1);
    }

    #[test]
    fn random_runs_satisfy_spec() {
        for seed in 0..30 {
            let f = 2 + (seed as usize % 3); // 2..=4
            let m = 1 + (seed as usize % 3); // 1..=3
            let rs = random_run(f, m, 4, seed);
            let report = check(&rs, m);
            assert!(
                report.is_ok(),
                "seed {seed} f={f} m={m}: {:?}",
                report.errors
            );
        }
    }

    #[test]
    fn contention_produces_yields_and_spec_holds() {
        // Heavy Block-Update contention among 4 processes: some yields
        // must appear, and the spec must still hold.
        let mut total_yields = 0;
        for seed in 100..120 {
            let rs = random_run(4, 2, 6, seed);
            let report = check(&rs, 2);
            assert!(report.is_ok(), "seed {seed}: {:?}", report.errors);
            total_yields += report.yielded_block_updates;
        }
        assert!(total_yields > 0, "expected at least one yield under contention");
    }

    #[test]
    fn checker_rejects_corrupted_scan_views() {
        // Vacuity guard: corrupt a recorded Scan view; the Corollary 15
        // clause must fire.
        let mut rs = RealSystem::new(2, 2);
        rs.begin(0, AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(1)] });
        rs.run_to_completion(0);
        rs.begin(1, AugOp::Scan);
        rs.run_to_completion(1);
        for rec in rs.oplog_mut() {
            if let AugOutcome::Scan(s) = &mut rec.outcome {
                s.view[0] = Value::Int(999);
            }
        }
        let report = check(&rs, 2);
        assert!(!report.is_ok(), "corrupted scan view must be caught");
        assert!(report.errors.iter().any(|e| e.contains("Corollary 15")));
    }

    #[test]
    fn checker_rejects_corrupted_block_update_views() {
        // Corrupt an atomic Block-Update's returned view; the Lemma 19
        // window search must fail.
        let mut rs = RealSystem::new(2, 2);
        rs.begin(0, AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(1)] });
        rs.run_to_completion(0);
        rs.begin(1, AugOp::BlockUpdate { components: vec![1], values: vec![Value::Int(2)] });
        rs.run_to_completion(1);
        for rec in rs.oplog_mut() {
            if rec.pid == 1 {
                if let AugOutcome::BlockUpdate(b) = &mut rec.outcome {
                    b.result = Some(vec![Value::Int(777), Value::Int(777)]);
                }
            }
        }
        let report = check(&rs, 2);
        assert!(!report.is_ok(), "corrupted returned view must be caught");
        assert!(report.errors.iter().any(|e| e.contains("Lemma 19")));
    }

    #[test]
    fn checker_rejects_forged_yields() {
        // Forge a yield on an uncontended Block-Update: Theorem 20's
        // clause must fire (no lower-id append in the interval).
        let mut rs = RealSystem::new(2, 2);
        rs.begin(1, AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(5)] });
        rs.run_to_completion(1);
        for rec in rs.oplog_mut() {
            if let AugOutcome::BlockUpdate(b) = &mut rec.outcome {
                b.result = None;
            }
        }
        let report = check(&rs, 2);
        assert!(!report.is_ok(), "forged yield must be caught");
        assert!(report.errors.iter().any(|e| e.contains("Theorem 20")));
    }

    #[test]
    fn checker_rejects_forged_step_counts() {
        let mut rs = RealSystem::new(1, 1);
        rs.begin(0, AugOp::BlockUpdate { components: vec![0], values: vec![Value::Int(1)] });
        rs.run_to_completion(0);
        for rec in rs.oplog_mut() {
            if let AugOutcome::BlockUpdate(b) = &mut rec.outcome {
                b.steps = 99;
            }
        }
        let report = check(&rs, 1);
        assert!(report.errors.iter().any(|e| e.contains("Lemma 2")));
    }

    #[test]
    fn linearization_is_complete() {
        let rs = random_run(3, 2, 3, 7);
        let report = check(&rs, 2);
        let scans = report
            .lin
            .iter()
            .filter(|o| matches!(o, LinOp::Scan { .. }))
            .count();
        assert_eq!(scans, report.scans);
        // Times are non-decreasing.
        for w in report.lin.windows(2) {
            assert!(w[0].time() <= w[1].time());
        }
    }
}
