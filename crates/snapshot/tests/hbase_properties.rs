//! Property-based tests for the H substrate: the prefix partial order
//! (Observation 1), `Get-View`, batch counting, and timestamp laws.

use proptest::prelude::*;
use rsim_smr::value::Value;
use rsim_snapshot::hbase::{
    count_batches, get_view, is_prefix, is_proper_prefix, HObject, Triple, TriplesView,
};
use rsim_snapshot::timestamp::Timestamp;

/// Strategy: a plausible run of append batches for `f = 2` processes,
/// described as (process, components, value-seed) batches applied in
/// order with per-batch fresh timestamps generated the way the real
/// clients do.
fn batches() -> impl Strategy<Value = Vec<(usize, Vec<usize>, i64)>> {
    proptest::collection::vec(
        (0usize..2, proptest::collection::vec(0usize..3, 1..3), 0i64..100),
        0..8,
    )
}

/// Applies batches to a fresh H, returning the view after every step.
fn apply(batches: &[(usize, Vec<usize>, i64)]) -> (HObject, Vec<TriplesView>) {
    let mut h = HObject::new(2);
    let mut views = vec![h.scan().triples()];
    for (pid, comps, seed) in batches {
        let counts = h.scan().counts();
        let ts = Timestamp::generate(*pid, &counts);
        let mut comps = comps.clone();
        comps.sort_unstable();
        comps.dedup();
        let triples: Vec<Triple> = comps
            .iter()
            .map(|&c| Triple {
                component: c,
                value: Value::Int(*seed + c as i64),
                ts: ts.clone(),
            })
            .collect();
        h.update(*pid, triples, vec![]);
        views.push(h.scan().triples());
    }
    (h, views)
}

proptest! {
    #[test]
    fn scan_results_form_a_chain(bs in batches()) {
        // Observation 1: results of scans are totally ordered by the
        // prefix relation.
        let (_, views) = apply(&bs);
        for i in 0..views.len() {
            for j in i..views.len() {
                prop_assert!(is_prefix(&views[i], &views[j]),
                    "view {i} not a prefix of view {j}");
            }
        }
    }

    #[test]
    fn proper_prefix_is_irreflexive_and_transitive(bs in batches()) {
        let (_, views) = apply(&bs);
        for v in &views {
            prop_assert!(!is_proper_prefix(v, v));
        }
        for w in views.windows(3) {
            if is_proper_prefix(&w[0], &w[1]) && is_proper_prefix(&w[1], &w[2]) {
                prop_assert!(is_proper_prefix(&w[0], &w[2]));
            }
        }
    }

    #[test]
    fn batch_counts_are_monotone_and_additive(bs in batches()) {
        let (_, views) = apply(&bs);
        for w in views.windows(2) {
            for (before_view, after_view) in w[0].iter().zip(w[1].iter()) {
                let before = count_batches(before_view);
                let after = count_batches(after_view);
                prop_assert!(after == before || after == before + 1);
            }
        }
        // Total batches equals the number of applied updates.
        let last = views.last().unwrap();
        let total: usize = (0..2).map(|p| count_batches(&last[p])).sum();
        prop_assert_eq!(total, bs.len());
    }

    #[test]
    fn get_view_matches_sequential_application(bs in batches()) {
        // Get-View of the final H equals naive sequential application
        // of the batches in order (timestamps generated in order are
        // increasing, so "largest timestamp wins" = "last write wins").
        let (h, _) = apply(&bs);
        let m = 3;
        let viewed = get_view(&h.triples(), m);
        let mut expected = vec![Value::Nil; m];
        for (_, comps, seed) in &bs {
            let mut comps = comps.clone();
            comps.sort_unstable();
            comps.dedup();
            for c in comps {
                expected[c] = Value::Int(*seed + c as i64);
            }
        }
        prop_assert_eq!(viewed, expected);
    }

    #[test]
    fn timestamps_in_one_run_are_unique(bs in batches()) {
        // Lemma 9 over generated runs.
        let (h, _) = apply(&bs);
        let mut seen: Vec<Timestamp> = Vec::new();
        for comp in h.triples() {
            let mut last: Option<Timestamp> = None;
            for t in comp {
                if last.as_ref() != Some(&t.ts) {
                    prop_assert!(!seen.contains(&t.ts), "timestamp reuse");
                    seen.push(t.ts.clone());
                    last = Some(t.ts);
                }
            }
        }
    }
}
