//! Differential testing: the model-mode real system and the
//! thread-mode twin execute the *same* client state machines, so on
//! identical sequential operation sequences they must produce
//! identical outcomes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsim_smr::value::Value;
use rsim_snapshot::client::{AugOp, AugOutcome};
use rsim_snapshot::real::RealSystem;
use rsim_snapshot::thread_mode::SharedAug;

fn random_ops(f: usize, m: usize, count: usize, seed: u64) -> Vec<(usize, AugOp)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counter = 0i64;
    (0..count)
        .map(|_| {
            let pid = rng.gen_range(0..f);
            let op = if rng.gen_bool(0.4) {
                AugOp::Scan
            } else {
                let r = rng.gen_range(1..=m);
                let mut comps: Vec<usize> = (0..m).collect();
                for i in (1..comps.len()).rev() {
                    comps.swap(i, rng.gen_range(0..=i));
                }
                comps.truncate(r);
                let values = comps
                    .iter()
                    .map(|_| {
                        counter += 1;
                        Value::Int(counter)
                    })
                    .collect();
                AugOp::BlockUpdate { components: comps, values }
            };
            (pid, op)
        })
        .collect()
}

#[test]
fn model_and_thread_modes_agree_on_sequential_histories() {
    for seed in 0..25 {
        let (f, m) = (2 + (seed as usize % 3), 1 + (seed as usize % 3));
        let ops = random_ops(f, m, 20, seed);
        let mut model = RealSystem::new(f, m);
        let threaded = SharedAug::new(f, m);
        for (pid, op) in ops {
            let model_outcome = {
                model.begin(pid, op.clone());
                model.run_to_completion(pid)
            };
            match (&op, model_outcome) {
                (AugOp::Scan, AugOutcome::Scan(s)) => {
                    assert_eq!(
                        threaded.scan(pid),
                        s.view,
                        "seed {seed}: scan views diverged"
                    );
                }
                (
                    AugOp::BlockUpdate { components, values },
                    AugOutcome::BlockUpdate(b),
                ) => {
                    let t = threaded.block_update(pid, components, values);
                    assert_eq!(t, b.result, "seed {seed}: block-update diverged");
                    // Sequential operations are uncontended → atomic.
                    assert!(b.result.is_some());
                }
                (op, out) => panic!("mismatched op/outcome: {op:?} / {out:?}"),
            }
        }
    }
}

#[test]
fn sequential_block_updates_return_previous_views_in_both_modes() {
    let mut model = RealSystem::new(2, 2);
    let threaded = SharedAug::new(2, 2);
    let mut expected = vec![Value::Nil, Value::Nil];
    for round in 0..10i64 {
        let comps = vec![(round % 2) as usize];
        let vals = vec![Value::Int(round)];
        model.begin(0, AugOp::BlockUpdate {
            components: comps.clone(),
            values: vals.clone(),
        });
        let m_out = match model.run_to_completion(0) {
            AugOutcome::BlockUpdate(b) => b.result,
            other => panic!("{other:?}"),
        };
        let t_out = threaded.block_update(0, &comps, &vals);
        assert_eq!(m_out.as_deref(), Some(expected.as_slice()));
        assert_eq!(t_out.as_deref(), Some(expected.as_slice()));
        expected[(round % 2) as usize] = Value::Int(round);
    }
}
