//! `rsim-protocols`: the concrete protocols Π fed to the revisionist
//! simulation, plus their correctness/brokenness test harnesses.
//!
//! * [`racing`] — phased-racing k-set agreement (the \[16\]/\[47\]-style
//!   family): obstruction-free for every component count `m`; solves
//!   k-set agreement when `m ≥ n − k + 1`; observably broken when `m`
//!   is below the paper's lower bound.
//! * [`approx`] — wait-free round-based midpoint ε-approximate
//!   agreement (the \[9\]-style n-component upper bound), plus a
//!   compressed `m < n` variant used as the under-provisioned Π̃ in the
//!   Theorem 21(1)/Corollary 34 experiments.
//! * [`ladder`] — a provably correct obstruction-free consensus from a
//!   ladder of adopt-commit objects (more registers, easy safety
//!   proof); the reference against which the space-optimal racing
//!   family's fragility is documented.
//! * [`contrarian`] — obstruction-free but *not* 2-obstruction-free:
//!   the hypothesis-violating Π for the x-obstruction-free case
//!   (Lemma 32 needs Π to be x-OF for the direct simulators to
//!   terminate).
//! * [`generated`] — named fixtures from the seeded `gen:` family of
//!   `rsim-smr`: generated bases racing strictly above the bound and
//!   their paper-aware mutants, bridging the hand-written families and
//!   the fuzz harness.
//! * [`illformed`] — a deliberately ill-formed fixture whose four
//!   processes each violate a different paper precondition; the
//!   `rsim-smr::analyze` pre-flight must report every lint code on it.
//! * [`serializable`] — n blind max-writers whose interference graph
//!   is edge-free: the positive fixture for the static interference
//!   analyzer (RS-W010) and the explorer's static seeding.
//!
//! # Example
//!
//! ```
//! use rsim_protocols::racing::racing_system;
//! use rsim_smr::process::ProcessId;
//! use rsim_smr::value::Value;
//!
//! # fn main() -> Result<(), rsim_smr::error::ModelError> {
//! // n = 2, m = 2 (the consensus space bound is tight at m = n).
//! let mut sys = racing_system(2, &[Value::Int(1), Value::Int(2)]);
//! let out = sys.run_solo(ProcessId(0), 100)?;
//! assert_eq!(out, Value::Int(1));
//! # Ok(())
//! # }
//! ```

pub mod approx;
pub mod contrarian;
pub mod generated;
pub mod illformed;
pub mod ladder;
pub mod racing;
pub mod serializable;

pub use approx::{approx_system, compressed_approx_system, MidpointApprox};
pub use contrarian::{contrarian_system, Contrarian};
pub use generated::{generated_mutant_system, generated_system};
pub use ladder::{ladder_system, LadderConsensus};
pub use racing::{racing_system, PhasedRacing};
pub use serializable::{serializable_system, MaxStamp};
