//! Provably correct obstruction-free consensus: a ladder of
//! adopt-commit objects (Gafni's round-based framework).
//!
//! [`PhasedRacing`](crate::racing::PhasedRacing) chases the paper's
//! *space-optimal* upper bound and is (measurably) fragile at the
//! optimum. This module is the opposite trade: a consensus protocol
//! whose agreement is easy to prove and that the exhaustive explorer
//! verifies outright, at the cost of `2·n·R` snapshot components for
//! `R` rounds.
//!
//! Round `r` is one **adopt–commit** object made of two single-writer
//! rows (`A_r[i]`, `B_r[i]` for each process `i`):
//!
//! 1. write `A_r[i] ← v`; scan;
//! 2. if every non-⊥ `A_r` entry equals `v`, write `B_r[i] ← (true, v)`,
//!    else `B_r[i] ← (false, v)`; scan;
//! 3. if all non-⊥ `B_r` entries are `(true, v)` → **commit** `v`
//!    (decide); else if some entry is `(true, w)` → adopt `w`; else
//!    adopt the smallest `B_r` value. Continue to round `r + 1`.
//!
//! *Safety*: if a process commits `v` at round `r`, every other process
//! leaves round `r` with `v` (it saw a `(true, v)` entry, and no
//! `(true, w ≠ v)` entry can exist because two processes writing
//! `true` must both have seen only their own value in `A_r`, which
//! atomic snapshots forbid for distinct values). So all later rounds
//! are univalent and everyone decides `v`.
//!
//! *Obstruction-freedom*: a process running solo from any reachable
//! configuration reaches a round beyond every other process's round
//! within `R` and commits there alone. Rounds are capped at `R`; a
//! process that exhausts the ladder spins (tests and experiments size
//! `R` generously — contention churns rounds only while the adversary
//! keeps interleaving, and each churn consumes a schedule step).

use rsim_smr::process::{ProtocolStep, SnapshotProtocol};
use rsim_smr::value::Value;

/// Phase within a round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    /// About to write `A_r[i]` (after the pending scan).
    WriteA,
    /// About to write `B_r[i]` (the scan decides true/false).
    WriteB,
    /// About to evaluate `B_r` (the scan decides commit/adopt).
    ReadB,
}

/// Ladder consensus protocol state for one process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LadderConsensus {
    /// This process's index (owns `A_r[i]`, `B_r[i]`).
    i: usize,
    /// Number of processes.
    n: usize,
    /// Maximum rounds.
    rounds: usize,
    /// Current round (0-based).
    r: usize,
    /// Current value.
    v: Value,
    stage: Stage,
}

impl LadderConsensus {
    /// Creates the protocol for process `i` of `n` with `rounds` ladder
    /// rounds and the given input.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `rounds == 0`.
    pub fn new(i: usize, n: usize, rounds: usize, input: Value) -> Self {
        assert!(i < n);
        assert!(rounds >= 1);
        LadderConsensus { i, n, rounds, r: 0, v: input, stage: Stage::WriteA }
    }

    /// Total snapshot components used: `2·n·rounds`.
    pub fn total_components(n: usize, rounds: usize) -> usize {
        2 * n * rounds
    }

    fn a_slot(&self, r: usize, i: usize) -> usize {
        2 * self.n * r + i
    }

    fn b_slot(&self, r: usize, i: usize) -> usize {
        2 * self.n * r + self.n + i
    }

    fn a_row<'a>(&self, view: &'a [Value], r: usize) -> Vec<&'a Value> {
        (0..self.n).map(|i| &view[self.a_slot(r, i)]).collect()
    }

    fn b_row<'a>(&self, view: &'a [Value], r: usize) -> Vec<&'a Value> {
        (0..self.n).map(|i| &view[self.b_slot(r, i)]).collect()
    }
}

impl SnapshotProtocol for LadderConsensus {
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
        debug_assert_eq!(view.len(), Self::total_components(self.n, self.rounds));
        match self.stage {
            Stage::WriteA => {
                self.stage = Stage::WriteB;
                ProtocolStep::Update(self.a_slot(self.r, self.i), self.v.clone())
            }
            Stage::WriteB => {
                // The scan shows A_r including our own write.
                let unanimous = self
                    .a_row(view, self.r)
                    .into_iter()
                    .filter(|e| !e.is_nil())
                    .all(|e| *e == self.v);
                self.stage = Stage::ReadB;
                let flag = Value::pair(Value::Bool(unanimous), self.v.clone());
                ProtocolStep::Update(self.b_slot(self.r, self.i), flag)
            }
            Stage::ReadB => {
                let entries: Vec<(bool, &Value)> = self
                    .b_row(view, self.r)
                    .into_iter()
                    .filter_map(|e| {
                        let (flag, v) = e.as_pair()?;
                        Some((flag.as_bool()?, v))
                    })
                    .collect();
                let all_commit_mine =
                    entries.iter().all(|(f, v)| *f && **v == self.v);
                if all_commit_mine && !entries.is_empty() {
                    return ProtocolStep::Output(self.v.clone());
                }
                if let Some((_, w)) = entries.iter().find(|(f, _)| *f) {
                    self.v = (*w).clone();
                } else if let Some((_, w)) =
                    entries.iter().min_by_key(|(_, v)| (*v).clone())
                {
                    self.v = (*w).clone();
                }
                if self.r + 1 < self.rounds {
                    self.r += 1;
                    self.stage = Stage::WriteA;
                    ProtocolStep::Update(self.a_slot(self.r, self.i), self.v.clone())
                } else {
                    // Ladder exhausted: spin harmlessly on our own A
                    // slot (experiments size `rounds` so this is
                    // unreachable).
                    ProtocolStep::Update(self.a_slot(self.r, self.i), self.v.clone())
                }
            }
        }
    }

    fn components(&self) -> usize {
        Self::total_components(self.n, self.rounds)
    }
}

/// Builds an n-process ladder-consensus system with `rounds` rounds.
pub fn ladder_system(inputs: &[Value], rounds: usize) -> rsim_smr::system::System {
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, SnapshotProcess};
    let n = inputs.len();
    let processes: Vec<Box<dyn Process>> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            Box::new(SnapshotProcess::new(
                LadderConsensus::new(i, n, rounds, input.clone()),
                ObjectId(0),
            )) as Box<dyn Process>
        })
        .collect();
    rsim_smr::system::System::new(
        vec![Object::snapshot(LadderConsensus::total_components(n, rounds))],
        processes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_smr::explore::{Explorer, Limits};
    use rsim_smr::process::ProcessId;
    use rsim_smr::sched::{Obstruction, Random};
    use rsim_tasks::agreement::consensus;
    use rsim_tasks::task::ColorlessTask;
    use rsim_tasks::violation::{search_exhaustive, search_random};

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn solo_decides_in_one_round() {
        let mut sys = ladder_system(&ints(&[5, 9]), 4);
        let out = sys.run_solo(ProcessId(0), 100).unwrap();
        assert_eq!(out, Value::Int(5));
        // 3 scans + 2 updates... exactly: scan,updA,scan,updB,scan → 5
        // steps? The ReadB scan outputs without a further update: the
        // trace holds scan/updA/scan/updB/scan+output-on-poll: 6 steps
        // is the upper bound.
        assert!(sys.trace().len() <= 6);
    }

    #[test]
    fn exhaustive_agreement_n2() {
        let inputs = ints(&[1, 2]);
        let sys = ladder_system(&inputs, 3);
        let v = search_exhaustive(
            &sys,
            &inputs,
            &consensus(),
            Limits { max_depth: 40, max_configs: 2_000_000 },
        )
        .unwrap();
        assert!(v.is_none(), "violation found: {v:?}");
    }

    #[test]
    fn exhaustive_solo_termination_n2() {
        let sys = ladder_system(&ints(&[1, 2]), 4);
        let explorer = Explorer::new(Limits { max_depth: 20, max_configs: 200_000 });
        let report = explorer.check_solo_termination(&sys, 60).unwrap();
        assert!(report.is_clean(), "violation: {:?}", report.violation);
    }

    #[test]
    fn random_agreement_n4() {
        let inputs = ints(&[1, 2, 3, 4]);
        let factory = || ladder_system(&ints(&[1, 2, 3, 4]), 16);
        let v = search_random(&factory, &inputs, &consensus(), 300, 5_000, 21);
        assert!(v.is_none(), "violation: {v:?}");
    }

    #[test]
    fn terminates_under_obstruction_adversary() {
        for seed in 0..10 {
            let mut sys = ladder_system(&ints(&[1, 2, 3]), 64);
            let mut sched = Obstruction::new(1, 40, 200, seed);
            sys.run(&mut sched, 500_000).unwrap();
            assert!(sys.all_terminated(), "seed {seed}");
        }
    }

    #[test]
    fn random_runs_terminate_with_agreement() {
        let inputs = ints(&[7, 8, 9]);
        for seed in 0..20 {
            let mut sys = ladder_system(&inputs, 64);
            sys.run(&mut Random::seeded(seed), 200_000).unwrap();
            if sys.all_terminated() {
                let outs: Vec<Value> =
                    sys.outputs().into_iter().map(Option::unwrap).collect();
                consensus().validate(&inputs, &outs).unwrap();
            }
        }
    }

    #[test]
    fn equal_inputs_commit_in_first_round() {
        let inputs = ints(&[3, 3, 3]);
        let mut sys = ladder_system(&inputs, 2);
        sys.run(&mut Random::seeded(5), 100_000).unwrap();
        assert!(sys.all_terminated());
        for out in sys.outputs() {
            assert_eq!(out, Some(Value::Int(3)));
        }
    }

    #[test]
    fn space_cost_formula() {
        assert_eq!(LadderConsensus::total_components(3, 10), 60);
        let sys = ladder_system(&ints(&[1, 2]), 5);
        assert_eq!(sys.space_complexity(), 20);
    }
}
