//! Phased-racing agreement: the x-obstruction-free k-set agreement
//! family fed to the revisionist simulation as Π.
//!
//! The protocol is in the style of the anonymous space-optimal
//! algorithms of Bouzid–Raynal–Sutra \[16\] and Zhu \[47\]: `m` multi-writer
//! snapshot components each hold a `(phase, value)` pair; processes
//! *race* to fill all components with their value, first at phase 1
//! (propose) and then at phase 2 (commit), adopting the lexicographic
//! maximum entry they see.
//!
//! Each component holds a `(round, phase, value)` triple. Rules after
//! each scan (Assumption 1 shape: scan → update/output):
//!
//! 1. If some entry has a strictly larger `(round, phase)` than mine,
//!    adopt it (largest value among entries at that level).
//! 2. If some entry at *my* `(round, phase)` carries a different value,
//!    **escalate**: move to round `r + 1`, phase 1, carrying the
//!    largest value involved. Escalation — never value racing — is what
//!    makes all-equal views exclusive: an all-`(r, ph, v)` view can
//!    only exist if no larger entry was ever written, active processes
//!    that see the conflict stop writing at level `(r, ph)`, and the
//!    at most `n − 1` stale covering writes cannot flip all `m ≥ n`
//!    components to a rival triple.
//! 3. If all `m` components equal my triple: at phase 1, advance to
//!    phase 2; at phase 2, **output** my value.
//! 4. Write my triple over the smallest component (ties: lowest index).
//!
//! Properties (validated by the test suite and the violation searcher):
//!
//! * **Obstruction-free** for any `m ≥ 1`: a solo process escalates
//!   finitely often, then fills all components at phase 1, advances,
//!   fills at phase 2, and decides. Verified by exhaustive
//!   solo-termination checks from all reachable configurations.
//! * **Agreement in practice at `m ≥ n − k + 1`**: hundreds of
//!   randomized schedules produce no violation. However, the exhaustive
//!   explorer *does* find rare adversarial interleavings that violate
//!   agreement even at `m = n` — deciders can blindly overwrite
//!   higher-round entries they never see. This is a deliberate,
//!   documented finding: space-*optimal* obstruction-free agreement is
//!   exactly the research-grade problem of \[16\]/\[47\] (their algorithms
//!   store unbounded history in registers), and our model checker
//!   demonstrates why the naive space-optimal constructions fail. The
//!   provably correct reference consensus lives in
//!   [`crate::ladder`], at the cost of more registers.
//! * **Observably broken when `m` is below the paper's bound**
//!   (Corollary 33): the violation searcher finds disagreement quickly —
//!   this is exactly the protocol family the lower bound says cannot
//!   exist correctly at such `m`, and the revisionist simulation
//!   *extracts* those violations as wait-free f-process
//!   counterexamples. For the reduction, only obstruction-freedom of Π
//!   matters — which holds for every `m`.

use rsim_smr::process::{ProtocolStep, SnapshotProtocol};
use rsim_smr::value::Value;

/// Entry in a component: `(round, phase, value)`; ⊥ is "no entry".
fn parse(entry: &Value) -> Option<(i64, i64, &Value)> {
    let t = entry.as_tuple()?;
    match t {
        [r, ph, v] => Some((r.as_int()?, ph.as_int()?, v)),
        _ => None,
    }
}

fn encode(round: i64, phase: i64, v: &Value) -> Value {
    Value::triple(Value::Int(round), Value::Int(phase), v.clone())
}

/// The phased-racing agreement protocol for one process.
///
/// # Examples
///
/// Solo execution decides the process's own input:
///
/// ```
/// use rsim_protocols::racing::PhasedRacing;
/// use rsim_smr::object::{Object, ObjectId};
/// use rsim_smr::process::{Process, SnapshotProcess};
/// use rsim_smr::system::System;
/// use rsim_smr::value::Value;
///
/// # fn main() -> Result<(), rsim_smr::error::ModelError> {
/// let p = PhasedRacing::new(3, Value::Int(42));
/// let mut sys = System::new(
///     vec![Object::snapshot(3)],
///     vec![Box::new(SnapshotProcess::new(p, ObjectId(0))) as Box<dyn Process>],
/// );
/// let out = sys.run_solo(rsim_smr::process::ProcessId(0), 100)?;
/// assert_eq!(out, Value::Int(42));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PhasedRacing {
    m: usize,
    round: i64,
    phase: i64,
    value: Value,
    escalation: bool,
}

impl PhasedRacing {
    /// Creates the protocol over `m` components with the given input.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize, input: Value) -> Self {
        assert!(m >= 1, "need at least one component");
        PhasedRacing { m, round: 1, phase: 1, value: input, escalation: true }
    }

    /// The escalation-free variant: on a same-level value conflict it
    /// value-races (adopts the larger value at the same level) instead
    /// of escalating the round. The exhaustive explorer finds a
    /// consensus violation for this variant even at `m = n` — kept as a
    /// regression witness for why escalation is needed (and as another
    /// "broken Π" source for the simulation).
    pub fn without_escalation(m: usize, input: Value) -> Self {
        PhasedRacing { escalation: false, ..PhasedRacing::new(m, input) }
    }

    /// The process's current preference.
    pub fn preference(&self) -> &Value {
        &self.value
    }

    /// The process's current round.
    pub fn round(&self) -> i64 {
        self.round
    }

    /// The process's current phase (1 = propose, 2 = commit).
    pub fn phase(&self) -> i64 {
        self.phase
    }
}

impl SnapshotProtocol for PhasedRacing {
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
        debug_assert_eq!(view.len(), self.m);
        let entries: Vec<(i64, i64, &Value)> =
            view.iter().filter_map(parse).collect();
        // 1. Behind the frontier? Adopt the largest entry.
        let frontier = entries
            .iter()
            .max_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
        if let Some(&(r, ph, v)) = frontier {
            if (r, ph) > (self.round, self.phase) {
                self.round = r;
                self.phase = ph;
                self.value = v.clone();
            }
        }
        // 2. Same-level value conflict → escalate (or, in the broken
        // variant, value-race in place).
        let rival = entries
            .iter()
            .filter(|&&(r, ph, v)| {
                r == self.round && ph == self.phase && *v != self.value
            })
            .map(|&(_, _, v)| v)
            .max();
        if let Some(w) = rival {
            if self.escalation {
                self.round += 1;
                self.phase = 1;
            }
            if *w > self.value {
                self.value = w.clone();
            }
        }
        // 2b. Commit deference: at phase 1, a commit (phase-2) entry
        // from an earlier round may be a value some process has already
        // decided (its other copies blindly overwritten); adopt the
        // largest such committed value. Without this rule a process
        // that escalated past round r can commit a rival value while a
        // round-r commit was being decided — the exhaustive explorer
        // found exactly that interleaving.
        if self.escalation && self.phase == 1 {
            let committed = entries
                .iter()
                .filter(|&&(r, ph, _)| ph == 2 && r < self.round)
                .map(|&(_, _, v)| v)
                .max();
            if let Some(w) = committed {
                if *w != self.value {
                    self.value = w.clone();
                }
            }
        }
        // 3. All components equal my triple?
        let mine = encode(self.round, self.phase, &self.value);
        if view.iter().all(|e| *e == mine) {
            if self.phase == 2 {
                return ProtocolStep::Output(self.value.clone());
            }
            self.phase = 2;
        }
        // 4. Write over the smallest component (⊥ is smallest).
        let target = (0..self.m)
            .min_by(|&a, &b| view[a].cmp(&view[b]))
            .expect("m >= 1");
        ProtocolStep::Update(target, encode(self.round, self.phase, &self.value))
    }

    fn components(&self) -> usize {
        self.m
    }
}

/// Builds an n-process phased-racing system over `m` components, with
/// the given inputs. This is the standard Π for the k-set agreement
/// experiments (`m = n − k + x` is the paper's upper bound \[16\]).
pub fn racing_system(m: usize, inputs: &[Value]) -> rsim_smr::system::System {
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, SnapshotProcess};
    let processes = inputs
        .iter()
        .map(|input| {
            Box::new(SnapshotProcess::new(
                PhasedRacing::new(m, input.clone()),
                ObjectId(0),
            )) as Box<dyn Process>
        })
        .collect();
    rsim_smr::system::System::new(vec![Object::snapshot(m)], processes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_smr::explore::{Explorer, Limits};
    use rsim_smr::process::ProcessId;
    use rsim_smr::sched::{Obstruction, Random};
    use rsim_tasks::agreement::{consensus, KSetAgreement};
    use rsim_tasks::task::ColorlessTask;
    use rsim_tasks::violation::{search_exhaustive, search_random};

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn solo_decides_own_input() {
        let mut sys = racing_system(2, &ints(&[5, 9]));
        let out = sys.run_solo(ProcessId(1), 100).unwrap();
        assert_eq!(out, Value::Int(9));
    }

    #[test]
    fn explorer_finds_adversarial_violation_even_at_m_eq_n() {
        // A documented finding: even at m = n = 2 the exhaustive
        // explorer finds a deep adversarial interleaving violating
        // agreement (deciders blindly clobber higher-round entries).
        // Space-optimal OF consensus requires the unbounded-history
        // registers of [16]/[47]; the provably correct reference
        // consensus is `ladder::LadderConsensus`.
        let sys = racing_system(2, &ints(&[1, 2]));
        let v = search_exhaustive(
            &sys,
            &ints(&[1, 2]),
            &consensus(),
            Limits { max_depth: 40, max_configs: 500_000 },
        )
        .unwrap();
        assert!(v.is_some(), "expected the known adversarial interleaving");
        // The violating schedule is long: no *short* schedule breaks it.
        let quick = search_exhaustive(
            &sys,
            &ints(&[1, 2]),
            &consensus(),
            Limits { max_depth: 20, max_configs: 500_000 },
        )
        .unwrap();
        assert!(quick.is_none(), "violations require deep interleavings");
    }

    #[test]
    fn consensus_n2_m2_solo_termination_everywhere() {
        // Obstruction-freedom: from every reachable configuration every
        // solo run terminates.
        let sys = racing_system(2, &ints(&[1, 2]));
        let explorer = Explorer::new(Limits { max_depth: 24, max_configs: 100_000 });
        let report = explorer.check_solo_termination(&sys, 40).unwrap();
        assert!(report.is_clean(), "violation: {:?}", report.violation);
    }

    #[test]
    fn consensus_n3_m3_random_agreement() {
        let inputs = ints(&[1, 2, 3]);
        let factory = || racing_system(3, &ints(&[1, 2, 3]));
        let v = search_random(&factory, &inputs, &consensus(), 300, 3_000, 42);
        assert!(v.is_none(), "violation found: {v:?}");
    }

    #[test]
    fn consensus_below_bound_is_broken() {
        // m = 1 < 2 = bound for n = 2 consensus: the searcher finds
        // disagreement — the concrete face of Corollary 33.
        let inputs = ints(&[1, 2]);
        let sys = racing_system(1, &inputs);
        let v = search_exhaustive(
            &sys,
            &inputs,
            &consensus(),
            Limits { max_depth: 40, max_configs: 500_000 },
        )
        .unwrap();
        assert!(v.is_some(), "expected a violation at m below the bound");
    }

    #[test]
    fn consensus_n3_m2_is_broken() {
        // n = 3 consensus needs 3 registers; m = 2 must fail somewhere.
        let inputs = ints(&[1, 2, 3]);
        let factory = || racing_system(2, &ints(&[1, 2, 3]));
        let v = search_random(&factory, &inputs, &consensus(), 2_000, 2_000, 7);
        assert!(v.is_some(), "expected disagreement with m = 2 < 3");
    }

    #[test]
    fn kset_n3_k2_m2_exhaustive() {
        // 2-set agreement among 3 processes with m = n - k + 1 = 2.
        let inputs = ints(&[1, 2, 3]);
        let sys = racing_system(2, &inputs);
        let v = search_exhaustive(
            &sys,
            &inputs,
            &KSetAgreement::new(2),
            Limits { max_depth: 26, max_configs: 2_000_000 },
        )
        .unwrap();
        assert!(v.is_none(), "violation found: {v:?}");
    }

    #[test]
    fn kset_n4_k2_m3_random() {
        let inputs = ints(&[1, 2, 3, 4]);
        let factory = || racing_system(3, &ints(&[1, 2, 3, 4]));
        let v = search_random(&factory, &inputs, &KSetAgreement::new(2), 200, 4_000, 3);
        assert!(v.is_none(), "violation found: {v:?}");
    }

    #[test]
    fn validity_with_equal_inputs() {
        // All processes share input 7: every output must be 7, even in
        // broken configurations (validity only depends on adoption).
        for m in 1..=3 {
            let inputs = ints(&[7, 7, 7]);
            let factory = move || racing_system(m, &ints(&[7, 7, 7]));
            let v = search_random(&factory, &inputs, &consensus(), 100, 3_000, 11);
            assert!(v.is_none(), "m={m}: {v:?}");
        }
    }

    #[test]
    fn terminates_under_obstruction_scheduler() {
        for seed in 0..10 {
            let mut sys = racing_system(3, &ints(&[1, 2, 3]));
            let mut sched = Obstruction::new(1, 30, 120, seed);
            sys.run(&mut sched, 500_000).unwrap();
            assert!(sys.all_terminated(), "seed {seed} did not terminate");
        }
    }

    #[test]
    fn x_obstruction_freedom_for_x2() {
        // Groups of 2 running alone converge (x-obstruction-freedom).
        for seed in 0..10 {
            let mut sys = racing_system(3, &ints(&[1, 2, 3]));
            let mut sched = Obstruction::new(2, 30, 400, seed);
            sys.run(&mut sched, 500_000).unwrap();
            assert!(sys.all_terminated(), "seed {seed} did not terminate");
        }
    }

    #[test]
    fn random_runs_often_terminate_and_agree() {
        // Under a purely random scheduler the protocol usually
        // terminates quickly; when it does, outputs satisfy consensus.
        let inputs = ints(&[4, 5, 6]);
        let mut terminated = 0;
        for seed in 0..20 {
            let mut sys = racing_system(3, &inputs);
            sys.run(&mut Random::seeded(seed), 50_000).unwrap();
            if sys.all_terminated() {
                terminated += 1;
                let outs: Vec<Value> =
                    sys.outputs().into_iter().map(Option::unwrap).collect();
                assert!(consensus().validate(&inputs, &outs).is_ok());
            }
        }
        assert!(terminated >= 15, "only {terminated}/20 runs terminated");
    }
}
