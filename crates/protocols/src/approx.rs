//! Wait-free ε-approximate agreement (paper §2 task; used by
//! Corollary 34).
//!
//! [`MidpointApprox`] is the classic round-based midpoint protocol over
//! an n-component snapshot where process `i` writes component `i`
//! (cf. the n-register upper bound of Attiya–Lynch–Shavit \[9\]):
//!
//! * round `r`: write `(r, v)` to your component, then scan;
//! * if some entry is at a later round, *jump*: adopt its `(round,
//!   value)` (jump-copied values never leave the frontier interval);
//! * otherwise move to round `r + 1` with the midpoint of the values
//!   you saw at round `r` (your own included — you wrote before
//!   scanning, so round-r views are totally ordered by inclusion and
//!   the round-r+1 range is at most half the round-r range);
//! * after `R = ⌈log₂(D/ε)⌉` rounds, output.
//!
//! For 2 processes this takes `2R + O(1)` steps — the upper-bound shape
//! matching the `½·log₃(1/ε)` step lower bound \[36\] that Corollary 34
//! consumes.
//!
//! [`MidpointApprox::compressed`] maps `n` processes onto `m < n`
//! components (process `i` writes component `i mod m`). It stays
//! wait-free (rounds are bounded) but processes can clobber each other,
//! so ε-agreement can fail — the under-provisioned Π̃ used to exercise
//! the Theorem 21(1) reduction.

use rsim_smr::process::{ProtocolStep, SnapshotProtocol};
use rsim_smr::value::{Dyadic, Value};

fn encode(round: u32, v: Dyadic) -> Value {
    Value::pair(Value::Int(round as i64), Value::Dyadic(v))
}

fn parse(entry: &Value) -> Option<(u32, Dyadic)> {
    let (r, v) = entry.as_pair()?;
    Some((r.as_int()? as u32, v.as_dyadic()?))
}

/// Number of rounds needed to shrink range `1` (inputs in `[0, 1]`)
/// below `ε = 2^{-eps_exp}`: one halving per round.
pub fn rounds_for_epsilon(eps_exp: u32) -> u32 {
    eps_exp
}

/// The round-based midpoint protocol for one process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MidpointApprox {
    /// The component this process writes.
    slot: usize,
    /// Total number of snapshot components.
    m: usize,
    /// Current round (1-based).
    round: u32,
    /// Current estimate.
    value: Dyadic,
    /// Rounds to run before outputting.
    rounds: u32,
    /// Whether the current round's write has been issued.
    written: bool,
}

impl MidpointApprox {
    /// The standard protocol: process `i` of `n`, own component, input
    /// `input`, running `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn new(i: usize, n: usize, input: Dyadic, rounds: u32) -> Self {
        assert!(i < n);
        MidpointApprox { slot: i, m: n, round: 1, value: input, rounds, written: false }
    }

    /// The compressed variant: `n` processes share `m` components,
    /// process `i` writing component `i mod m`. Wait-free but only
    /// ε-correct when `m ≥ n`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn compressed(i: usize, m: usize, input: Dyadic, rounds: u32) -> Self {
        assert!(m >= 1);
        MidpointApprox { slot: i % m, m, round: 1, value: input, rounds, written: false }
    }

    /// The process's current estimate.
    pub fn estimate(&self) -> Dyadic {
        self.value
    }

    /// The process's current round.
    pub fn round(&self) -> u32 {
        self.round
    }
}

impl SnapshotProtocol for MidpointApprox {
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
        debug_assert_eq!(view.len(), self.m);
        if !self.written {
            self.written = true;
            return ProtocolStep::Update(self.slot, encode(self.round, self.value));
        }
        let entries: Vec<(u32, Dyadic)> =
            view.iter().filter_map(parse).collect();
        let max_round = entries.iter().map(|(r, _)| *r).max().unwrap_or(0);
        if max_round > self.round {
            // Jump to the frontier, copying a frontier value.
            let (r, v) = entries
                .iter()
                .filter(|(r, _)| *r == max_round)
                .max_by_key(|(_, v)| *v)
                .copied()
                .expect("nonempty frontier");
            self.round = r;
            self.value = v;
        } else {
            // Midpoint of the round-r values seen (own value included —
            // in compressed mode our entry may have been clobbered, so
            // add it explicitly).
            let mut lo = self.value;
            let mut hi = self.value;
            for (r, v) in &entries {
                if *r == self.round {
                    lo = lo.min(*v);
                    hi = hi.max(*v);
                }
            }
            self.value = lo.midpoint(hi);
            self.round += 1;
        }
        if self.round > self.rounds {
            return ProtocolStep::Output(Value::Dyadic(self.value));
        }
        ProtocolStep::Update(self.slot, encode(self.round, self.value))
    }

    fn components(&self) -> usize {
        self.m
    }
}

/// Builds the standard n-process system (one component per process).
pub fn approx_system(inputs: &[Dyadic], rounds: u32) -> rsim_smr::system::System {
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, SnapshotProcess};
    let n = inputs.len();
    let processes = inputs
        .iter()
        .enumerate()
        .map(|(i, &input)| {
            Box::new(SnapshotProcess::new(
                MidpointApprox::new(i, n, input, rounds),
                ObjectId(0),
            )) as Box<dyn Process>
        })
        .collect();
    rsim_smr::system::System::new(vec![Object::snapshot(n)], processes)
}

/// Builds the compressed system: `n = inputs.len()` processes over `m`
/// components.
pub fn compressed_approx_system(
    inputs: &[Dyadic],
    m: usize,
    rounds: u32,
) -> rsim_smr::system::System {
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, SnapshotProcess};
    let processes = inputs
        .iter()
        .enumerate()
        .map(|(i, &input)| {
            Box::new(SnapshotProcess::new(
                MidpointApprox::compressed(i, m, input, rounds),
                ObjectId(0),
            )) as Box<dyn Process>
        })
        .collect();
    rsim_smr::system::System::new(vec![Object::snapshot(m)], processes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_smr::explore::{Explorer, Limits};
    use rsim_smr::process::ProcessId;
    use rsim_smr::sched::Random;
    use rsim_tasks::agreement::ApproximateAgreement;
    use rsim_tasks::task::ColorlessTask;
    use rsim_tasks::violation::{check_wait_freedom, search_random};

    fn zero_one() -> Vec<Dyadic> {
        vec![Dyadic::zero(), Dyadic::one()]
    }

    fn as_values(inputs: &[Dyadic]) -> Vec<Value> {
        inputs.iter().map(|&d| Value::Dyadic(d)).collect()
    }

    #[test]
    fn solo_outputs_own_input() {
        let mut sys = approx_system(&zero_one(), 4);
        let out = sys.run_solo(ProcessId(0), 100).unwrap();
        assert_eq!(out, Value::Dyadic(Dyadic::zero()));
    }

    #[test]
    fn two_process_outputs_within_epsilon() {
        let eps_exp = 4; // ε = 1/16
        let task = ApproximateAgreement::new(Dyadic::two_to_minus(eps_exp));
        let inputs = zero_one();
        let rounds = rounds_for_epsilon(eps_exp);
        let factory = move || approx_system(&zero_one(), rounds);
        let v = search_random(&factory, &as_values(&inputs), &task, 400, 2_000, 5);
        assert!(v.is_none(), "violation: {v:?}");
    }

    #[test]
    fn two_process_exhaustive_small_epsilon() {
        let eps_exp = 2; // ε = 1/4
        let task = ApproximateAgreement::new(Dyadic::two_to_minus(eps_exp));
        let inputs = zero_one();
        let sys = approx_system(&inputs, rounds_for_epsilon(eps_exp));
        let explorer = Explorer::new(Limits { max_depth: 30, max_configs: 2_000_000 });
        let (outputs, report) = explorer.terminal_outputs(&sys).unwrap();
        assert!(!report.truncated, "exploration truncated");
        for outs in outputs {
            task.validate(&as_values(&inputs), &outs)
                .unwrap_or_else(|e| panic!("{e} (outputs {outs:?})"));
        }
    }

    #[test]
    fn n3_random_within_epsilon() {
        let eps_exp = 5;
        let task = ApproximateAgreement::new(Dyadic::two_to_minus(eps_exp));
        let inputs = vec![Dyadic::zero(), Dyadic::new(1, 1), Dyadic::one()];
        let rounds = rounds_for_epsilon(eps_exp);
        let inputs2 = inputs.clone();
        let factory = move || approx_system(&inputs2, rounds);
        let v = search_random(&factory, &as_values(&inputs), &task, 300, 4_000, 9);
        assert!(v.is_none(), "violation: {v:?}");
    }

    #[test]
    fn wait_free_under_contention() {
        // Bounded rounds ⇒ wait-freedom: no process exceeds ~2R + 3
        // steps, under any schedule.
        let rounds = rounds_for_epsilon(6);
        let factory = move || approx_system(&zero_one(), rounds);
        let budget = (2 * rounds + 6) as usize;
        assert!(check_wait_freedom(&factory, 100, budget, 1).is_none());
    }

    #[test]
    fn step_complexity_scales_with_log_epsilon() {
        // Solo step count ≈ 2R + 2: the log₂(1/ε) upper-bound shape of
        // Corollary 34's comparison.
        for eps_exp in [2u32, 4, 8, 16] {
            let rounds = rounds_for_epsilon(eps_exp);
            let mut sys = approx_system(&zero_one(), rounds);
            sys.run_solo(ProcessId(0), 10_000).unwrap();
            let steps = sys.trace().len();
            // Per round: one update + one scan; plus the initial scan.
            assert_eq!(steps, (2 * rounds + 1) as usize);
        }
    }

    #[test]
    fn compressed_variant_is_wait_free_even_when_broken() {
        let rounds = rounds_for_epsilon(6);
        let inputs = vec![Dyadic::zero(), Dyadic::one(), Dyadic::one(), Dyadic::zero()];
        let inputs2 = inputs.clone();
        let factory = move || compressed_approx_system(&inputs2, 2, rounds);
        let budget = (2 * rounds + 6) as usize;
        assert!(check_wait_freedom(&factory, 100, budget, 2).is_none());
    }

    #[test]
    fn outputs_stay_in_input_range() {
        // Range validity: outputs within [min, max] of inputs, even in
        // the compressed variant (values are only midpoints/copies).
        let task = ApproximateAgreement::new(Dyadic::one());
        let inputs = vec![Dyadic::new(1, 2), Dyadic::new(3, 2)];
        let inputs2 = inputs.clone();
        let factory = move || compressed_approx_system(&inputs2, 1, 4);
        let v = search_random(&factory, &as_values(&inputs), &task, 200, 2_000, 13);
        assert!(v.is_none(), "violation: {v:?}");
    }

    #[test]
    fn convergence_is_monotone_in_rounds() {
        // With more rounds, the worst observed output spread shrinks.
        let mut spreads = Vec::new();
        for rounds in [1u32, 3, 6] {
            let mut worst = Dyadic::zero();
            for seed in 0..50 {
                let mut sys = approx_system(&zero_one(), rounds);
                sys.run(&mut Random::seeded(seed), 100_000).unwrap();
                let outs: Vec<Dyadic> = sys
                    .outputs()
                    .into_iter()
                    .map(|o| o.unwrap().as_dyadic().unwrap())
                    .collect();
                let spread =
                    *outs.iter().max().unwrap() - *outs.iter().min().unwrap();
                worst = worst.max(spread);
            }
            spreads.push(worst);
        }
        assert!(spreads[0] >= spreads[1] && spreads[1] >= spreads[2]);
        assert!(spreads[2] <= Dyadic::two_to_minus(6));
    }
}
