//! A deliberately ill-formed protocol: the analyzer's acceptance
//! fixture.
//!
//! [`illformed_system`] builds a 4-process system over one 8-component
//! single-writer snapshot whose processes each violate a different
//! paper precondition, so that a single `analyze` run over the fixture
//! must report every statically detectable lint code:
//!
//! * **RS-W001** — p0 (*the trespasser*) updates component 1, which is
//!   owned by p1: the §3 single-writer discipline is broken. At
//!   runtime the same write raises a `WriterViolation`, which the
//!   `analyze` CLI's trace pass surfaces as **RS-W006**.
//! * **RS-W002** — p1 (*the toggler*) writes `1, 2, 1` into its own
//!   component: its solo value stream revisits an earlier value, so
//!   the protocol is not ABA-free (Corollary 36).
//! * **RS-W003** — 4 processes over an 8-component snapshot: no
//!   `(f, d)` satisfies `(f − d)·m + d ≤ n`, so Theorem 21's
//!   reduction cannot fire.
//! * **RS-W004** — p2 (*the spinner*) writes fresh values forever and
//!   never outputs: its output step is unreachable.
//! * **RS-W005** — p3 (*the yield leaker*) writes the reserved yield
//!   symbol `Y` into its component and then outputs it.
//!
//! **RS-W007** (a non-contiguous atomic Block-Update window) cannot be
//! staged by any protocol running under the real runtime — the runtime
//! only produces legal interleavings — so it is exercised by the
//! analyzer's unit/golden tests on synthetic linearizations and by the
//! augmented-snapshot certification cross-check instead.

use rsim_smr::analyze::yield_symbol;
use rsim_smr::object::{Object, ObjectId};
use rsim_smr::process::{Process, ProcessId, ProtocolStep, SnapshotProcess, SnapshotProtocol};
use rsim_smr::system::System;
use rsim_smr::value::Value;

/// Which precondition a fixture process violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    /// Writes into p1's component (RS-W001 / RS-W006).
    Trespasser,
    /// Writes `1, 2, 1` into its own component (RS-W002).
    Toggler,
    /// Never outputs (RS-W004).
    Spinner,
    /// Writes and outputs the yield symbol (RS-W005).
    YieldLeaker,
}

/// One ill-formed fixture process.
#[derive(Clone, Debug)]
struct IllFormed {
    role: Role,
    step: i64,
}

impl IllFormed {
    fn new(role: Role) -> Self {
        IllFormed { role, step: 0 }
    }
}

impl SnapshotProtocol for IllFormed {
    fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
        self.step += 1;
        match self.role {
            Role::Trespasser => match self.step {
                // Fresh values: the trespass is the only defect.
                1..=3 => ProtocolStep::Update(1, Value::Int(100 + self.step)),
                _ => ProtocolStep::Output(Value::Int(0)),
            },
            Role::Toggler => match self.step {
                1 => ProtocolStep::Update(1, Value::Int(1)),
                2 => ProtocolStep::Update(1, Value::Int(2)),
                3 => ProtocolStep::Update(1, Value::Int(1)), // the ABA
                _ => ProtocolStep::Output(Value::Int(1)),
            },
            // Fresh increasing values: no ABA, just no output ever.
            Role::Spinner => ProtocolStep::Update(2, Value::Int(self.step)),
            Role::YieldLeaker => match self.step {
                1 => ProtocolStep::Update(3, yield_symbol()),
                _ => ProtocolStep::Output(yield_symbol()),
            },
        }
    }

    fn components(&self) -> usize {
        8
    }
}

/// Builds the ill-formed fixture system: 4 processes over one
/// 8-component snapshot, components `0..4` declared single-writer
/// (component `i` owned by process `i`).
pub fn illformed_system() -> System {
    let roles = [Role::Trespasser, Role::Toggler, Role::Spinner, Role::YieldLeaker];
    let processes = roles
        .iter()
        .map(|&role| {
            Box::new(SnapshotProcess::new(IllFormed::new(role), ObjectId(0)))
                as Box<dyn Process>
        })
        .collect();
    let mut sys = System::new(vec![Object::snapshot(8)], processes);
    for i in 0..4 {
        sys.restrict_writer(ObjectId(0), i, ProcessId(i));
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_smr::analyze::{self, LintCode, LintConfig};
    use rsim_smr::error::ModelError;
    use rsim_smr::explore::{Explorer, Limits};

    #[test]
    fn fixture_trips_every_static_lint_code() {
        let report = analyze::analyze_system(
            &illformed_system(),
            &LintConfig::default(),
            analyze::DEFAULT_BUDGET,
        );
        for code in [
            LintCode::SingleWriter,
            LintCode::AbaFreedom,
            LintCode::Footprint,
            LintCode::DeadStep,
            LintCode::YieldSymbol,
        ] {
            assert!(report.has(code), "missing {code}:\n{}", report.render());
        }
        assert!(!report.is_clean());
    }

    #[test]
    fn preflight_rejects_the_fixture() {
        let err =
            analyze::preflight(&illformed_system(), &LintConfig::default()).unwrap_err();
        match err {
            ModelError::PreflightRejected { diagnostics } => {
                assert!(diagnostics.contains("RS-W001"), "{diagnostics}");
                assert!(diagnostics.contains("RS-W002"), "{diagnostics}");
            }
            other => panic!("expected PreflightRejected, got {other:?}"),
        }
    }

    #[test]
    fn explorer_refuses_the_fixture_unless_preflight_is_disabled() {
        let explorer = Explorer::new(Limits { max_depth: 4, max_configs: 100 });
        let err = explorer
            .explore(&illformed_system(), &mut |_| None)
            .unwrap_err();
        assert!(matches!(err, ModelError::PreflightRejected { .. }), "{err}");

        // With pre-flight off the exploration runs (and hits the
        // runtime's own WriterViolation instead).
        let err = Explorer::new(Limits { max_depth: 4, max_configs: 100 })
            .with_preflight(false)
            .explore(&illformed_system(), &mut |_| None)
            .unwrap_err();
        assert!(matches!(err, ModelError::WriterViolation { .. }), "{err}");
    }
}
