//! The contrarian protocol: obstruction-free but **not**
//! 2-obstruction-free.
//!
//! Each process holds a bit. After a scan of the single component:
//!
//! * ⊥ → write my bit;
//! * my own bit → output it;
//! * the other bit → overwrite with mine.
//!
//! Solo, a process writes its bit and then reads it back: termination
//! in 3 steps (obstruction-freedom). But two processes with different
//! bits running in strict alternation overwrite each other forever —
//! the protocol is not 2-obstruction-free.
//!
//! Its role in the reproduction is Lemma 32's hypothesis: the
//! x-obstruction-free case of Theorem 21 (with `d = x` direct
//! simulators) *needs* Π to be x-obstruction-free — feeding the
//! contrarian protocol to a simulation with two direct simulators
//! produces a live-locked pair of direct simulators, while covering
//! simulators still terminate (the tests demonstrate both).

use rsim_smr::process::{ProtocolStep, SnapshotProtocol};
use rsim_smr::value::Value;

/// The contrarian protocol for one process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Contrarian {
    bit: bool,
}

impl Contrarian {
    /// Creates the protocol with the given input bit.
    pub fn new(bit: bool) -> Self {
        Contrarian { bit }
    }

    /// The process's current bit.
    pub fn bit(&self) -> bool {
        self.bit
    }
}

impl SnapshotProtocol for Contrarian {
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
        debug_assert_eq!(view.len(), 1);
        match view[0].as_bool() {
            None => ProtocolStep::Update(0, Value::Bool(self.bit)),
            Some(b) if b == self.bit => ProtocolStep::Output(Value::Bool(self.bit)),
            Some(_) => ProtocolStep::Update(0, Value::Bool(self.bit)),
        }
    }

    fn components(&self) -> usize {
        1
    }
}

/// Builds an n-process contrarian system over one component.
pub fn contrarian_system(bits: &[bool]) -> rsim_smr::system::System {
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, SnapshotProcess};
    let processes = bits
        .iter()
        .map(|&b| {
            Box::new(SnapshotProcess::new(Contrarian::new(b), ObjectId(0)))
                as Box<dyn Process>
        })
        .collect();
    rsim_smr::system::System::new(vec![Object::snapshot(1)], processes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_smr::explore::{Explorer, Limits};
    use rsim_smr::process::ProcessId;
    use rsim_smr::sched::Fixed;

    #[test]
    fn solo_terminates_in_three_steps() {
        let mut sys = contrarian_system(&[true, false]);
        let out = sys.run_solo(ProcessId(0), 10).unwrap();
        assert_eq!(out, Value::Bool(true));
        assert_eq!(sys.trace().len(), 3); // scan, write, scan
    }

    #[test]
    fn obstruction_freedom_holds_everywhere() {
        let sys = contrarian_system(&[true, false]);
        let explorer = Explorer::new(Limits { max_depth: 12, max_configs: 50_000 });
        let report = explorer.check_solo_termination(&sys, 10).unwrap();
        assert!(report.is_clean(), "{:?}", report.violation);
    }

    #[test]
    fn alternation_livelocks_two_processes() {
        // Strict alternation: neither process ever terminates —
        // the protocol is not 2-obstruction-free.
        let mut sys = contrarian_system(&[true, false]);
        // Operation-level alternation (2 steps each: scan+write):
        // p p q q p p q q … — each process scans the other's bit and
        // overwrites it, forever.
        let schedule: Vec<ProcessId> =
            (0..400).map(|i| ProcessId((i / 2) % 2)).collect();
        sys.run(&mut Fixed::new(schedule), 1_000).unwrap();
        assert!(!sys.is_terminated(ProcessId(0)));
        assert!(!sys.is_terminated(ProcessId(1)));
    }

    #[test]
    fn group_termination_check_detects_the_livelock() {
        // The x = 2 group-termination checker finds the violation that
        // the x = 1 checker (above) does not.
        let sys = contrarian_system(&[true, false]);
        let explorer = Explorer::new(Limits { max_depth: 6, max_configs: 10_000 });
        let report = explorer.check_group_termination(&sys, 2, 60).unwrap();
        assert!(
            !report.is_clean(),
            "expected a 2-obstruction-freedom violation"
        );
    }

    #[test]
    fn equal_bits_always_terminate() {
        // With equal inputs there is no disagreement to ping-pong on.
        let mut sys = contrarian_system(&[true, true]);
        let schedule: Vec<ProcessId> =
            (0..100).map(|i| ProcessId(i % 2)).collect();
        sys.run(&mut Fixed::new(schedule), 1_000).unwrap();
        assert!(sys.all_terminated());
    }
}
