//! Named fixtures from the generated (`gen:`) protocol family.
//!
//! The hand-written families in this crate pin specific points of the
//! design space: [`crate::racing`] sits *at* the space bound (and is
//! observably fragile there), [`crate::ladder`] sits comfortably above
//! it with a safety proof, [`crate::illformed`] violates the paper's
//! preconditions on purpose. The generated family
//! (`rsim_smr::gen`) fills the space *between* those points with seeded
//! protocols: announce prologues over single-writer components plus a
//! phased-racing core racing strictly above the bound (`m ≥ n + 1`).
//!
//! These fixtures give tests in this crate (and downstream) stable
//! names for generated systems without reaching into the generator
//! API, mirroring `racing_system` / `ladder_system`.

use rsim_smr::gen::{GenSpec, Mutation};
use rsim_smr::system::System;

/// The generated base system for a seed — the `gen:SEED` protocol of
/// the CLI, analyzer-clean and empirically agreement-safe.
pub fn generated_system(seed: u64) -> System {
    GenSpec::from_seed(seed).build_system()
}

/// A generated mutant system — the `gen:SEED:MUTATION` protocol of the
/// CLI. Runtime-verdict mutants build and run; analyzer-reject mutants
/// build but fail `rsim_smr::analyze` pre-flight.
pub fn generated_mutant_system(seed: u64, mutation: Mutation) -> System {
    mutation.apply(&GenSpec::from_seed(seed)).build_system()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_smr::analyze::{lint_system, AnalysisReport, LintConfig, DEFAULT_BUDGET};
    use rsim_smr::gen::Mutation;
    use rsim_smr::process::ProcessId;
    use rsim_smr::value::Value;

    #[test]
    fn generated_bases_are_obstruction_free_like_racing() {
        // The family's contract matches racing's: a solo process
        // decides its own input within a small budget.
        for seed in [0, 5, 19] {
            let spec = GenSpec::from_seed(seed);
            for i in 0..spec.procs {
                let mut sys = generated_system(seed);
                let out = sys.run_solo(ProcessId(i), 256).unwrap();
                assert_eq!(out, Value::Int(i as i64 + 1), "gen:{seed} p{i}");
            }
        }
    }

    #[test]
    fn generated_family_races_above_the_bound_unlike_racing() {
        // racing_system is deliberately run at the tight m = n; the
        // generated bases keep a register of slack (m ≥ n + 1), which
        // is why their must-stay-clean margin holds empirically.
        for seed in 0..32 {
            let spec = GenSpec::from_seed(seed);
            assert!(spec.race_m > spec.procs, "gen:{seed} races at the bound");
        }
    }

    #[test]
    fn shrink_mutant_drops_below_the_bound_like_broken_racing() {
        // The shrink-m mutant is the generated analogue of racing with
        // m below Corollary 33: same footprint relation, same predicted
        // violability.
        let spec = Mutation::ShrinkFootprint.apply(&GenSpec::from_seed(0));
        assert!(spec.race_m < spec.procs);
        // Still statically well-formed: the analyzer must let it
        // through to the runtime search (the bound is a warn, not a
        // deny — exactly like campaigning racing below the bound).
        let sys = generated_mutant_system(0, Mutation::ShrinkFootprint);
        let report = AnalysisReport::from_findings(
            lint_system(&sys, DEFAULT_BUDGET),
            &LintConfig::default(),
        );
        assert_eq!(report.deny_count(), 0, "{}", report.render());
    }

    #[test]
    fn trespass_mutant_is_rejected_like_illformed() {
        // The trespass mutant reproduces the illformed fixture's
        // RS-W001 arm inside the generated family.
        let sys = generated_mutant_system(0, Mutation::TrespassWrite);
        let report = AnalysisReport::from_findings(
            lint_system(&sys, DEFAULT_BUDGET),
            &LintConfig::default(),
        );
        assert!(report.deny_count() > 0, "trespass must be denied");
    }
}
