//! The serializable protocol: n blind max-writers with an edge-free
//! interference graph.
//!
//! Each process performs a single `writemax` of its (distinct) stamp
//! to a shared one-component max-register (§5.2) and then outputs its
//! own stamp. No process ever *reads*: write/write pairs on a
//! max-register commute (the register keeps the maximum either way),
//! so every pair of processes is independent — statically and
//! dynamically — and every schedule is equivalent to the solo runs.
//!
//! Its role in the reproduction is as the positive fixture for the
//! static interference analyzer: `rsim-smr::analyze::interfere` must
//! prove the matrix edge-free and report RS-W010 (exploration adds
//! nothing over the solo verdicts), and the explorer's static seeding
//! must collapse the schedule tree to a single interleaving class.

use rsim_smr::object::{Object, ObjectId, Operation, Response};
use rsim_smr::process::{Poised, Process};
use rsim_smr::system::System;
use rsim_smr::value::Value;

/// One serializable process: a single blind `writemax` of `stamp`,
/// then output.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MaxStamp {
    stamp: i64,
    wrote: bool,
}

impl MaxStamp {
    /// Creates the protocol with the given stamp.
    pub fn new(stamp: i64) -> Self {
        MaxStamp { stamp, wrote: false }
    }

    /// The process's stamp.
    pub fn stamp(&self) -> i64 {
        self.stamp
    }
}

impl Process for MaxStamp {
    fn poised(&self) -> Poised {
        if self.wrote {
            Poised::Output(Value::Int(self.stamp))
        } else {
            Poised::Step(Operation::WriteMax {
                obj: ObjectId(0),
                component: 0,
                value: Value::Int(self.stamp),
            })
        }
    }

    fn receive(&mut self, _resp: Response) {
        self.wrote = true;
    }

    fn boxed_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

/// Builds an n-process serializable system over one shared
/// max-register component, one process per stamp.
pub fn serializable_system(stamps: &[i64]) -> System {
    let processes = stamps
        .iter()
        .map(|&stamp| Box::new(MaxStamp::new(stamp)) as Box<dyn Process>)
        .collect();
    System::new(vec![Object::max_register(1)], processes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_smr::analyze::{interfere_system, InterferenceMatrix, LintCode};
    use rsim_smr::explore::Explorer;
    use rsim_smr::process::ProcessId;

    #[test]
    fn solo_run_outputs_own_stamp() {
        let mut sys = serializable_system(&[1, 2, 3]);
        let out = sys.run_solo(ProcessId(1), 10).unwrap();
        assert_eq!(out, Value::Int(2));
        assert_eq!(sys.trace().len(), 1); // a single writemax
    }

    #[test]
    fn matrix_is_edge_free_and_w010_fires() {
        let sys = serializable_system(&[1, 2, 3]);
        let matrix = InterferenceMatrix::build(&sys, 64);
        assert!(matrix.is_edge_free());
        assert_eq!(matrix.indep_pairs(), 3);
        let findings = interfere_system(&sys, 64);
        let w010: Vec<_> = findings
            .iter()
            .filter(|(code, _)| *code == LintCode::StaticSerializable)
            .collect();
        assert_eq!(w010.len(), 1);
        assert!(w010[0].1.contains("p0 → 1"), "{}", w010[0].1);
        assert!(w010[0].1.contains("p2 → 3"), "{}", w010[0].1);
    }

    #[test]
    fn exploration_is_clean_and_fully_prefiltered() {
        let sys = serializable_system(&[1, 2, 3]);
        let report = Explorer::default().explore(&sys, &mut |_| None).unwrap();
        assert!(report.is_clean());
        assert!(report.static_seed);
        assert_eq!(report.static_indep_pairs, 3);
        assert!(report.prefilter_hits > 0);
        // Every pair commutes: the register ends at the maximum stamp
        // on every schedule, so there is exactly one terminal output
        // vector and DPOR prunes hard.
        assert_eq!(report.terminals, 1);
        assert!(report.pruned > 0);
    }

    #[test]
    fn static_seeding_on_and_off_agree() {
        let sys = serializable_system(&[5, 7]);
        let on = Explorer::default().explore(&sys, &mut |_| None).unwrap();
        let off = Explorer::default()
            .with_static(false)
            .explore(&sys, &mut |_| None)
            .unwrap();
        assert_eq!(on.configs_visited, off.configs_visited);
        assert_eq!(on.terminals, off.terminals);
        assert_eq!(on.pruned, off.pruned);
    }
}
