//! `rsim-bench`: the Criterion benchmark harness.
//!
//! One bench file per experiment (see `EXPERIMENTS.md` at the workspace
//! root):
//!
//! * `e1_augmented` — augmented snapshot operations, contended runs,
//!   the §3.3 spec checker, thread-mode stress.
//! * `e4_simulation` — full simulation runs, σ̄ reconstruction, replay
//!   validation, and the BG baseline comparison.
//! * `e6_kset` — racing/ladder solo decisions, obstruction-adversary
//!   runs, violation search, bound-formula grid.
//! * `e7_approx` — ε sweeps of the midpoint protocol and the
//!   compressed variant.
//! * `e8_solo` — shortest-solo-path search and determinized runs.
//! * `e10_sperner` — subdivisions, Sperner verification, exhaustive
//!   search.
//!
//! Run with `cargo bench --workspace`; per-bench with
//! `cargo bench -p rsim-bench --bench e4_simulation`.
