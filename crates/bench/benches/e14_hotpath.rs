//! E14: exploration hot-path microbenchmarks.
//!
//! Measures the costs the explorer pays per visited configuration —
//! fingerprinting, forking, terminal dedup, linearizability memoing —
//! plus end-to-end serial/parallel exploration throughput. Each arm is
//! reported next to the pre-optimisation baseline (measured on the same
//! workloads before the streaming-hash/copy-on-write rework, commit
//! `7b8e998`), and where the legacy code path still exists in-tree
//! (string fingerprinting, deep trace copies) it is measured live as a
//! `legacy_*` arm. Emits a machine-readable summary to
//! `BENCH_e14.json` (path override via the `BENCH_E14_OUT` environment
//! variable) for the `just bench-smoke` target.

use rsim_protocols::racing::racing_system;
use rsim_smr::explore::{Explorer, Limits};
use rsim_smr::fingerprint::fingerprint;
use rsim_smr::history::History;
use rsim_smr::linearizability::check;
use rsim_smr::object::{Object, ObjectId, Operation, Response};
use rsim_smr::process::{ProtocolStep, SnapshotProcess, SnapshotProtocol};
use rsim_smr::sched::RoundRobin;
use rsim_smr::system::System;
use rsim_smr::value::Value;
use std::hint::black_box;
use std::time::Instant;

/// Pre-optimisation reference numbers (ns unless noted), measured at
/// the seed commit on the container this suite ships in. They anchor
/// the printed speedup columns when the legacy path no longer exists to
/// measure (e.g. eager trace copies inside `System::clone`).
mod baseline {
    pub const FINGERPRINT_NS: f64 = 1065.8;
    pub const FORK_NS: [(usize, f64); 4] =
        [(16, 697.4), (64, 2575.3), (256, 9921.9), (1024, 49600.3)];
    pub const SERIAL_STATES_PER_SEC: f64 = 42_682.0;
    pub const PARALLEL_STATES_PER_SEC: f64 = 23_457.0;
    pub const LIN_CHECK_NS: f64 = 2_300.0;
}

fn ints(n: usize) -> Vec<Value> {
    (1..=n as i64).map(Value::Int).collect()
}

/// A process that alternates update/scan forever: lets the fork-cost
/// benchmark grow the execution trace to any target depth.
#[derive(Clone, Debug)]
struct Spinner {
    component: usize,
    counter: i64,
}

impl SnapshotProtocol for Spinner {
    fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
        self.counter += 1;
        ProtocolStep::Update(self.component, Value::Int(self.counter))
    }
    fn components(&self) -> usize {
        2
    }
}

fn spinner_system() -> System {
    let p0 = SnapshotProcess::new(Spinner { component: 0, counter: 0 }, ObjectId(0));
    let p1 = SnapshotProcess::new(Spinner { component: 1, counter: 0 }, ObjectId(0));
    System::new(vec![Object::snapshot(2)], vec![Box::new(p0), Box::new(p1)])
}

/// A system whose trace has exactly `depth` events, frozen the way the
/// explorer leaves a configuration before fanning out.
fn system_at_depth(depth: usize) -> System {
    let mut sys = spinner_system();
    let mut sched = RoundRobin::new();
    sys.run(&mut sched, depth).expect("spinner run");
    assert_eq!(sys.trace().len(), depth);
    sys.freeze_trace();
    sys
}

/// Mean ns/iter of `f` over `iters` runs (after one warm-up).
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn samples(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// A linearizable history of `n` overlapping register writes+reads,
/// sized to exercise the Wing–Gong memo table.
fn overlapping_history(n: usize) -> History {
    let mut h = History::new();
    let mut write_ids = Vec::new();
    for i in 0..n {
        let id = h.invoke(
            i,
            Operation::Write { obj: ObjectId(0), value: Value::Int(i as i64 % 3) },
        );
        write_ids.push(id);
    }
    for id in write_ids {
        h.respond(id, Response::Ack);
    }
    let r = h.invoke(n, Operation::Read { obj: ObjectId(0) });
    h.respond(r, Response::Value(Value::Int((n as i64 - 1) % 3)));
    h
}

fn main() {
    let quick = samples(0) == 1;
    let mut json = Vec::new();
    println!("e14_hotpath: exploration hot-path microbenchmarks");
    println!("{}", "-".repeat(72));

    // -- fingerprint: streamed vs legacy string --------------------------
    let sys = system_at_depth(12);
    let n = samples(200_000);
    let legacy_fp_ns = time_ns(n, || {
        black_box(fingerprint(&black_box(&sys).config_key()));
    });
    let streamed_fp_ns = time_ns(n, || {
        black_box(black_box(&sys).config_fingerprint());
    });
    println!("fingerprint/legacy_string   {legacy_fp_ns:>12.1} ns/op");
    println!(
        "fingerprint/streamed        {streamed_fp_ns:>12.1} ns/op  ({:.2}x vs legacy, {:.2}x vs baseline)",
        legacy_fp_ns / streamed_fp_ns,
        baseline::FINGERPRINT_NS / streamed_fp_ns,
    );
    json.push(format!("    \"fingerprint_legacy_ns\": {legacy_fp_ns:.1}"));
    json.push(format!("    \"fingerprint_streamed_ns\": {streamed_fp_ns:.1}"));

    // -- fork cost vs depth: CoW clone vs deep copy ----------------------
    let n = samples(50_000);
    let mut fork_1024_cow_ns = f64::NAN;
    for (depth, base_ns) in baseline::FORK_NS {
        let deep = system_at_depth(depth);
        let cow_ns = time_ns(n, || {
            black_box(black_box(&deep).clone());
        });
        // The old `System::clone` copied the whole event log; emulate it
        // by cloning plus materialising the trace.
        let legacy_ns = time_ns(n, || {
            let fork = black_box(&deep).clone();
            black_box(fork.trace().to_vec());
        });
        println!(
            "fork/cow_depth_{depth:<5}       {cow_ns:>12.1} ns/op  (deep copy {legacy_ns:.1} ns, baseline {base_ns:.1} ns, {:.1}x)",
            base_ns / cow_ns,
        );
        json.push(format!("    \"fork_depth_{depth}_ns\": {cow_ns:.1}"));
        json.push(format!("    \"fork_depth_{depth}_deep_copy_ns\": {legacy_ns:.1}"));
        if depth == 1024 {
            fork_1024_cow_ns = cow_ns;
        }
    }

    // -- serial exploration ---------------------------------------------
    let initial = racing_system(2, &ints(3));
    let limits = Limits { max_depth: 64, max_configs: 20_000 };
    let explorer = Explorer::new(limits);
    let report = explorer.explore(&initial, &mut |_| None).expect("explore");
    let states = report.configs_visited;
    let n = samples(10);
    let serial_ns = time_ns(n, || {
        black_box(explorer.explore(&initial, &mut |_| None).expect("explore"));
    });
    let serial_rate = states as f64 / (serial_ns / 1e9);
    println!(
        "explore/serial              {:>12.1} ms/run  ({states} states, {serial_rate:.0} states/s, {:.2}x vs baseline)",
        serial_ns / 1e6,
        serial_rate / baseline::SERIAL_STATES_PER_SEC,
    );
    json.push(format!("    \"serial_states\": {states}"));
    json.push(format!("    \"serial_states_per_sec\": {serial_rate:.0}"));

    // -- parallel exploration (4 threads) -------------------------------
    let par = Explorer::new(limits).with_threads(4);
    let preport = par.explore_parallel(&initial, &|_| None).expect("explore");
    let pstates = preport.configs_visited;
    let n = samples(10);
    let par_ns = time_ns(n, || {
        black_box(par.explore_parallel(&initial, &|_| None).expect("explore"));
    });
    let par_rate = pstates as f64 / (par_ns / 1e9);
    println!(
        "explore/parallel_4          {:>12.1} ms/run  ({pstates} states, {par_rate:.0} states/s, {:.2}x vs baseline)",
        par_ns / 1e6,
        par_rate / baseline::PARALLEL_STATES_PER_SEC,
    );
    json.push(format!("    \"parallel_states\": {pstates}"));
    json.push(format!("    \"parallel_states_per_sec\": {par_rate:.0}"));

    // -- linearizability memo throughput --------------------------------
    let hist = overlapping_history(if quick { 6 } else { 10 });
    let n = samples(50);
    let lin_ns = time_ns(n, || {
        black_box(check(black_box(&hist), Object::register()));
    });
    println!(
        "lin_check/overlapping       {:>12.1} µs/run  ({:.2}x vs baseline)",
        lin_ns / 1e3,
        baseline::LIN_CHECK_NS / lin_ns,
    );
    json.push(format!("    \"lin_check_ns\": {lin_ns:.0}"));

    // -- JSON summary ----------------------------------------------------
    let out = std::env::var("BENCH_E14_OUT").unwrap_or_else(|_| "BENCH_e14.json".into());
    let baseline_json = format!(
        "    \"fingerprint_legacy_ns\": {:.1},\n    \"fork_depth_16_ns\": {:.1},\n    \"fork_depth_64_ns\": {:.1},\n    \"fork_depth_256_ns\": {:.1},\n    \"fork_depth_1024_ns\": {:.1},\n    \"serial_states_per_sec\": {:.0},\n    \"parallel_states_per_sec\": {:.0},\n    \"lin_check_ns\": {:.0}",
        baseline::FINGERPRINT_NS,
        baseline::FORK_NS[0].1,
        baseline::FORK_NS[1].1,
        baseline::FORK_NS[2].1,
        baseline::FORK_NS[3].1,
        baseline::SERIAL_STATES_PER_SEC,
        baseline::PARALLEL_STATES_PER_SEC,
        baseline::LIN_CHECK_NS,
    );
    let body = format!(
        "{{\n  \"experiment\": \"e14_hotpath\",\n  \"baseline_commit\": \"7b8e998\",\n  \"baseline\": {{\n{baseline_json}\n  }},\n  \"measured\": {{\n{}\n  }},\n  \"speedup\": {{\n    \"fingerprint\": {:.2},\n    \"fork_depth_1024\": {:.2},\n    \"serial_states_per_sec\": {:.2},\n    \"parallel_states_per_sec\": {:.2}\n  }}\n}}\n",
        json.join(",\n"),
        baseline::FINGERPRINT_NS / streamed_fp_ns,
        baseline::FORK_NS[3].1 / fork_1024_cow_ns,
        serial_rate / baseline::SERIAL_STATES_PER_SEC,
        par_rate / baseline::PARALLEL_STATES_PER_SEC,
    );
    std::fs::write(&out, body).expect("write BENCH_e14.json");
    println!("{}", "-".repeat(72));
    println!("wrote {out}");
}
