//! E6 — the k-set agreement protocols and the violation search.
//!
//! Solo decision latency of phased racing and ladder consensus across
//! component counts; contended runs under the obstruction adversary;
//! randomized violation search below the Corollary 33 bound; bound
//! formula evaluation across the whole grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsim_core::bounds;
use rsim_protocols::ladder::ladder_system;
use rsim_protocols::racing::racing_system;
use rsim_smr::process::ProcessId;
use rsim_smr::sched::Obstruction;
use rsim_smr::value::Value;
use rsim_tasks::agreement::consensus;
use rsim_tasks::violation::search_random;
use std::hint::black_box;

fn ints(n: usize) -> Vec<Value> {
    (1..=n as i64).map(Value::Int).collect()
}

fn bench_solo_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_solo_decide");
    for &m in &[2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("racing", m), &m, |b, &m| {
            b.iter(|| {
                let mut sys = racing_system(m, &ints(m));
                black_box(sys.run_solo(ProcessId(0), 1_000_000).unwrap())
            })
        });
    }
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("ladder", n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = ladder_system(&ints(n), 8);
                black_box(sys.run_solo(ProcessId(0), 1_000_000).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_contended_agreement(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_contended");
    group.sample_size(20);
    for &(n, m) in &[(3usize, 3usize), (4, 4), (4, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("racing_n{n}_m{m}")),
            &(n, m),
            |b, &(n, m)| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let mut sys = racing_system(m, &ints(n));
                    let mut sched = Obstruction::new(1, 50, 300, seed);
                    sys.run(&mut sched, 1_000_000).unwrap();
                    assert!(sys.all_terminated());
                    black_box(sys.outputs())
                })
            },
        );
    }
    group.finish();
}

fn bench_violation_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_violation_search");
    group.sample_size(10);
    group.bench_function("racing_n3_m2_below_bound", |b| {
        let inputs = ints(3);
        b.iter(|| {
            let v = search_random(
                &|| racing_system(2, &ints(3)),
                &inputs,
                &consensus(),
                2_000,
                2_000,
                7,
            );
            assert!(v.is_some());
            black_box(v)
        })
    });
    group.finish();
}

fn bench_bound_formulas(c: &mut Criterion) {
    c.bench_function("e6_bound_grid_n64", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for n in 2..=64 {
                for k in 1..n {
                    for x in 1..=k {
                        acc = acc.wrapping_add(bounds::kset_space_lower_bound(n, k, x));
                    }
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_solo_decisions,
    bench_contended_agreement,
    bench_violation_search,
    bench_bound_formulas
);
criterion_main!(benches);
