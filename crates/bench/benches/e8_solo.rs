//! E8 — the Theorem 35 determinization.
//!
//! Cost of the shortest-solo-path search (the conversion's inner loop)
//! and of full determinized solo/contended runs, across component
//! counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsim_smr::process::ProcessId;
use rsim_smr::sched::Random;
use rsim_smr::value::Value;
use rsim_solo::convert::{determinized_system, shortest_solo_path};
use rsim_solo::machine::{EpState, NondetMachine, RandomizedRacing};
use std::hint::black_box;
use std::sync::Arc;

fn bench_solo_path_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_solo_path");
    for &m in &[1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let machine = RandomizedRacing::new(m);
            let start = EpState::initial(machine.initial(&Value::Int(1)), m);
            b.iter(|| {
                black_box(shortest_solo_path(&machine, &start, 1_000_000).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_determinized_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_determinized_run");
    for &m in &[1usize, 2] {
        group.bench_with_input(BenchmarkId::new("solo", m), &m, |b, &m| {
            let machine = Arc::new(RandomizedRacing::new(m));
            b.iter(|| {
                let mut sys = determinized_system(
                    Arc::clone(&machine),
                    &[Value::Int(1)],
                    1_000_000,
                );
                black_box(sys.run_solo(ProcessId(0), 10_000).unwrap())
            })
        });
    }
    group.bench_function("contended_m2_3procs", |b| {
        let machine = Arc::new(RandomizedRacing::new(2));
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut sys = determinized_system(
                Arc::clone(&machine),
                &[Value::Int(1), Value::Int(2), Value::Int(3)],
                1_000_000,
            );
            sys.run(&mut Random::seeded(seed), 100_000).unwrap();
            black_box(sys.outputs())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solo_path_search, bench_determinized_runs);
criterion_main!(benches);
