//! E1/E2/E3 — the augmented snapshot object (§3).
//!
//! Measures the cost of `Scan` and `Block-Update` (model mode, solo and
//! contended), the §3.3 specification checker, and the thread-mode
//! twin. Alongside timing, the `Criterion` parameters sweep `f` and `m`
//! so the scaling of the 6-step / `2k+3`-step operations is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsim_smr::value::Value;
use rsim_snapshot::client::AugOp;
use rsim_snapshot::real::RealSystem;
use rsim_snapshot::spec;
use rsim_snapshot::thread_mode::SharedAug;
use std::hint::black_box;

fn random_run(f: usize, m: usize, ops_per_proc: usize, seed: u64) -> RealSystem {
    let mut rs = RealSystem::new(f, m);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining = vec![ops_per_proc; f];
    let mut counter = 0i64;
    loop {
        let live: Vec<usize> = (0..f)
            .filter(|&p| remaining[p] > 0 || !rs.is_idle(p))
            .collect();
        if live.is_empty() {
            break;
        }
        let pid = live[rng.gen_range(0..live.len())];
        if rs.is_idle(pid) {
            remaining[pid] -= 1;
            counter += 1;
            let op = if rng.gen_bool(0.5) {
                AugOp::Scan
            } else {
                AugOp::BlockUpdate {
                    components: vec![(counter as usize) % m],
                    values: vec![Value::Int(counter)],
                }
            };
            rs.begin(pid, op);
        }
        rs.step(pid);
    }
    rs
}

fn bench_solo_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_solo_ops");
    for &m in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("block_update", m), &m, |b, &m| {
            b.iter(|| {
                let mut rs = RealSystem::new(2, m);
                rs.begin(0, AugOp::BlockUpdate {
                    components: vec![0],
                    values: vec![Value::Int(1)],
                });
                black_box(rs.run_to_completion(0))
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", m), &m, |b, &m| {
            b.iter(|| {
                let mut rs = RealSystem::new(2, m);
                rs.begin(0, AugOp::Scan);
                black_box(rs.run_to_completion(0))
            })
        });
    }
    group.finish();
}

fn bench_contended_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_contended_run");
    for &(f, m) in &[(2usize, 2usize), (4, 2), (4, 4), (6, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("f{f}_m{m}")),
            &(f, m),
            |b, &(f, m)| {
                b.iter(|| black_box(random_run(f, m, 6, 42)));
            },
        );
    }
    group.finish();
}

fn bench_spec_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_spec_check");
    for &(f, m) in &[(3usize, 2usize), (4, 3)] {
        let rs = random_run(f, m, 6, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("f{f}_m{m}")),
            &rs,
            |b, rs| {
                b.iter(|| {
                    let report = spec::check(rs, m);
                    assert!(report.is_ok());
                    black_box(report)
                })
            },
        );
    }
    group.finish();
}

fn bench_thread_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_thread_mode");
    group.bench_function("4_threads_200_ops", |b| {
        b.iter(|| {
            let aug = SharedAug::new(4, 4);
            std::thread::scope(|s| {
                for i in 0..4usize {
                    let ai = std::sync::Arc::clone(&aug);
                    s.spawn(move || {
                        for round in 0..50 {
                            if round % 2 == 0 {
                                let _ = ai.block_update(
                                    i,
                                    &[round % 4],
                                    &[Value::Int(round as i64)],
                                );
                            } else {
                                let _ = ai.scan(i);
                            }
                        }
                    });
                }
            });
            black_box(aug)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_solo_ops,
    bench_contended_runs,
    bench_spec_checker,
    bench_thread_mode
);
criterion_main!(benches);
