//! Parallel exploration engine and campaign runner throughput.
//!
//! Scaling of the level-synchronised frontier explorer across thread
//! counts on the racing state space, and campaign runs-per-second for
//! the seeded scheduler-mix matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsim_protocols::racing::racing_system;
use rsim_smr::campaign::{run_campaign, CampaignConfig, SchedulerSpec};
use rsim_smr::explore::{Explorer, Limits};
use rsim_smr::value::Value;
use std::hint::black_box;

fn ints(n: usize) -> Vec<Value> {
    (1..=n as i64).map(Value::Int).collect()
}

fn bench_explore_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_explore");
    group.sample_size(10);
    let sys = racing_system(2, &ints(3));
    let limits = Limits { max_depth: 64, max_configs: 10_000 };
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("racing3", threads),
            &threads,
            |b, &threads| {
                let explorer = Explorer::new(limits).with_threads(threads);
                b.iter(|| {
                    black_box(
                        explorer.explore_parallel(&sys, &|_| None).unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_solo_termination_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_solo_check");
    group.sample_size(10);
    let sys = racing_system(2, &ints(3));
    let limits = Limits { max_depth: 6, max_configs: 3_000 };
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("racing3", threads),
            &threads,
            |b, &threads| {
                let explorer = Explorer::new(limits).with_threads(threads);
                b.iter(|| {
                    black_box(
                        explorer
                            .check_solo_termination_parallel(&sys, 60)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("racing3_mix", threads),
            &threads,
            |b, &threads| {
                let config = CampaignConfig {
                    schedulers: vec![
                        SchedulerSpec::RoundRobin,
                        SchedulerSpec::Random,
                        SchedulerSpec::Quantum(2),
                    ],
                    seed_start: 0,
                    runs: 100,
                    budget: 1_000,
                    threads,
                };
                b.iter(|| {
                    black_box(run_campaign(
                        &config,
                        |_seed| racing_system(2, &ints(3)),
                        &|_| None,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_explore_threads,
    bench_solo_termination_threads,
    bench_campaign
);
criterion_main!(benches);
