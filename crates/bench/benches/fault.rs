//! E12 — fault-injection overhead and crash-placement certification.
//!
//! Cost of the [`FaultScheduler`] wrapper relative to the bare
//! scheduler it wraps, and the end-to-end cost of certifying an
//! exhaustive single-crash plan space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsim_protocols::racing::racing_system;
use rsim_smr::campaign::{run_fault_campaign, FaultCampaignConfig, SchedulerSpec};
use rsim_smr::fault::{FaultPlan, FaultScheduler};
use rsim_smr::value::Value;
use rsim_snapshot::certify::certify_nonblocking_block_updates;
use std::hint::black_box;

fn racing3() -> rsim_smr::system::System {
    racing_system(2, &[Value::Int(1), Value::Int(2), Value::Int(3)])
}

fn bench_scheduler_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_fault_wrapper_overhead");
    group.bench_function("bare_rr", |b| {
        b.iter(|| {
            let mut sys = racing3();
            let mut sched = SchedulerSpec::RoundRobin.build(1);
            sys.run(&mut *sched, 4_000).unwrap();
            black_box(sys.trace().len())
        })
    });
    group.bench_function("empty_plan", |b| {
        b.iter(|| {
            let mut sys = racing3();
            let mut sched =
                FaultScheduler::new(SchedulerSpec::RoundRobin.build(1), FaultPlan::none());
            sys.run(&mut sched, 4_000).unwrap();
            black_box(sys.trace().len())
        })
    });
    group.bench_function("crash_and_stall_plan", |b| {
        let plan = FaultPlan::parse("crash@0:3+stall@1:2-20").unwrap();
        b.iter(|| {
            let mut sys = racing3();
            let mut sched =
                FaultScheduler::new(SchedulerSpec::RoundRobin.build(1), plan.clone());
            sys.run(&mut sched, 4_000).unwrap();
            black_box(sys.trace().len())
        })
    });
    group.finish();
}

fn bench_crash_placement_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_crash_placement_campaign");
    group.sample_size(10);
    for &seeds in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("seeds{seeds}")),
            &seeds,
            |b, &seeds| {
                let config = FaultCampaignConfig {
                    base: SchedulerSpec::RoundRobin,
                    plans: FaultPlan::single_crash_plans(3, 5),
                    seed_start: 0,
                    runs: seeds,
                    budget: 4_000,
                    threads: 1,
                };
                b.iter(|| {
                    black_box(run_fault_campaign(&config, |_| racing3(), &|_, _| None))
                })
            },
        );
    }
    group.finish();
}

fn bench_snapshot_certification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_snapshot_certification");
    for &f in &[2usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, &f| {
            b.iter(|| black_box(certify_nonblocking_block_updates(f, 2)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scheduler_overhead,
    bench_crash_placement_campaign,
    bench_snapshot_certification
);
criterion_main!(benches);
