//! E10 — the impossibility substrate.
//!
//! Cost of building iterated barycentric subdivisions, verifying
//! Sperner's lemma on random labelings, and the exhaustive violation
//! search on concrete 2-process protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsim_protocols::racing::racing_system;
use rsim_smr::explore::Limits;
use rsim_smr::value::Value;
use rsim_tasks::agreement::consensus;
use rsim_tasks::sperner::{verify_sperner, Complex, Labeling};
use rsim_tasks::violation::search_exhaustive;
use std::hint::black_box;

fn bench_subdivision(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_subdivision");
    for &(dim, depth) in &[(1usize, 4usize), (2, 2), (2, 3), (3, 1)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("dim{dim}_depth{depth}")),
            &(dim, depth),
            |b, &(dim, depth)| {
                b.iter(|| black_box(Complex::standard(dim).subdivide(depth)))
            },
        );
    }
    group.finish();
}

fn bench_sperner_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_sperner_verify");
    for &depth in &[1usize, 2, 3] {
        let complex = Complex::standard(2).subdivide(depth);
        group.bench_with_input(
            BenchmarkId::from_parameter(depth),
            &complex,
            |b, complex| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| {
                    let labeling = Labeling::random_sperner(complex, &mut rng);
                    black_box(verify_sperner(complex, &labeling).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_exhaustive_violation_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_exhaustive_search");
    group.sample_size(10);
    group.bench_function("racing_n2_m1", |b| {
        let inputs = [Value::Int(1), Value::Int(2)];
        b.iter(|| {
            let sys = racing_system(1, &inputs);
            let v = search_exhaustive(
                &sys,
                &inputs,
                &consensus(),
                Limits { max_depth: 40, max_configs: 500_000 },
            )
            .unwrap();
            assert!(v.is_some());
            black_box(v)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_subdivision,
    bench_sperner_verification,
    bench_exhaustive_violation_search
);
criterion_main!(benches);
