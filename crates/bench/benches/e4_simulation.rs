//! E4/E5 — the revisionist simulation and the Lemma 26/27 replay.
//!
//! Wall time of full simulation runs (round-robin and random
//! schedules) across (n, m, f), of the σ̄ reconstruction, and of the
//! step-by-step replay validation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsim_core::replay;
use rsim_core::simulation::{Simulation, SimulationConfig};
use rsim_protocols::racing::PhasedRacing;
use rsim_smr::value::Value;
use std::hint::black_box;

fn build(n: usize, m: usize, f: usize) -> Simulation<PhasedRacing> {
    let inputs: Vec<Value> = (1..=f as i64).map(Value::Int).collect();
    let config = SimulationConfig::new(n, m, f, 0);
    Simulation::new(config, inputs, move |i| {
        PhasedRacing::new(m, Value::Int(i as i64 + 1))
    })
    .unwrap()
}

fn bench_simulation_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_simulation_run");
    for &(n, m, f) in &[(4usize, 2usize, 2usize), (6, 2, 3), (6, 3, 2), (8, 2, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}_f{f}")),
            &(n, m, f),
            |b, &(n, m, f)| {
                b.iter(|| {
                    let mut sim = build(n, m, f);
                    sim.run_round_robin(10_000_000).unwrap();
                    assert!(sim.all_terminated());
                    black_box(sim.outputs())
                })
            },
        );
    }
    group.finish();
}

fn bench_random_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_simulation_random");
    group.bench_function("n6_m2_f3", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = build(6, 2, 3);
            sim.run_random(seed, 10_000_000).unwrap();
            assert!(sim.all_terminated());
            black_box(sim.outputs())
        })
    });
    group.finish();
}

fn bench_reconstruct_and_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_replay");
    let mut sim = build(6, 2, 3);
    sim.run_random(3, 10_000_000).unwrap();
    group.bench_function("reconstruct_n6_m2_f3", |b| {
        b.iter(|| black_box(replay::reconstruct(&sim).unwrap()))
    });
    group.bench_function("validate_n6_m2_f3", |b| {
        b.iter(|| {
            let report = replay::validate(&sim, |i| {
                PhasedRacing::new(2, Value::Int(i as i64 + 1))
            })
            .unwrap();
            assert!(report.is_ok());
            black_box(report)
        })
    });
    group.finish();
}

fn bench_bg_baseline(c: &mut Criterion) {
    use rsim_core::bg::BgSimulation;
    let mut group = c.benchmark_group("e11_bg_baseline");
    group.bench_function("bg_n4_f2_all_live", |b| {
        b.iter(|| {
            let mut bg = BgSimulation::new(
                4,
                vec![Value::Int(1), Value::Int(2)],
                |v| PhasedRacing::new(2, v.clone()),
                100_000,
            );
            for _ in 0..100 {
                for i in 0..2 {
                    bg.step(i).unwrap();
                }
            }
            let outs = bg.outputs();
            assert!(outs.iter().all(Option::is_some));
            black_box(outs)
        })
    });
    group.bench_function("revisionist_n4_f2", |b| {
        b.iter(|| {
            let mut sim = build(4, 2, 2);
            sim.run_round_robin(10_000_000).unwrap();
            black_box(sim.outputs())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation_runs,
    bench_random_schedule,
    bench_reconstruct_and_replay,
    bench_bg_baseline
);
criterion_main!(benches);
