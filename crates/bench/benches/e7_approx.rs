//! E7 — ε-approximate agreement: step complexity vs log(1/ε).
//!
//! Solo and contended runs of the midpoint protocol across ε, matching
//! the Θ(log 1/ε) shape against the ½·log₃(1/ε) lower bound of
//! Corollary 34; plus the compressed variant used in the reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsim_protocols::approx::{
    approx_system, compressed_approx_system, rounds_for_epsilon,
};
use rsim_smr::process::ProcessId;
use rsim_smr::sched::Random;
use rsim_smr::value::Dyadic;
use std::hint::black_box;

fn bench_solo_epsilon_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_solo_steps");
    for &e in &[4u32, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(e), &e, |b, &e| {
            b.iter(|| {
                let mut sys = approx_system(
                    &[Dyadic::zero(), Dyadic::one()],
                    rounds_for_epsilon(e),
                );
                black_box(sys.run_solo(ProcessId(0), 1_000_000).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_contended");
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            let inputs: Vec<Dyadic> = (0..n)
                .map(|i| if i % 2 == 0 { Dyadic::zero() } else { Dyadic::one() })
                .collect();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut sys = approx_system(&inputs, rounds_for_epsilon(8));
                sys.run(&mut Random::seeded(seed), 1_000_000).unwrap();
                assert!(sys.all_terminated());
                black_box(sys.outputs())
            })
        });
    }
    group.finish();
}

fn bench_compressed(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_compressed");
    for &m in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, &m| {
            let inputs =
                vec![Dyadic::zero(), Dyadic::one(), Dyadic::one(), Dyadic::zero()];
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut sys =
                    compressed_approx_system(&inputs, m, rounds_for_epsilon(8));
                sys.run(&mut Random::seeded(seed), 1_000_000).unwrap();
                black_box(sys.outputs())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solo_epsilon_sweep, bench_contended, bench_compressed);
criterion_main!(benches);
