//! E16: happens-before-guided partial-order reduction.
//!
//! Measures what DPOR buys on the phased-racing family (the
//! `PhasedRacing` consensus protocol at growing process counts): forks
//! pruned vs configurations visited, the wall-clock speedup of the
//! reduced exploration over the unreduced one on the *same* workload,
//! and — because the reduction must never change what an exploration
//! finds — asserts report equality (visited, terminals, truncation,
//! violation) between the DPOR-on and DPOR-off runs of every arm.
//! Depth-bounded limits with no config cap keep that comparison exact
//! (a mid-level cap cuts in visit order and is legitimately
//! order-dependent). Also re-runs the E14 hot-path workloads with the
//! reduction on, so states-per-second stays comparable against the
//! `BENCH_e14.json` baselines. Emits `BENCH_e16.json` (path override
//! via `BENCH_E16_OUT`) for the `just bench-smoke` target.

use rsim_protocols::racing::racing_system;
use rsim_protocols::serializable::serializable_system;
use rsim_smr::explore::{ExploreReport, Explorer, Limits};
use rsim_smr::process::ProcessId;
use rsim_smr::system::System;
use rsim_smr::value::Value;
use std::hint::black_box;
use std::time::Instant;

/// The E14 hot-path anchors (states/sec at the pre-optimisation seed
/// commit) — the reduction must not regress the raw exploration rate.
mod baseline {
    pub const E14_SERIAL_STATES_PER_SEC: f64 = 42_682.0;
    pub const E14_PARALLEL_STATES_PER_SEC: f64 = 23_457.0;
}

/// The phased-racing family: `procs` processes racing on a 2-component
/// snapshot, explored breadth-first to `depth` schedule steps. Depths
/// shrink as the family widens so every arm stays around 10^4..10^5
/// configurations.
const FAMILY: [(usize, usize); 4] = [(3, 12), (4, 10), (5, 9), (6, 8)];

fn ints(n: usize) -> Vec<Value> {
    (1..=n as i64).map(Value::Int).collect()
}

fn family_system(procs: usize) -> System {
    racing_system(2, &ints(procs))
}

/// Consensus agreement/validity over whatever outputs exist so far —
/// the realistic per-configuration checker cost for this family.
fn agreement_check(inputs: Vec<Value>) -> impl Fn(&System) -> Option<String> + Sync {
    move |sys: &System| {
        let mut decided: Option<Value> = None;
        for p in 0..sys.process_count() {
            if let Some(v) = sys.output(ProcessId(p)) {
                if !inputs.contains(&v) {
                    return Some(format!("validity: p{p} decided {v}"));
                }
                match &decided {
                    Some(d) if *d != v => {
                        return Some(format!("agreement: {d} vs {v}"));
                    }
                    _ => decided = Some(v),
                }
            }
        }
        None
    }
}

/// Mean ns/iter of `f` over `iters` runs (after one warm-up).
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn samples(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn assert_equivalent(on: &ExploreReport, off: &ExploreReport, label: &str) {
    assert!(on.dpor && !off.dpor, "{label}: dpor flags misrecorded");
    assert_same_verdicts(on, off, label);
}

/// Report equality on every verdict observable (both runs reduced; the
/// static-seeding arm toggles only the matrix prefilter).
fn assert_same_verdicts(on: &ExploreReport, off: &ExploreReport, label: &str) {
    assert_eq!(on.configs_visited, off.configs_visited, "{label}: configs_visited");
    assert_eq!(on.terminals, off.terminals, "{label}: terminals");
    assert_eq!(on.truncated, off.truncated, "{label}: truncated");
    assert_eq!(on.violation, off.violation, "{label}: violation");
}

fn main() {
    let mut json = Vec::new();
    println!("e16_dpor: happens-before-guided partial-order reduction");
    println!("{}", "-".repeat(72));

    // -- phased-racing family: reduction factor + on/off speedup --------
    let mut headline_factor = 0.0f64;
    let n = samples(3);
    for (procs, depth) in FAMILY {
        let sys = family_system(procs);
        let check = agreement_check(ints(procs));
        let limits = Limits { max_depth: depth, max_configs: 8_000_000 };
        let run = |dpor: bool| {
            Explorer::new(limits)
                .with_threads(4)
                .with_dpor(dpor)
                .explore_parallel(&sys, &check)
                .expect("explore")
        };
        let on = run(true);
        let off = run(false);
        assert_equivalent(&on, &off, &format!("racing procs={procs}"));
        let on_ns = time_ns(n, || {
            black_box(run(true));
        });
        let off_ns = time_ns(n, || {
            black_box(run(false));
        });
        let factor = on.reduction_factor();
        headline_factor = headline_factor.max(factor);
        println!(
            "racing/procs_{procs}_depth_{depth}   {:>9} visited  {:>9} pruned  {factor:>5.2}x forks  ({:.0} ms on, {:.0} ms off, {:.2}x wall)",
            on.configs_visited,
            on.pruned,
            on_ns / 1e6,
            off_ns / 1e6,
            off_ns / on_ns,
        );
        json.push(format!(
            "    {{\"procs\": {procs}, \"depth\": {depth}, \"visited\": {}, \"pruned\": {}, \"reduction_factor\": {factor:.4}, \"verdicts_identical\": true, \"on_ms\": {:.1}, \"off_ms\": {:.1}, \"wall_speedup\": {:.2}}}",
            on.configs_visited,
            on.pruned,
            on_ns / 1e6,
            off_ns / 1e6,
            off_ns / on_ns,
        ));
    }
    assert!(
        headline_factor >= 2.0,
        "phased-racing family peaked at {headline_factor:.2}x — the ≥2x reduction gate failed"
    );

    // -- static-seeding arm: matrix prefilter on vs off ------------------
    // Two families: phased racing (all-scanning, so the matrix removes
    // no edges — the arm measures pure matrix overhead and proves the
    // reports stay identical) and the serializable blind-writer family
    // (edge-free matrix, where the prefilter answers every pair query
    // and DPOR collapses the exploration to one interleaving).
    let mut static_json = Vec::new();
    let n = samples(3);
    for (procs, depth) in FAMILY {
        let sys = family_system(procs);
        let check = agreement_check(ints(procs));
        let limits = Limits { max_depth: depth, max_configs: 8_000_000 };
        let run = |statics: bool| {
            Explorer::new(limits)
                .with_threads(4)
                .with_static(statics)
                .explore_parallel(&sys, &check)
                .expect("explore")
        };
        let on = run(true);
        let off = run(false);
        assert_same_verdicts(&on, &off, &format!("static racing procs={procs}"));
        assert_eq!(on.pruned, off.pruned, "static racing procs={procs}: pruned");
        let on_ns = time_ns(n, || {
            black_box(run(true));
        });
        let off_ns = time_ns(n, || {
            black_box(run(false));
        });
        let hits_per_config = on.prefilter_hits as f64 / on.configs_visited.max(1) as f64;
        println!(
            "static/racing_procs_{procs}       {:>9} indep pairs  {:>9} hits  ({:.3} hits/config, {:.0} ms on, {:.0} ms off)",
            on.static_indep_pairs,
            on.prefilter_hits,
            hits_per_config,
            on_ns / 1e6,
            off_ns / 1e6,
        );
        static_json.push(format!(
            "    {{\"family\": \"racing\", \"procs\": {procs}, \"static_indep_pairs\": {}, \"prefilter_hits\": {}, \"prefilter_hits_per_config\": {hits_per_config:.4}, \"verdicts_identical\": true, \"on_ms\": {:.1}, \"off_ms\": {:.1}}}",
            on.static_indep_pairs,
            on.prefilter_hits,
            on_ns / 1e6,
            off_ns / 1e6,
        ));
    }
    let mut serializable_fork_reduction = 0.0f64;
    for procs in 3..=6usize {
        let stamps: Vec<i64> = (1..=procs as i64).collect();
        let sys = serializable_system(&stamps);
        let limits = Limits { max_depth: 2 * procs + 2, max_configs: 8_000_000 };
        let run = |statics: bool| {
            Explorer::new(limits)
                .with_threads(4)
                .with_static(statics)
                .explore_parallel(&sys, &|_| None)
                .expect("explore")
        };
        let on = run(true);
        let off = run(false);
        assert_same_verdicts(&on, &off, &format!("serializable procs={procs}"));
        assert!(on.prefilter_hits > 0, "serializable procs={procs}: prefilter idle");
        assert_eq!(on.terminals, 1, "serializable procs={procs}: one schedule class");
        let factor = on.reduction_factor();
        serializable_fork_reduction = serializable_fork_reduction.max(factor);
        let hits_per_config = on.prefilter_hits as f64 / on.configs_visited.max(1) as f64;
        println!(
            "static/serializable_procs_{procs} {:>9} visited  {:>9} hits  {factor:>5.2}x forks  ({:.3} hits/config)",
            on.configs_visited, on.prefilter_hits, hits_per_config,
        );
        static_json.push(format!(
            "    {{\"family\": \"serializable\", \"procs\": {procs}, \"static_indep_pairs\": {}, \"prefilter_hits\": {}, \"prefilter_hits_per_config\": {hits_per_config:.4}, \"reduction_factor\": {factor:.4}, \"verdicts_identical\": true}}",
            on.static_indep_pairs,
            on.prefilter_hits,
        ));
    }
    assert!(
        serializable_fork_reduction >= 2.0,
        "serializable family peaked at {serializable_fork_reduction:.2}x — the ≥2x \
         fork-reduction gate on the fully-prefiltered family failed"
    );

    // -- E14 hot-path workloads with the reduction on --------------------
    let initial = racing_system(2, &ints(3));
    let limits = Limits { max_depth: 64, max_configs: 20_000 };
    let explorer = Explorer::new(limits);
    let states = explorer.explore(&initial, &mut |_| None).expect("explore").configs_visited;
    let n = samples(10);
    let serial_ns = time_ns(n, || {
        black_box(explorer.explore(&initial, &mut |_| None).expect("explore"));
    });
    let serial_rate = states as f64 / (serial_ns / 1e9);
    println!(
        "explore/serial_dpor         {:>12.1} ms/run  ({states} states, {serial_rate:.0} states/s, {:.2}x vs e14 baseline)",
        serial_ns / 1e6,
        serial_rate / baseline::E14_SERIAL_STATES_PER_SEC,
    );

    let par = Explorer::new(limits).with_threads(4);
    let pstates =
        par.explore_parallel(&initial, &|_| None).expect("explore").configs_visited;
    let par_ns = time_ns(n, || {
        black_box(par.explore_parallel(&initial, &|_| None).expect("explore"));
    });
    let par_rate = pstates as f64 / (par_ns / 1e9);
    println!(
        "explore/parallel_4_dpor     {:>12.1} ms/run  ({pstates} states, {par_rate:.0} states/s, {:.2}x vs e14 baseline)",
        par_ns / 1e6,
        par_rate / baseline::E14_PARALLEL_STATES_PER_SEC,
    );

    // -- JSON summary ----------------------------------------------------
    let out = std::env::var("BENCH_E16_OUT").unwrap_or_else(|_| "BENCH_e16.json".into());
    let body = format!(
        "{{\n  \"experiment\": \"e16_dpor\",\n  \"baseline_commit\": \"61aecfe\",\n  \"family\": [\n{}\n  ],\n  \"static_seeding\": [\n{}\n  ],\n  \"headline_reduction_factor\": {headline_factor:.4},\n  \"serializable_reduction_factor\": {serializable_fork_reduction:.4},\n  \"serial_states\": {states},\n  \"serial_states_per_sec\": {serial_rate:.0},\n  \"parallel_states\": {pstates},\n  \"parallel_states_per_sec\": {par_rate:.0},\n  \"e14_serial_ratio\": {:.2},\n  \"e14_parallel_ratio\": {:.2}\n}}\n",
        json.join(",\n"),
        static_json.join(",\n"),
        serial_rate / baseline::E14_SERIAL_STATES_PER_SEC,
        par_rate / baseline::E14_PARALLEL_STATES_PER_SEC,
    );
    std::fs::write(&out, body).expect("write BENCH_e16.json");
    println!("{}", "-".repeat(72));
    println!("wrote {out}");
}
