//! Sweep statistics: the repository's "figure generator".
//!
//! [`sweep`] runs a batch of simulations over random schedules and
//! aggregates everything the experiments report: wait-freedom, replay
//! validity, Block-Update counts against the Lemma 30 budgets, H-step
//! totals against the Lemma 31 bound, task-violation frequency
//! (the Theorem 21 contradiction), and revision statistics.

use crate::bounds;
use crate::replay;
use crate::simulation::{Simulation, SimulationConfig};
use rsim_smr::error::ModelError;
use rsim_smr::process::SnapshotProtocol;
use rsim_smr::value::Value;
use rsim_tasks::task::ColorlessTask;

/// Aggregated results of one sweep point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The configuration swept.
    pub config: SimulationConfig,
    /// Schedules run.
    pub runs: usize,
    /// Runs in which every simulator terminated (must equal `runs`:
    /// the simulation is wait-free).
    pub wait_free: usize,
    /// Runs whose Lemma 26/27 replay validated.
    pub replay_ok: usize,
    /// Per-simulator maximum of applied Block-Updates.
    pub max_block_updates: Vec<usize>,
    /// The Lemma 30 budgets `b(i)` those maxima must respect.
    pub budgets: Vec<u128>,
    /// Maximum H-steps over the runs.
    pub max_h_steps: usize,
    /// Mean H-steps over the runs.
    pub mean_h_steps: f64,
    /// Runs whose simulator outputs violated the task — the observable
    /// contradiction of Theorem 21.
    pub task_violations: usize,
    /// Total revisions of the past across all runs.
    pub revisions: usize,
    /// Total hidden (revision + tail) steps across all replays.
    pub hidden_steps: usize,
}

impl SweepPoint {
    /// Do all measured counts respect the analytic budgets?
    pub fn budgets_hold(&self) -> bool {
        self.max_block_updates
            .iter()
            .zip(&self.budgets)
            .all(|(&measured, &budget)| measured as u128 <= budget)
    }

    /// One table row: `n m f | runs wf replay viol | maxH meanH`.
    pub fn row(&self) -> String {
        format!(
            "{:>3} {:>3} {:>3} | {:>4} {:>4} {:>6} {:>5} | {:>7} {:>8.1} | {}",
            self.config.n,
            self.config.m,
            self.config.f,
            self.runs,
            self.wait_free,
            self.replay_ok,
            self.task_violations,
            self.max_h_steps,
            self.mean_h_steps,
            self.max_block_updates
                .iter()
                .zip(&self.budgets)
                .map(|(m, b)| format!("{m}≤{b}"))
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// Runs `seeds` random-schedule simulations of `config` with processes
/// built by `make_protocol`, validating against `task`, and aggregates
/// the results.
///
/// # Errors
///
/// Propagates construction/step errors (infeasible partitions, solo
/// budget exhaustion).
pub fn sweep<P: SnapshotProtocol>(
    config: SimulationConfig,
    inputs: &[Value],
    make_protocol: impl Fn(usize) -> P + Copy,
    task: &dyn ColorlessTask,
    seeds: std::ops::Range<u64>,
    max_h_steps: usize,
) -> Result<SweepPoint, ModelError> {
    let f = config.f;
    let mut point = SweepPoint {
        config,
        runs: 0,
        wait_free: 0,
        replay_ok: 0,
        max_block_updates: vec![0; f],
        budgets: (1..=f).map(|i| bounds::b_bound(config.m, i)).collect(),
        max_h_steps: 0,
        mean_h_steps: 0.0,
        task_violations: 0,
        revisions: 0,
        hidden_steps: 0,
    };
    let mut total_h = 0usize;
    for seed in seeds {
        let mut sim = Simulation::new(config, inputs.to_vec(), make_protocol)?;
        sim.run_random(seed, max_h_steps)?;
        point.runs += 1;
        if !sim.all_terminated() {
            continue;
        }
        point.wait_free += 1;
        // Proposition 24: each simulator alternates Scan and
        // Block-Update, ending with a Scan (or a revision/local tail).
        for i in 0..f {
            let (scans, bus) = sim.op_counts(i);
            debug_assert!(
                scans == bus || scans == bus + 1,
                "Proposition 24 violated: {scans} scans vs {bus} block-updates"
            );
        }
        let h = sim.real().log().len();
        total_h += h;
        point.max_h_steps = point.max_h_steps.max(h);
        for i in 0..f {
            let (_, bus) = sim.op_counts(i);
            point.max_block_updates[i] = point.max_block_updates[i].max(bus);
            point.revisions += sim.revisions(i).len();
        }
        let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
        if task.validate(inputs, &outs).is_err() {
            point.task_violations += 1;
        }
        if let Ok(report) = replay::validate(&sim, make_protocol) {
            if report.is_ok() {
                point.replay_ok += 1;
                point.hidden_steps += report.hidden_steps;
            }
        }
    }
    if point.wait_free > 0 {
        point.mean_h_steps = total_h as f64 / point.wait_free as f64;
    }
    Ok(point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_protocols::racing::PhasedRacing;
    use rsim_tasks::agreement::consensus;

    #[test]
    fn sweep_aggregates_consistently() {
        let config = SimulationConfig::new(4, 2, 2, 0);
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let point = sweep(
            config,
            &inputs,
            |i| PhasedRacing::new(2, Value::Int([1, 2][i])),
            &consensus(),
            0..30,
            2_000_000,
        )
        .unwrap();
        assert_eq!(point.runs, 30);
        assert_eq!(point.wait_free, 30, "wait-freedom");
        assert_eq!(point.replay_ok, 30, "replay validity");
        assert!(point.budgets_hold(), "{:?}", point);
        assert!(point.max_h_steps >= point.mean_h_steps as usize);
        assert!(!point.row().is_empty());
    }

    #[test]
    fn sweep_counts_violations_below_bound() {
        let config = SimulationConfig::new(4, 2, 2, 0);
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let point = sweep(
            config,
            &inputs,
            |i| PhasedRacing::new(2, Value::Int([1, 2][i])),
            &consensus(),
            0..120,
            2_000_000,
        )
        .unwrap();
        assert!(
            point.task_violations > 0,
            "expected extracted consensus violations below the bound"
        );
    }
}
