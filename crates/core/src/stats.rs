//! Sweep statistics: the repository's "figure generator".
//!
//! [`sweep`] runs a batch of simulations over random schedules and
//! aggregates everything the experiments report: wait-freedom, replay
//! validity, Block-Update counts against the Lemma 30 budgets, H-step
//! totals against the Lemma 31 bound, task-violation frequency
//! (the Theorem 21 contradiction), and revision statistics.

use crate::bounds;
use crate::replay;
use crate::simulation::{Simulation, SimulationConfig};
use rsim_smr::error::ModelError;
use rsim_smr::process::SnapshotProtocol;
use rsim_smr::value::Value;
use rsim_tasks::task::ColorlessTask;

/// Aggregated results of one sweep point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The configuration swept.
    pub config: SimulationConfig,
    /// Schedules run.
    pub runs: usize,
    /// Runs in which every simulator terminated (must equal `runs`:
    /// the simulation is wait-free).
    pub wait_free: usize,
    /// Runs whose Lemma 26/27 replay validated.
    pub replay_ok: usize,
    /// Per-simulator maximum of applied Block-Updates.
    pub max_block_updates: Vec<usize>,
    /// The Lemma 30 budgets `b(i)` those maxima must respect.
    pub budgets: Vec<u128>,
    /// Maximum H-steps over the runs.
    pub max_h_steps: usize,
    /// Mean H-steps over the runs.
    pub mean_h_steps: f64,
    /// Runs whose simulator outputs violated the task — the observable
    /// contradiction of Theorem 21.
    pub task_violations: usize,
    /// Total revisions of the past across all runs.
    pub revisions: usize,
    /// Total hidden (revision + tail) steps across all replays.
    pub hidden_steps: usize,
}

impl SweepPoint {
    /// Do all measured counts respect the analytic budgets?
    pub fn budgets_hold(&self) -> bool {
        self.max_block_updates
            .iter()
            .zip(&self.budgets)
            .all(|(&measured, &budget)| measured as u128 <= budget)
    }

    /// One table row: `n m f | runs wf replay viol | maxH meanH`.
    pub fn row(&self) -> String {
        format!(
            "{:>3} {:>3} {:>3} | {:>4} {:>4} {:>6} {:>5} | {:>7} {:>8.1} | {}",
            self.config.n,
            self.config.m,
            self.config.f,
            self.runs,
            self.wait_free,
            self.replay_ok,
            self.task_violations,
            self.max_h_steps,
            self.mean_h_steps,
            self.max_block_updates
                .iter()
                .zip(&self.budgets)
                .map(|(m, b)| format!("{m}≤{b}"))
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// Measurements from one seeded simulation run. Folding these into a
/// [`SweepPoint`] uses only sums, maxima and counts — commutative,
/// associative operations — so the aggregate is identical no matter how
/// runs are partitioned across worker threads.
#[derive(Clone, Debug)]
struct RunStats {
    wait_free: bool,
    h_steps: usize,
    block_updates: Vec<usize>,
    revisions: usize,
    task_violation: bool,
    replay_ok: bool,
    hidden_steps: usize,
}

/// Executes one seeded run and measures it.
fn run_one<P: SnapshotProtocol>(
    config: SimulationConfig,
    inputs: &[Value],
    make_protocol: impl Fn(usize) -> P + Copy,
    task: &dyn ColorlessTask,
    seed: u64,
    max_h_steps: usize,
) -> Result<RunStats, ModelError> {
    let f = config.f;
    let mut stats = RunStats {
        wait_free: false,
        h_steps: 0,
        block_updates: vec![0; f],
        revisions: 0,
        task_violation: false,
        replay_ok: false,
        hidden_steps: 0,
    };
    let mut sim = Simulation::new(config, inputs.to_vec(), make_protocol)?;
    sim.run_random(seed, max_h_steps)?;
    if !sim.all_terminated() {
        return Ok(stats);
    }
    stats.wait_free = true;
    // Proposition 24: each simulator alternates Scan and Block-Update,
    // ending with a Scan (or a revision/local tail).
    for i in 0..f {
        let (scans, bus) = sim.op_counts(i);
        debug_assert!(
            scans == bus || scans == bus + 1,
            "Proposition 24 violated: {scans} scans vs {bus} block-updates"
        );
        stats.block_updates[i] = bus;
        stats.revisions += sim.revisions(i).len();
    }
    stats.h_steps = sim.real().log().len();
    let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
    stats.task_violation = task.validate(inputs, &outs).is_err();
    if let Ok(report) = replay::validate(&sim, make_protocol) {
        if report.is_ok() {
            stats.replay_ok = true;
            stats.hidden_steps = report.hidden_steps;
        }
    }
    Ok(stats)
}

fn empty_point(config: SimulationConfig) -> SweepPoint {
    SweepPoint {
        config,
        runs: 0,
        wait_free: 0,
        replay_ok: 0,
        max_block_updates: vec![0; config.f],
        budgets: (1..=config.f).map(|i| bounds::b_bound(config.m, i)).collect(),
        max_h_steps: 0,
        mean_h_steps: 0.0,
        task_violations: 0,
        revisions: 0,
        hidden_steps: 0,
    }
}

/// Folds one run's measurements into the aggregate; returns the H-step
/// contribution to the mean.
fn fold_run(point: &mut SweepPoint, stats: &RunStats) -> usize {
    point.runs += 1;
    if !stats.wait_free {
        return 0;
    }
    point.wait_free += 1;
    point.max_h_steps = point.max_h_steps.max(stats.h_steps);
    for (max, &bus) in point.max_block_updates.iter_mut().zip(&stats.block_updates) {
        *max = (*max).max(bus);
    }
    point.revisions += stats.revisions;
    if stats.task_violation {
        point.task_violations += 1;
    }
    if stats.replay_ok {
        point.replay_ok += 1;
        point.hidden_steps += stats.hidden_steps;
    }
    stats.h_steps
}

/// Runs `seeds` random-schedule simulations of `config` with processes
/// built by `make_protocol`, validating against `task`, and aggregates
/// the results.
///
/// # Errors
///
/// Propagates construction/step errors (infeasible partitions, solo
/// budget exhaustion).
pub fn sweep<P: SnapshotProtocol>(
    config: SimulationConfig,
    inputs: &[Value],
    make_protocol: impl Fn(usize) -> P + Copy,
    task: &dyn ColorlessTask,
    seeds: std::ops::Range<u64>,
    max_h_steps: usize,
) -> Result<SweepPoint, ModelError> {
    let mut point = empty_point(config);
    let mut total_h = 0usize;
    for seed in seeds {
        let stats = run_one(config, inputs, make_protocol, task, seed, max_h_steps)?;
        total_h += fold_run(&mut point, &stats);
    }
    if point.wait_free > 0 {
        point.mean_h_steps = total_h as f64 / point.wait_free as f64;
    }
    Ok(point)
}

/// Parallel [`sweep`]: the seed range fans out across `threads` worker
/// threads (`0` = one per core) through a shared atomic cursor. Every
/// field of the result — including `mean_h_steps` — is identical to the
/// sequential [`sweep`] because runs are independent, per-run
/// measurements are merged in seed order, and the merge operations are
/// commutative sums and maxima.
///
/// # Errors
///
/// Propagates the error of the lowest-seed failing run, matching what
/// sequential [`sweep`] would report.
pub fn sweep_parallel<P: SnapshotProtocol>(
    config: SimulationConfig,
    inputs: &[Value],
    make_protocol: impl Fn(usize) -> P + Copy + Send + Sync,
    task: &dyn ColorlessTask,
    seeds: std::ops::Range<u64>,
    max_h_steps: usize,
    threads: usize,
) -> Result<SweepPoint, ModelError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    };
    let span = seeds.end.saturating_sub(seeds.start);
    let chunk: u64 = span.div_ceil(threads as u64 * 8).clamp(1, 64);
    let cursor = AtomicU64::new(seeds.start);
    type Outcome = (u64, Result<RunStats, ModelError>);
    let results: Mutex<Vec<Outcome>> = Mutex::new(Vec::with_capacity(span as usize));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<Outcome> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= seeds.end {
                        break;
                    }
                    for seed in start..(start + chunk).min(seeds.end) {
                        let outcome = run_one(
                            config, inputs, make_protocol, task, seed, max_h_steps,
                        );
                        let failed = outcome.is_err();
                        local.push((seed, outcome));
                        if failed {
                            break;
                        }
                    }
                }
                results.lock().expect("sweep results lock").extend(local);
            });
        }
    });
    let mut results = results.into_inner().expect("sweep results lock");
    results.sort_by_key(|(seed, _)| *seed);

    let mut point = empty_point(config);
    let mut total_h = 0usize;
    for (_, outcome) in results {
        let stats = outcome?;
        total_h += fold_run(&mut point, &stats);
    }
    if point.wait_free > 0 {
        point.mean_h_steps = total_h as f64 / point.wait_free as f64;
    }
    Ok(point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_protocols::racing::PhasedRacing;
    use rsim_tasks::agreement::consensus;

    #[test]
    fn sweep_aggregates_consistently() {
        let config = SimulationConfig::new(4, 2, 2, 0);
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let point = sweep(
            config,
            &inputs,
            |i| PhasedRacing::new(2, Value::Int([1, 2][i])),
            &consensus(),
            0..30,
            2_000_000,
        )
        .unwrap();
        assert_eq!(point.runs, 30);
        assert_eq!(point.wait_free, 30, "wait-freedom");
        assert_eq!(point.replay_ok, 30, "replay validity");
        assert!(point.budgets_hold(), "{:?}", point);
        assert!(point.max_h_steps >= point.mean_h_steps as usize);
        assert!(!point.row().is_empty());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let config = SimulationConfig::new(4, 2, 2, 0);
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let make = |i: usize| PhasedRacing::new(2, Value::Int([1, 2][i]));
        let seq = sweep(config, &inputs, make, &consensus(), 0..40, 2_000_000)
            .unwrap();
        for threads in [1, 3, 8] {
            let par = sweep_parallel(
                config, &inputs, make, &consensus(), 0..40, 2_000_000, threads,
            )
            .unwrap();
            assert_eq!(par.runs, seq.runs, "threads = {threads}");
            assert_eq!(par.wait_free, seq.wait_free);
            assert_eq!(par.replay_ok, seq.replay_ok);
            assert_eq!(par.max_block_updates, seq.max_block_updates);
            assert_eq!(par.max_h_steps, seq.max_h_steps);
            assert_eq!(par.task_violations, seq.task_violations);
            assert_eq!(par.revisions, seq.revisions);
            assert_eq!(par.hidden_steps, seq.hidden_steps);
            assert!((par.mean_h_steps - seq.mean_h_steps).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_counts_violations_below_bound() {
        let config = SimulationConfig::new(4, 2, 2, 0);
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let point = sweep(
            config,
            &inputs,
            |i| PhasedRacing::new(2, Value::Int([1, 2][i])),
            &consensus(),
            0..120,
            2_000_000,
        )
        .unwrap();
        assert!(
            point.task_violations > 0,
            "expected extracted consensus violations below the bound"
        );
    }
}
