//! Direct simulators (paper §4.1, Algorithm 5).
//!
//! A direct simulator `q_i` simulates a single process `p_{i,1}`
//! step-by-step: an `M.Scan` for each of its scans, a one-component
//! `M.Block-Update` for each of its updates (the returned view is
//! ignored). When the simulated process outputs, the simulator outputs
//! the same value.

use rsim_smr::process::{ProtocolStep, SnapshotProtocol};
use rsim_smr::value::Value;
use rsim_snapshot::client::{AugOp, AugOutcome};

/// Driver phase of a simulated process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LocalPhase {
    /// The process's next step is a scan.
    ReadyToScan,
    /// The process is poised to update `(component, value)`.
    Poised(usize, Value),
    /// The process has output.
    Done(Value),
}

/// A direct simulator for one simulated process.
#[derive(Clone, Debug)]
pub struct DirectSimulator<P> {
    process: P,
    phase: LocalPhase,
    output: Option<Value>,
    scans: usize,
    block_updates: usize,
}

impl<P: SnapshotProtocol> DirectSimulator<P> {
    /// Creates a direct simulator for `process` (initially poised to
    /// scan, per Assumption 1).
    pub fn new(process: P) -> Self {
        DirectSimulator {
            process,
            phase: LocalPhase::ReadyToScan,
            output: None,
            scans: 0,
            block_updates: 0,
        }
    }

    /// The simulator's output, if it has terminated.
    pub fn output(&self) -> Option<&Value> {
        self.output.as_ref()
    }

    /// The simulated process's current driver phase.
    pub fn phase(&self) -> &LocalPhase {
        &self.phase
    }

    /// `M.Scan`s applied so far.
    pub fn scan_count(&self) -> usize {
        self.scans
    }

    /// `M.Block-Update`s applied so far.
    pub fn block_update_count(&self) -> usize {
        self.block_updates
    }

    /// The next `M` operation to apply, or `None` if terminated.
    pub fn next_op(&mut self) -> Option<AugOp> {
        if self.output.is_some() {
            return None;
        }
        match &self.phase {
            LocalPhase::ReadyToScan => Some(AugOp::Scan),
            LocalPhase::Poised(c, v) => Some(AugOp::BlockUpdate {
                components: vec![*c],
                values: vec![v.clone()],
            }),
            LocalPhase::Done(_) => None,
        }
    }

    /// Absorbs the outcome of the operation issued by
    /// [`DirectSimulator::next_op`].
    ///
    /// # Panics
    ///
    /// Panics on an outcome that does not match the issued operation.
    pub fn on_outcome(&mut self, outcome: &AugOutcome) {
        match (outcome, &self.phase) {
            (AugOutcome::Scan(scan), LocalPhase::ReadyToScan) => {
                self.scans += 1;
                match self.process.on_scan(&scan.view) {
                    ProtocolStep::Update(c, v) => {
                        self.phase = LocalPhase::Poised(c, v);
                    }
                    ProtocolStep::Output(y) => {
                        self.phase = LocalPhase::Done(y.clone());
                        self.output = Some(y);
                    }
                }
            }
            (AugOutcome::BlockUpdate(_), LocalPhase::Poised(..)) => {
                self.block_updates += 1;
                self.phase = LocalPhase::ReadyToScan;
            }
            (outcome, phase) => {
                panic!("direct simulator got {outcome:?} in phase {phase:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_protocols::racing::PhasedRacing;
    use rsim_snapshot::real::RealSystem;

    #[test]
    fn direct_simulator_solo_run_decides() {
        let mut rs = RealSystem::new(1, 2);
        let mut sim = DirectSimulator::new(PhasedRacing::new(2, Value::Int(7)));
        let mut guard = 0;
        while sim.output().is_none() {
            let op = sim.next_op().expect("not terminated");
            rs.begin(0, op);
            let outcome = rs.run_to_completion(0);
            sim.on_outcome(&outcome);
            guard += 1;
            assert!(guard < 100, "did not terminate");
        }
        assert_eq!(sim.output(), Some(&Value::Int(7)));
        // Alternates scan / block-update, ends with a scan.
        assert_eq!(sim.scan_count(), sim.block_update_count() + 1);
    }
}
