//! The Lemma 26/27 validator: rebuild the simulated execution from the
//! real trace and replay it against fresh protocol instances.
//!
//! Lemma 26 asserts that for every real execution there is a legal
//! execution σ of Π whose steps are
//! `α₁ ζ₁ γ₁ β₁ ⋯ α_ℓ ζ_ℓ γ_ℓ β_ℓ α_{ℓ+1}`: the linearized simulated
//! steps, with each revision's hidden solo execution ζ_t spliced in at
//! the point `T` whose contents the atomic Block-Update `B_t` returned.
//! Lemma 27 appends, for each covering simulator that completed
//! `Construct(m)`, its full block update β followed by `p_{i,1}`'s
//! terminating solo execution ξ.
//!
//! [`validate`] performs the construction *and then executes it*: a
//! fresh copy of every simulated process is driven through exactly
//! those steps against a fresh copy of `M`. Every step must be the
//! process's actual next step (scans must return what the process will
//! act on; updates must match what it is poised to write), and each
//! simulator's output must equal the output of exactly one of its
//! simulated processes. This is a machine check of the paper's central
//! invariant.

use crate::covering::RevisionRecord;
use crate::simulation::Simulation;
use rsim_smr::error::ModelError;
use rsim_smr::process::{ProtocolStep, SnapshotProtocol};
use rsim_smr::value::Value;
use rsim_snapshot::client::AugOutcome;
use rsim_snapshot::spec::{atomic_windows, linearize, LinOp};
use rsim_snapshot::timestamp::Timestamp;
use std::collections::HashMap;

/// One step of the reconstructed simulated execution σ̄.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimStep {
    /// The simulator owning the acting process.
    pub sim: usize,
    /// 1-based index of the acting process within its simulator.
    pub local: usize,
    /// The step.
    pub kind: StepKind,
}

/// A simulated process step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// An `M.scan`.
    Scan,
    /// An `M.update(component, value)`.
    Update(usize, Value),
}

/// Outcome of the replay.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Total steps of the reconstructed execution σ̄.
    pub steps: usize,
    /// Steps contributed by revisions (the ζ_t) and Algorithm 7 tails.
    pub hidden_steps: usize,
    /// Per-simulator: the replayed output of its deciding process.
    pub outputs: Vec<Value>,
    /// All validation errors (empty means Lemma 26/27 hold for this
    /// run).
    pub errors: Vec<String>,
}

impl ReplayReport {
    /// Did the replay validate?
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Expands a revision (or ξ tail) into its step sequence:
/// `Scan, U(c₁,v₁), Scan, U(c₂,v₂), …, Scan`.
fn solo_steps(sim: usize, local: usize, hidden: &[(usize, Value)]) -> Vec<SimStep> {
    let mut steps = Vec::with_capacity(2 * hidden.len() + 1);
    for (c, v) in hidden {
        steps.push(SimStep { sim, local, kind: StepKind::Scan });
        steps.push(SimStep { sim, local, kind: StepKind::Update(*c, v.clone()) });
    }
    steps.push(SimStep { sim, local, kind: StepKind::Scan });
    steps
}

/// Rebuilds the simulated execution σ̄ of Lemmas 26/27 from a finished
/// simulation. Returns `(steps, hidden_count)` where `hidden_count` is
/// the number of steps contributed by revisions and Algorithm 7 tails.
///
/// # Errors
///
/// Returns [`ModelError::ReplayMismatch`] if the run is not finished,
/// contains incomplete Block-Updates, or an atomic Block-Update has no
/// valid window (a specification violation).
pub fn reconstruct<P: SnapshotProtocol>(
    sim: &Simulation<P>,
) -> Result<(Vec<SimStep>, usize), ModelError> {
    if !sim.all_terminated() {
        return Err(ModelError::ReplayMismatch(
            "simulation has not terminated".into(),
        ));
    }
    let real = sim.real();
    let m = sim.config().m;
    let f = sim.config().f;
    let lin = linearize(real);
    // Reject incomplete Block-Updates (cannot happen in a finished run).
    for op in &lin {
        if matches!(op, LinOp::Update { op_index: None, .. }) {
            return Err(ModelError::ReplayMismatch(
                "linearization contains an incomplete Block-Update".into(),
            ));
        }
    }
    let windows = atomic_windows(real, m, &lin).ok_or_else(|| {
        ModelError::ReplayMismatch("no valid window for an atomic Block-Update".into())
    })?;
    // Map timestamp -> (simulator, revision record).
    let mut revisions: HashMap<&Timestamp, (usize, &RevisionRecord)> = HashMap::new();
    for i in 0..f {
        for rev in sim.revisions(i) {
            revisions.insert(&rev.ts, (i, rev));
        }
    }
    // Insertions: lin position -> ζ steps (ordered by window end).
    let mut insertions: HashMap<usize, Vec<SimStep>> = HashMap::new();
    let mut hidden_count = 0;
    let mut ordered = windows.clone();
    ordered.sort_by_key(|w| w.z);
    for w in &ordered {
        if let Some((i, rev)) = revisions.get(&w.ts) {
            let steps = solo_steps(*i, rev.local_index, &rev.hidden);
            hidden_count += steps.len();
            insertions.entry(w.t).or_default().extend(steps);
        }
    }
    // Map each Block-Update op_index to its component->local mapping.
    let mut bu_locals: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for (op_index, rec) in real.oplog().iter().enumerate() {
        if let AugOutcome::BlockUpdate(b) = &rec.outcome {
            let map = b
                .components
                .iter()
                .enumerate()
                .map(|(g, &c)| (c, g + 1))
                .collect();
            bu_locals.insert(op_index, map);
        }
    }
    // Walk the linearization with insertions.
    let mut steps = Vec::new();
    for (pos, op) in lin.iter().enumerate() {
        if let Some(extra) = insertions.remove(&pos) {
            steps.extend(extra);
        }
        match op {
            LinOp::Scan { pid, .. } => {
                steps.push(SimStep { sim: *pid, local: 1, kind: StepKind::Scan });
            }
            LinOp::Update { pid, component, value, op_index, .. } => {
                let oi = op_index.expect("checked above");
                let local = bu_locals[&oi][component];
                steps.push(SimStep {
                    sim: *pid,
                    local,
                    kind: StepKind::Update(*component, value.clone()),
                });
            }
        }
    }
    if let Some(extra) = insertions.remove(&lin.len()) {
        steps.extend(extra);
    }
    debug_assert!(insertions.is_empty(), "insertion past the execution end");
    // Lemma 27 tails.
    for i in 0..f {
        if let Some(fb) = sim.final_block(i) {
            for (g, (&c, v)) in
                fb.block.components.iter().zip(&fb.block.values).enumerate()
            {
                steps.push(SimStep {
                    sim: i,
                    local: g + 1,
                    kind: StepKind::Update(c, v.clone()),
                });
                hidden_count += 1;
            }
            let xi = solo_steps(i, 1, &fb.xi_hidden);
            hidden_count += xi.len();
            steps.extend(xi);
        }
    }
    Ok((steps, hidden_count))
}

/// Reconstructs σ̄ and replays it against fresh protocol instances,
/// checking every step and the simulators' outputs (Lemmas 26 and 27).
///
/// `make_protocol(i)` must construct the same initial processes the
/// simulation was built with.
///
/// # Errors
///
/// Propagates [`reconstruct`] errors; validation failures are reported
/// in the returned [`ReplayReport::errors`] instead.
pub fn validate<P: SnapshotProtocol>(
    sim: &Simulation<P>,
    make_protocol: impl Fn(usize) -> P,
) -> Result<ReplayReport, ModelError> {
    let (steps, hidden_steps) = reconstruct(sim)?;
    let f = sim.config().f;
    let m = sim.config().m;
    let mut errors = Vec::new();

    #[derive(Debug)]
    enum Phase {
        Ready,
        Poised(usize, Value),
        Done(Value),
    }
    // Fresh processes: covering simulators own m, direct own 1.
    let mut procs: Vec<Vec<P>> = (0..f)
        .map(|i| {
            let count = if sim.is_covering(i) { m } else { 1 };
            (0..count).map(|_| make_protocol(i)).collect()
        })
        .collect();
    let mut phases: Vec<Vec<Phase>> = procs
        .iter()
        .map(|row| row.iter().map(|_| Phase::Ready).collect())
        .collect();
    let mut contents = vec![Value::Nil; m];

    for (idx, step) in steps.iter().enumerate() {
        let g = step.local - 1;
        match (&step.kind, &phases[step.sim][g]) {
            (StepKind::Scan, Phase::Ready) => {
                match procs[step.sim][g].on_scan(&contents) {
                    ProtocolStep::Update(c, v) => {
                        phases[step.sim][g] = Phase::Poised(c, v);
                    }
                    ProtocolStep::Output(y) => {
                        phases[step.sim][g] = Phase::Done(y);
                    }
                }
            }
            (StepKind::Update(c, v), Phase::Poised(pc, pv)) => {
                if c != pc || v != pv {
                    errors.push(format!(
                        "step {idx}: process ({}, {}) poised to update \
                         ({pc}, {pv:?}) but σ̄ says ({c}, {v:?})",
                        step.sim, step.local
                    ));
                }
                contents[*c] = v.clone();
                phases[step.sim][g] = Phase::Ready;
            }
            (kind, phase) => {
                errors.push(format!(
                    "step {idx}: process ({}, {}) in phase {phase:?} cannot \
                     take step {kind:?}",
                    step.sim, step.local
                ));
                // Keep going for more diagnostics.
                if let StepKind::Update(c, v) = kind {
                    contents[*c] = v.clone();
                    phases[step.sim][g] = Phase::Ready;
                }
            }
        }
    }

    // Lemma 27: exactly one process per simulator outputs, with the
    // simulator's value.
    let mut outputs = Vec::new();
    for (i, row) in phases.iter().enumerate() {
        let done: Vec<&Value> = row
            .iter()
            .filter_map(|p| match p {
                Phase::Done(y) => Some(y),
                _ => None,
            })
            .collect();
        let sim_out = sim.output(i).expect("terminated");
        if done.len() != 1 {
            errors.push(format!(
                "simulator {i}: {} simulated processes output (expected 1)",
                done.len()
            ));
        }
        match done.first() {
            Some(y) if **y == *sim_out => outputs.push((*y).clone()),
            Some(y) => {
                errors.push(format!(
                    "simulator {i} output {sim_out:?} but its simulated \
                     process output {y:?}"
                ));
                outputs.push((*y).clone());
            }
            None => outputs.push(sim_out.clone()),
        }
    }

    Ok(ReplayReport { steps: steps.len(), hidden_steps, outputs, errors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimulationConfig;
    use rsim_protocols::racing::PhasedRacing;

    fn consensus_sim(n: usize, m: usize, inputs: &[i64]) -> Simulation<PhasedRacing> {
        let f = inputs.len();
        let vals: Vec<Value> = inputs.iter().map(|&v| Value::Int(v)).collect();
        let config = SimulationConfig::new(n, m, f, 0);
        Simulation::new(config, vals.clone(), move |i| {
            PhasedRacing::new(m, vals[i].clone())
        })
        .unwrap()
    }

    #[test]
    fn replay_validates_round_robin_run() {
        let mut sim = consensus_sim(4, 2, &[1, 2]);
        sim.run_round_robin(2_000_000).unwrap();
        let report =
            validate(&sim, |i| PhasedRacing::new(2, Value::Int([1, 2][i]))).unwrap();
        assert!(report.is_ok(), "errors: {:#?}", report.errors);
        assert_eq!(report.outputs.len(), 2);
    }

    #[test]
    fn replay_validates_many_random_runs() {
        for seed in 0..30 {
            let mut sim = consensus_sim(4, 2, &[1, 2]);
            sim.run_random(seed, 2_000_000).unwrap();
            assert!(sim.all_terminated(), "seed {seed}");
            let report = validate(&sim, |i| {
                PhasedRacing::new(2, Value::Int([1, 2][i]))
            })
            .unwrap();
            assert!(report.is_ok(), "seed {seed}: {:#?}", report.errors);
        }
    }

    #[test]
    fn replay_counts_hidden_steps_when_revisions_happen() {
        let mut any_hidden = false;
        for seed in 0..20 {
            let mut sim = consensus_sim(6, 2, &[1, 2, 3]);
            sim.run_random(seed, 4_000_000).unwrap();
            let report = validate(&sim, |i| {
                PhasedRacing::new(2, Value::Int([1, 2, 3][i]))
            })
            .unwrap();
            assert!(report.is_ok(), "seed {seed}: {:#?}", report.errors);
            if report.hidden_steps > 0 {
                any_hidden = true;
            }
        }
        assert!(any_hidden, "no run exercised hidden steps");
    }

    #[test]
    fn replay_is_not_vacuous_wrong_protocol_fails() {
        // Vacuity guard: replaying against the WRONG protocol family
        // (different inputs) must produce mismatches.
        let mut sim = consensus_sim(4, 2, &[1, 2]);
        sim.run_round_robin(2_000_000).unwrap();
        let report = validate(&sim, |_| PhasedRacing::new(2, Value::Int(77)))
            .unwrap();
        assert!(
            !report.is_ok(),
            "replaying a different protocol must not validate"
        );
    }

    #[test]
    fn replay_rejects_unfinished_runs() {
        let sim = consensus_sim(4, 2, &[1, 2]);
        assert!(matches!(
            reconstruct(&sim),
            Err(ModelError::ReplayMismatch(_))
        ));
    }

    #[test]
    fn reconstruction_is_deterministic() {
        let mut sim = consensus_sim(4, 2, &[1, 2]);
        sim.run_round_robin(2_000_000).unwrap();
        let a = reconstruct(&sim).unwrap();
        let b = reconstruct(&sim).unwrap();
        assert_eq!(a, b);
    }
}
