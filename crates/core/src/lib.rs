//! `rsim-core`: the paper's contribution — the revisionist simulation
//! (paper §4) and its quantitative consequences.
//!
//! * [`bounds`] — Theorem 21 / Corollary 33 / Corollary 34 formulas,
//!   the `a(r)`/`b(i)` Block-Update budgets, and the partition
//!   feasibility predicate that *is* the space bound.
//! * [`direct`] — direct simulators (Algorithm 5).
//! * [`covering`] — covering simulators with the resumable
//!   `Construct(r)` recursion and revision of the past
//!   (Algorithms 6–7).
//! * [`simulation`] — the full f-simulator driver over the augmented
//!   snapshot real system.
//! * [`replay`] — the Lemma 26/27 validator: rebuilds the simulated
//!   execution (hidden revision steps included) from the real trace
//!   and replays it step-by-step against fresh protocol instances.
//! * [`stats`] — sweep aggregation: wait-freedom, replay validity,
//!   budget adherence and violation frequency over schedule batches
//!   (the experiments-report backend).
//! * [`decomposition`] — the §4.3 block decomposition
//!   `α₁γ₁β₁⋯α_{ℓ+1}` as an explicit validated artifact.
//! * [`threaded`] — the same simulators on real OS threads over the
//!   thread-shared augmented snapshot (the OS scheduler as adversary).
//! * [`bg`] — the BG simulation baseline \[15\]: safe-agreement boxes
//!   and the blocking behaviour the revisionist simulation avoids.
//! * [`audit`] — the theorem as a tool: audit a protocol's space claim
//!   against Corollary 33 and extract counterexample evidence.
//!
//! # Example: the Corollary 33 reduction, live
//!
//! ```
//! use rsim_core::bounds::kset_space_lower_bound;
//! use rsim_core::simulation::{Simulation, SimulationConfig};
//! use rsim_protocols::racing::PhasedRacing;
//! use rsim_smr::value::Value;
//!
//! // Obstruction-free consensus among n = 4 processes needs 4
//! // registers; a protocol on m = 2 < 4 can be simulated wait-free by
//! // f = 2 processes.
//! assert_eq!(kset_space_lower_bound(4, 1, 1), 4);
//! let config = SimulationConfig::new(4, 2, 2, 0);
//! let inputs = vec![Value::Int(1), Value::Int(2)];
//! let mut sim = Simulation::new(config, inputs, |i| {
//!     PhasedRacing::new(2, Value::Int([1, 2][i]))
//! }).unwrap();
//! sim.run_round_robin(1_000_000).unwrap();
//! assert!(sim.all_terminated());
//! ```

pub mod audit;
pub mod bg;
pub mod bounds;
pub mod covering;
pub mod decomposition;
pub mod direct;
pub mod replay;
pub mod simulation;
pub mod stats;
pub mod threaded;

pub use bounds::{kset_space_lower_bound, kset_space_upper_bound};
pub use covering::{CoveringSimulator, RevisionRecord};
pub use direct::DirectSimulator;
pub use simulation::{Simulation, SimulationConfig};
