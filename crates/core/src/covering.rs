//! Covering simulators (paper §4.1, Algorithms 6 and 7) — the
//! revisionist core.
//!
//! A covering simulator `q_i` simulates `m` processes
//! `p_{i,1}, …, p_{i,m}` and tries to build a *block update* covering
//! all `m` components of the simulated snapshot `M`. It does so with
//! the recursive procedure `Construct(r)`:
//!
//! * `Construct(1)` applies one `M.Scan`, feeds the view to `p_{i,1}`,
//!   and returns the one-component block update `p_{i,1}` is now poised
//!   to perform (or terminates if `p_{i,1}` output).
//! * `Construct(r)` repeatedly obtains an `(r−1)`-block from
//!   `Construct(r−1)`. If the block's component set was previously
//!   covered by an *atomic* `M.Block-Update` (recorded in the set `A`
//!   with the view it returned), the simulator **revises the past** of
//!   `p_{i,r}`: it locally simulates a solo execution of `p_{i,r}`
//!   against that view until `p_{i,r}` is poised to update a component
//!   outside the set, extending the block to `r` components. Otherwise
//!   it applies the `(r−1)`-block as an `M.Block-Update` (advancing
//!   `p_{i,1..r−1}` past their updates) and, if the Block-Update was
//!   atomic, records `(components, view)` in `A`.
//!
//! When `Construct(m)` returns, the simulator locally simulates the
//! full block (which overwrites all of `M`) followed by a terminating
//! solo execution of `p_{i,1}`, and outputs what `p_{i,1}` outputs
//! (Algorithm 7).
//!
//! The recursion is implemented as an explicit frame stack so each
//! `M.Scan` / `M.Block-Update` can be suspended while other simulators
//! take atomic H-steps. Every revision is logged ([`RevisionRecord`])
//! so the Lemma 26 validator can rebuild and replay the simulated
//! execution, hidden steps included.

use crate::bounds::binomial;
use crate::direct::LocalPhase;
use rsim_smr::error::ModelError;
use rsim_smr::process::{run_solo_locally, ProtocolStep, SnapshotProtocol};
use rsim_smr::value::Value;
use rsim_snapshot::client::{AugOp, AugOutcome};
use rsim_snapshot::timestamp::Timestamp;
use std::collections::BTreeSet;

/// A block update under construction: `p_{i,g+1}` is poised to perform
/// `update(components[g], values[g])`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Block {
    /// Components, in process order `p_{i,1}, p_{i,2}, …`.
    pub components: Vec<usize>,
    /// Values, parallel to `components`.
    pub values: Vec<Value>,
}

/// How a logged revision ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RevisionOutcome {
    /// The revised process is poised to update `(component, value)`
    /// outside the covered set.
    Poised(usize, Value),
    /// The revised process output a value.
    Output(Value),
}

/// One revision of the past: process `p_{i,local_index}` was locally
/// simulated against the view returned by the atomic Block-Update with
/// timestamp `ts`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RevisionRecord {
    /// Timestamp of the atomic `M.Block-Update` whose view was used.
    pub ts: Timestamp,
    /// 1-based index of the revised process within the simulator.
    pub local_index: usize,
    /// The hidden solo steps: `(component, value)` updates, all within
    /// the covered component set.
    pub hidden: Vec<(usize, Value)>,
    /// How the revision ended.
    pub outcome: RevisionOutcome,
}

/// The Algorithm 7 tail: the final full block update and `p_{i,1}`'s
/// terminating solo execution, both locally simulated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FinalBlock {
    /// The m-component block (process order).
    pub block: Block,
    /// `p_{i,1}`'s solo updates after the block, as `(component,
    /// value)` pairs.
    pub xi_hidden: Vec<(usize, Value)>,
    /// `p_{i,1}`'s output.
    pub output: Value,
}

/// An entry of the set `A`: component set, the view the atomic
/// Block-Update returned, and its timestamp (identifying it for the
/// replay).
#[derive(Clone, Debug)]
struct AEntry {
    set: BTreeSet<usize>,
    view: Vec<Value>,
    ts: Timestamp,
}

#[derive(Clone, Debug)]
enum FrameState {
    /// `Construct(1)`: issue an `M.Scan`.
    Base,
    /// `Construct(1)`: `M.Scan` in flight.
    BaseWaiting,
    /// `Construct(r>1)`: push a child `Construct(r−1)`.
    CallChild,
    /// `Construct(r>1)`: the child returned this block.
    ChildReturned(Block),
    /// `Construct(r>1)`: `M.Block-Update` of this block in flight.
    BuWaiting(Block),
}

#[derive(Clone, Debug)]
struct Frame {
    r: usize,
    a: Vec<AEntry>,
    state: FrameState,
}

impl Frame {
    fn new(r: usize) -> Self {
        let state = if r == 1 { FrameState::Base } else { FrameState::CallChild };
        Frame { r, a: Vec::new(), state }
    }
}

/// A covering simulator for `m` simulated processes.
#[derive(Clone, Debug)]
pub struct CoveringSimulator<P> {
    m: usize,
    procs: Vec<P>,
    phases: Vec<LocalPhase>,
    stack: Vec<Frame>,
    output: Option<Value>,
    revisions: Vec<RevisionRecord>,
    final_block: Option<FinalBlock>,
    scans: usize,
    block_updates: usize,
    solo_budget: usize,
    error: Option<ModelError>,
}

impl<P: SnapshotProtocol> CoveringSimulator<P> {
    /// Creates a covering simulator over the `m` simulated processes
    /// `procs` (all initialized with the simulator's input).
    ///
    /// `solo_budget` bounds every local solo simulation; it must exceed
    /// the protocol's solo step complexity (obstruction-freedom
    /// guarantees finiteness).
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty or its length disagrees with the
    /// protocol's component count.
    pub fn new(procs: Vec<P>, solo_budget: usize) -> Self {
        assert!(!procs.is_empty(), "need m >= 1 simulated processes");
        let m = procs.len();
        assert_eq!(
            m,
            procs[0].components(),
            "a covering simulator simulates exactly m processes"
        );
        CoveringSimulator {
            m,
            phases: vec![LocalPhase::ReadyToScan; m],
            procs,
            stack: vec![Frame::new(m)],
            output: None,
            revisions: Vec::new(),
            final_block: None,
            scans: 0,
            block_updates: 0,
            solo_budget,
            error: None,
        }
    }

    /// The simulator's output, if it has terminated.
    pub fn output(&self) -> Option<&Value> {
        self.output.as_ref()
    }

    /// The logged revisions of the past.
    pub fn revisions(&self) -> &[RevisionRecord] {
        &self.revisions
    }

    /// The Algorithm 7 tail, if the simulator completed `Construct(m)`.
    pub fn final_block(&self) -> Option<&FinalBlock> {
        self.final_block.as_ref()
    }

    /// Driver phases of the simulated processes.
    pub fn phases(&self) -> &[LocalPhase] {
        &self.phases
    }

    /// `M.Scan`s applied so far.
    pub fn scan_count(&self) -> usize {
        self.scans
    }

    /// `M.Block-Update`s applied so far.
    pub fn block_update_count(&self) -> usize {
        self.block_updates
    }

    /// Advances internal computation until an `M` operation is needed
    /// (returned) or the simulator terminates (`Ok(None)`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BudgetExhausted`] if a local solo
    /// simulation exceeds the budget (the protocol is not
    /// obstruction-free).
    pub fn next_op(&mut self) -> Result<Option<AugOp>, ModelError> {
        loop {
            if let Some(err) = self.error.take() {
                return Err(err);
            }
            if self.output.is_some() {
                return Ok(None);
            }
            let Some(frame) = self.stack.last_mut() else {
                unreachable!("stack never empties without output");
            };
            match std::mem::replace(&mut frame.state, FrameState::Base) {
                FrameState::Base => {
                    frame.state = FrameState::BaseWaiting;
                    return Ok(Some(AugOp::Scan));
                }
                FrameState::BaseWaiting => {
                    unreachable!("next_op called while M.Scan in flight")
                }
                FrameState::CallChild => {
                    let r = frame.r;
                    frame.state = FrameState::CallChild;
                    self.stack.push(Frame::new(r - 1));
                }
                FrameState::ChildReturned(block) => {
                    let set: BTreeSet<usize> =
                        block.components.iter().copied().collect();
                    let entry = frame.a.iter().find(|e| e.set == set).cloned();
                    match entry {
                        Some(entry) => {
                            // Revise the past of p_{i,r}.
                            frame.state = FrameState::CallChild;
                            let r = frame.r;
                            self.revise(r, block, entry)?;
                            if self.output.is_some() {
                                return Ok(None);
                            }
                        }
                        None => {
                            frame.state = FrameState::BuWaiting(block.clone());
                            return Ok(Some(AugOp::BlockUpdate {
                                components: block.components,
                                values: block.values,
                            }));
                        }
                    }
                }
                FrameState::BuWaiting(_) => {
                    unreachable!("next_op called while M.Block-Update in flight")
                }
            }
        }
    }

    /// Revises the past of `p_{i,r}` using the view in `entry`,
    /// extending `block` to `r` components and returning it to the
    /// parent frame (or terminating the simulator on output).
    fn revise(&mut self, r: usize, block: Block, entry: AEntry) -> Result<(), ModelError> {
        let mut contents = entry.view.clone();
        let set = entry.set.clone();
        let allowed = move |c: usize| set.contains(&c);
        let result = run_solo_locally(
            &mut self.procs[r - 1],
            &mut contents,
            &allowed,
            self.solo_budget,
        );
        let Some((hidden, stop)) = result else {
            return Err(ModelError::BudgetExhausted {
                budget: self.solo_budget,
                context: format!(
                    "revision of local process {r}: protocol not obstruction-free?"
                ),
            });
        };
        match stop {
            ProtocolStep::Update(jr, vr) => {
                self.revisions.push(RevisionRecord {
                    ts: entry.ts,
                    local_index: r,
                    hidden,
                    outcome: RevisionOutcome::Poised(jr, vr.clone()),
                });
                self.phases[r - 1] = LocalPhase::Poised(jr, vr.clone());
                let mut extended = block;
                extended.components.push(jr);
                extended.values.push(vr);
                self.return_block(extended);
            }
            ProtocolStep::Output(y) => {
                self.revisions.push(RevisionRecord {
                    ts: entry.ts,
                    local_index: r,
                    hidden,
                    outcome: RevisionOutcome::Output(y.clone()),
                });
                self.phases[r - 1] = LocalPhase::Done(y.clone());
                self.output = Some(y);
            }
        }
        Ok(())
    }

    /// Pops the current frame, delivering `block` to the parent, or —
    /// at the bottom — runs the Algorithm 7 tail.
    fn return_block(&mut self, block: Block) {
        self.stack.pop();
        match self.stack.last_mut() {
            Some(parent) => {
                debug_assert!(matches!(parent.state, FrameState::CallChild));
                parent.state = FrameState::ChildReturned(block);
            }
            None => self.finish(block),
        }
    }

    /// Algorithm 7: locally simulate the m-component block followed by
    /// `p_{i,1}`'s terminating solo execution; output what it outputs.
    fn finish(&mut self, block: Block) {
        debug_assert_eq!(block.components.len(), self.m);
        let mut contents = vec![Value::Nil; self.m];
        for (&c, v) in block.components.iter().zip(&block.values) {
            contents[c] = v.clone();
        }
        // The states are saved and restored (Algorithm 7 lines 3/5): we
        // simulate a clone, leaving `procs` untouched.
        let mut p1 = self.procs[0].clone();
        let result =
            run_solo_locally(&mut p1, &mut contents, &|_| true, self.solo_budget);
        let Some((xi_hidden, stop)) = result else {
            // Budget exhaustion here means the protocol is not
            // obstruction-free; surface the error at the next
            // `next_op` call.
            self.error = Some(ModelError::BudgetExhausted {
                budget: self.solo_budget,
                context: "terminating solo execution of p1: protocol not \
                          obstruction-free"
                    .into(),
            });
            return;
        };
        let ProtocolStep::Output(y) = stop else {
            unreachable!("run_solo_locally with all components allowed only stops at output")
        };
        self.final_block = Some(FinalBlock {
            block,
            xi_hidden,
            output: y.clone(),
        });
        self.output = Some(y);
    }

    /// Absorbs the outcome of the operation returned by
    /// [`CoveringSimulator::next_op`].
    ///
    /// # Panics
    ///
    /// Panics on an outcome that does not match the in-flight
    /// operation.
    pub fn on_outcome(&mut self, outcome: &AugOutcome) {
        let frame = self.stack.last_mut().expect("operation was in flight");
        match (&outcome, std::mem::replace(&mut frame.state, FrameState::Base)) {
            (AugOutcome::Scan(scan), FrameState::BaseWaiting) => {
                self.scans += 1;
                debug_assert_eq!(frame.r, 1);
                debug_assert_eq!(self.phases[0], LocalPhase::ReadyToScan);
                match self.procs[0].on_scan(&scan.view) {
                    ProtocolStep::Update(j, v) => {
                        self.phases[0] = LocalPhase::Poised(j, v.clone());
                        self.return_block(Block {
                            components: vec![j],
                            values: vec![v],
                        });
                    }
                    ProtocolStep::Output(y) => {
                        self.phases[0] = LocalPhase::Done(y.clone());
                        self.output = Some(y);
                    }
                }
            }
            (AugOutcome::BlockUpdate(bu), FrameState::BuWaiting(block)) => {
                self.block_updates += 1;
                // The Block-Update performed the poised updates of
                // p_{i,1..r-1}: advance them to their next scans.
                for g in 0..block.components.len() {
                    debug_assert!(matches!(self.phases[g], LocalPhase::Poised(..)));
                    self.phases[g] = LocalPhase::ReadyToScan;
                }
                if let Some(view) = &bu.result {
                    frame.a.push(AEntry {
                        set: block.components.iter().copied().collect(),
                        view: view.clone(),
                        ts: bu.ts.clone(),
                    });
                    // Proposition 28: |A| ≤ C(m, r−1) — the component
                    // sets recorded in A are distinct (r−1)-subsets.
                    debug_assert!(
                        frame.a.len() <= binomial(self.m, frame.r - 1) as usize,
                        "Proposition 28 violated"
                    );
                }
                frame.state = FrameState::CallChild;
            }
            (outcome, state) => {
                panic!("covering simulator got {outcome:?} in frame state {state:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_protocols::racing::PhasedRacing;
    use rsim_smr::process::{ProtocolStep, SnapshotProtocol};
    use rsim_smr::value::Value;
    use rsim_snapshot::real::RealSystem;

    fn drive_solo(sim: &mut CoveringSimulator<PhasedRacing>, rs: &mut RealSystem, i: usize) {
        let mut guard = 0;
        while sim.output().is_none() {
            match sim.next_op().unwrap() {
                Some(op) => {
                    rs.begin(i, op);
                    let outcome = rs.run_to_completion(i);
                    sim.on_outcome(&outcome);
                }
                None => break,
            }
            guard += 1;
            assert!(guard < 10_000, "covering simulator did not terminate");
        }
    }

    #[test]
    fn solo_covering_simulator_terminates_with_own_input() {
        let m = 2;
        let mut rs = RealSystem::new(1, m);
        let procs = vec![PhasedRacing::new(m, Value::Int(9)); m];
        let mut sim = CoveringSimulator::new(procs, 10_000);
        drive_solo(&mut sim, &mut rs, 0);
        // Validity: with all simulated inputs 9, the output must be 9.
        assert_eq!(sim.output(), Some(&Value::Int(9)));
    }

    /// Cycles its updates over the components, outputting only after
    /// `limit` updates — slow enough that `Construct(m)` completes.
    #[derive(Clone, Debug)]
    struct RoundRobinWriter {
        m: usize,
        step: usize,
        limit: usize,
    }

    impl SnapshotProtocol for RoundRobinWriter {
        fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
            if self.step >= self.limit {
                return ProtocolStep::Output(Value::Int(self.step as i64));
            }
            let c = self.step % self.m;
            self.step += 1;
            ProtocolStep::Update(c, Value::Int(self.step as i64))
        }
        fn components(&self) -> usize {
            self.m
        }
    }

    #[test]
    fn solo_covering_simulator_constructs_full_block() {
        let m = 3;
        let mut rs = RealSystem::new(1, m);
        let procs = vec![RoundRobinWriter { m, step: 0, limit: 500 }; m];
        let mut sim = CoveringSimulator::new(procs, 10_000);
        let mut guard = 0;
        while sim.output().is_none() {
            match sim.next_op().unwrap() {
                Some(op) => {
                    rs.begin(0, op);
                    let outcome = rs.run_to_completion(0);
                    sim.on_outcome(&outcome);
                }
                None => break,
            }
            guard += 1;
            assert!(guard < 10_000);
        }
        let fb = sim.final_block().expect("terminated via Construct(m)");
        assert_eq!(fb.block.components.len(), m);
        // The block covers all m distinct components.
        let set: BTreeSet<usize> = fb.block.components.iter().copied().collect();
        assert_eq!(set.len(), m);
        // Revisions happened (the past of p2/p3 was revised).
        assert!(!sim.revisions().is_empty());
        // Hidden revision steps stay within the covered component sets.
        for rev in sim.revisions() {
            assert!(rev.local_index >= 2);
        }
    }

    #[test]
    fn phased_racing_solo_terminates_via_some_path() {
        // With PhasedRacing all simulated processes share the input, so
        // one of them may decide during construction; either way the
        // simulator outputs the (valid) input value.
        let m = 3;
        let mut rs = RealSystem::new(1, m);
        let procs = vec![PhasedRacing::new(m, Value::Int(4)); m];
        let mut sim = CoveringSimulator::new(procs, 10_000);
        drive_solo(&mut sim, &mut rs, 0);
        assert_eq!(sim.output(), Some(&Value::Int(4)));
    }

    #[test]
    fn block_update_counts_respect_lemma_29_solo() {
        // Solo (all Block-Updates atomic): at most a(m) Block-Updates.
        for m in 1..=3 {
            let mut rs = RealSystem::new(1, m);
            let procs = vec![PhasedRacing::new(m, Value::Int(1)); m];
            let mut sim = CoveringSimulator::new(procs, 10_000);
            drive_solo(&mut sim, &mut rs, 0);
            let bound = crate::bounds::a_bound(m, m);
            assert!(
                (sim.block_update_count() as u128) <= bound,
                "m={m}: {} > a(m)={bound}",
                sim.block_update_count()
            );
        }
    }

    #[test]
    fn non_obstruction_free_protocol_surfaces_budget_error() {
        /// Spins forever on one component: not obstruction-free.
        #[derive(Clone, Debug)]
        struct Spinner {
            i: i64,
        }
        impl SnapshotProtocol for Spinner {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                self.i += 1;
                ProtocolStep::Update(0, Value::Int(self.i))
            }
            fn components(&self) -> usize {
                1
            }
        }
        // m = 1: Construct(1) immediately yields a full block; the
        // Algorithm 7 tail's solo run of p1 never terminates and the
        // budget error surfaces at the next next_op().
        let mut rs = RealSystem::new(1, 1);
        let mut sim = CoveringSimulator::new(vec![Spinner { i: 0 }], 50);
        let op = sim.next_op().unwrap().expect("first scan");
        rs.begin(0, op);
        let outcome = rs.run_to_completion(0);
        sim.on_outcome(&outcome);
        let err = sim.next_op().unwrap_err();
        assert!(matches!(err, ModelError::BudgetExhausted { .. }));
    }

    #[test]
    fn alternates_scans_and_block_updates() {
        let m = 2;
        let mut rs = RealSystem::new(1, m);
        let procs = vec![PhasedRacing::new(m, Value::Int(3)); m];
        let mut sim = CoveringSimulator::new(procs, 10_000);
        drive_solo(&mut sim, &mut rs, 0);
        // Proposition 24: #scans = #block-updates + 1 (terminating scan
        // may be replaced by a revision, so allow equality too).
        let s = sim.scan_count();
        let b = sim.block_update_count();
        assert!(s == b + 1 || s == b, "scans {s}, block updates {b}");
    }
}
