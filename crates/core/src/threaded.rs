//! The simulation on real OS threads.
//!
//! The model-mode [`crate::simulation::Simulation`] gives the adversary
//! full control of the H-step schedule; this module runs the *same*
//! simulator state machines with one OS thread per simulator over the
//! thread-shared augmented snapshot
//! ([`rsim_snapshot::thread_mode::SharedAug`]). The OS scheduler is the
//! adversary.
//!
//! Because the simulation is wait-free (Lemma 31/32), every thread
//! terminates no matter how the OS schedules them — `run_threaded`
//! simply joins all threads and returns the outputs.

use crate::covering::CoveringSimulator;
use crate::direct::DirectSimulator;
use crate::simulation::SimulationConfig;
use rsim_smr::error::ModelError;
use rsim_smr::process::SnapshotProtocol;
use rsim_smr::value::Value;
use rsim_snapshot::thread_mode::SharedAug;

/// Per-simulator result: output, `(scans, block_updates)`, revisions.
type SimulatorResult = (Value, (usize, usize), usize);

/// Result of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedOutcome {
    /// Output of each simulator.
    pub outputs: Vec<Value>,
    /// `(scans, block_updates)` applied by each simulator.
    pub op_counts: Vec<(usize, usize)>,
    /// Revisions performed by each simulator.
    pub revisions: Vec<usize>,
}

/// Runs the revisionist simulation with one OS thread per simulator.
///
/// `make_protocol(i)` builds a simulated process with simulator `i`'s
/// input, exactly as in [`crate::simulation::Simulation::new`].
///
/// # Errors
///
/// Returns [`ModelError::BadId`] if the partition is infeasible.
///
/// # Panics
///
/// Panics if a simulator thread panics (a protocol violation).
pub fn run_threaded<P>(
    config: SimulationConfig,
    make_protocol: impl Fn(usize) -> P + Send + Sync,
) -> Result<ThreadedOutcome, ModelError>
where
    P: SnapshotProtocol + Send + 'static,
{
    if !config.is_feasible() {
        return Err(ModelError::BadId(format!(
            "infeasible partition: ({} - {})*{} + {} > {}",
            config.f, config.d, config.m, config.d, config.n
        )));
    }
    let aug = SharedAug::new(config.f, config.m);
    let covering_count = config.f - config.d;
    let mut results: Vec<Option<SimulatorResult>> =
        (0..config.f).map(|_| None).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..config.f {
            let aug = std::sync::Arc::clone(&aug);
            let make = &make_protocol;
            handles.push(scope.spawn(move || {
                if i < covering_count {
                    let procs: Vec<P> = (0..config.m).map(|_| make(i)).collect();
                    let mut sim = CoveringSimulator::new(procs, config.solo_budget);
                    while let Some(op) = sim.next_op().expect("solo budget exhausted") {
                        let outcome = aug.apply(i, op);
                        sim.on_outcome(&outcome);
                    }
                    (
                        sim.output().expect("terminated").clone(),
                        (sim.scan_count(), sim.block_update_count()),
                        sim.revisions().len(),
                    )
                } else {
                    let mut sim = DirectSimulator::new(make(i));
                    while let Some(op) = sim.next_op() {
                        let outcome = aug.apply(i, op);
                        sim.on_outcome(&outcome);
                    }
                    (
                        sim.output().expect("terminated").clone(),
                        (sim.scan_count(), sim.block_update_count()),
                        0,
                    )
                }
            }));
        }
        for (i, handle) in handles.into_iter().enumerate() {
            results[i] = Some(handle.join().expect("simulator thread panicked"));
        }
    });

    let mut outputs = Vec::new();
    let mut op_counts = Vec::new();
    let mut revisions = Vec::new();
    for r in results {
        let (out, counts, revs) = r.expect("all threads joined");
        outputs.push(out);
        op_counts.push(counts);
        revisions.push(revs);
    }
    Ok(ThreadedOutcome { outputs, op_counts, revisions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use rsim_protocols::racing::PhasedRacing;
    use rsim_tasks::agreement::consensus;
    use rsim_tasks::task::ColorlessTask;

    #[test]
    fn threaded_simulation_terminates_and_is_valid() {
        // Real threads, real contention: wait-freedom means this joins.
        for round in 0..20 {
            let config = SimulationConfig::new(4, 2, 2, 0);
            let outcome = run_threaded(config, |i| {
                PhasedRacing::new(2, Value::Int([1, 2][i]))
            })
            .unwrap();
            assert_eq!(outcome.outputs.len(), 2);
            for out in &outcome.outputs {
                assert!(
                    *out == Value::Int(1) || *out == Value::Int(2),
                    "round {round}: invalid output {out:?}"
                );
            }
            // Budgets hold under the OS scheduler too.
            for (i, &(_, bus)) in outcome.op_counts.iter().enumerate() {
                assert!((bus as u128) <= bounds::b_bound(2, i + 1));
            }
        }
    }

    #[test]
    fn threaded_equal_inputs_agree() {
        for _ in 0..10 {
            let config = SimulationConfig::new(4, 2, 2, 0);
            let outcome =
                run_threaded(config, |_| PhasedRacing::new(2, Value::Int(9))).unwrap();
            let inputs = [Value::Int(9), Value::Int(9)];
            consensus().validate(&inputs, &outcome.outputs).unwrap();
        }
    }

    #[test]
    fn threaded_mixed_direct_and_covering() {
        let config = SimulationConfig::new(5, 2, 3, 1);
        let outcome = run_threaded(config, |i| {
            PhasedRacing::new(2, Value::Int([1, 2, 3][i]))
        })
        .unwrap();
        assert_eq!(outcome.outputs.len(), 3);
    }

    #[test]
    fn threaded_rejects_infeasible_partitions() {
        let config = SimulationConfig::new(4, 3, 2, 0);
        assert!(run_threaded(config, |_| PhasedRacing::new(3, Value::Int(1))).is_err());
    }
}
