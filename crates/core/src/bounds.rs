//! The paper's quantitative results as executable formulas.
//!
//! * Theorem 21 — the two simulation bounds;
//! * Corollary 33 — `⌊(n−x)/(k+1−x)⌋ + 1` registers for
//!   x-obstruction-free k-set agreement;
//! * Corollary 34 — `min{⌊n/2⌋+1, √(log₂L − log₂ 2)}`-ish bound for
//!   ε-approximate agreement with `L = ½·log₃(1/ε)`;
//! * the `a(r)` / `b(i)` Block-Update budgets of Lemmas 29–31.
//!
//! The feasibility predicate [`simulation_feasible`] is the mechanism
//! of the lower bound: the simulation needs `(f − d)·m + d ≤ n`
//! simulated processes, which holds **exactly when** `m` is below the
//! bound — tested as a property over the whole parameter grid.

/// Binomial coefficient with saturation (the budgets explode quickly).
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result
            .saturating_mul((n - i) as u128)
            .checked_div((i + 1) as u128)
            .unwrap_or(u128::MAX);
    }
    result
}

/// Corollary 33: any x-obstruction-free protocol for k-set agreement
/// among `n > k` processes uses at least `⌊(n−x)/(k+1−x)⌋ + 1`
/// registers.
///
/// # Panics
///
/// Panics unless `1 ≤ x ≤ k < n`.
///
/// # Examples
///
/// ```
/// use rsim_core::bounds::kset_space_lower_bound;
///
/// // Obstruction-free consensus needs n registers (tight).
/// assert_eq!(kset_space_lower_bound(8, 1, 1), 8);
/// // Obstruction-free (n-1)-set agreement needs 2 registers (tight).
/// assert_eq!(kset_space_lower_bound(8, 7, 1), 2);
/// ```
pub fn kset_space_lower_bound(n: usize, k: usize, x: usize) -> usize {
    assert!(1 <= x && x <= k && k < n, "need 1 <= x <= k < n");
    (n - x) / (k + 1 - x) + 1
}

/// The best known upper bound, `n − k + x` registers
/// (Bouzid–Raynal–Sutra \[16\]).
pub fn kset_space_upper_bound(n: usize, k: usize, x: usize) -> usize {
    assert!(1 <= x && x <= k && k < n, "need 1 <= x <= k < n");
    n - k + x
}

/// Theorem 21, second case: for an x-obstruction-free protocol and a
/// task unsolvable wait-free among `f` processes, `m ≥ ⌊(n−x)/(f−x)⌋+1`.
pub fn theorem21_xof_bound(n: usize, f: usize, x: usize) -> usize {
    assert!(x < f && f <= n);
    (n - x) / (f - x) + 1
}

/// Can `f` simulators (`d` of them direct) simulate an n-process
/// protocol over `m` components? Requires `(f−d)·m + d ≤ n` simulated
/// processes (covering simulators need `m` each, direct ones 1 each).
pub fn simulation_feasible(n: usize, m: usize, f: usize, d: usize) -> bool {
    d < f && (f - d) * m + d <= n
}

/// The 2-process ε-approximate agreement step lower bound of
/// Hoest–Shavit \[36\]: `L = ½·log₃(1/ε)` steps, for `ε = 2^{-eps_exp}`.
pub fn approx_step_lower_bound(eps_exp: u32) -> f64 {
    0.5 * (eps_exp as f64) / 3f64.log2()
}

/// Theorem 21, first case: `m ≥ min{⌊n/f⌋ + 1, √(log₂(L)/f)}` for an
/// obstruction-free protocol and a step lower bound `L` on solving the
/// task wait-free among `f` processes.
pub fn theorem21_of_bound(n: usize, f: usize, l: f64) -> f64 {
    let partition = (n / f + 1) as f64;
    let steps = (l.log2() / f as f64).sqrt();
    partition.min(steps)
}

/// Corollary 34: the space lower bound for obstruction-free
/// ε-approximate agreement among `n` processes, `ε = 2^{-eps_exp}`:
/// `min{⌊n/2⌋ + 1, √(log₂ log₃(1/ε) − 2)}` (the paper's constant-2
/// shift absorbs the ½ and f = 2 factors).
pub fn approx_space_lower_bound(n: usize, eps_exp: u32) -> f64 {
    let partition = (n / 2 + 1) as f64;
    let log3 = (eps_exp as f64) / 3f64.log2();
    let steps = (log3.log2() - 2.0).max(0.0).sqrt();
    partition.min(steps)
}

/// `a(r)` (Lemma 29): the maximum number of `M.Block-Update`s a
/// covering simulator applies in a call to `Construct(r)` in which all
/// its Block-Updates are atomic.
///
/// `a(1) = 0`; `a(r) = (C(m, r−1) + 1)·a(r−1) + C(m, r−1)`.
pub fn a_bound(m: usize, r: usize) -> u128 {
    assert!(r >= 1 && r <= m);
    let mut a: u128 = 0;
    for rr in 2..=r {
        let c = binomial(m, rr - 1);
        a = c.saturating_add(1).saturating_mul(a).saturating_add(c);
    }
    a
}

/// `b(i)` (Lemma 30): the maximum number of `M.Block-Update`s covering
/// simulator `q_i` (1-based) applies in any real execution, via the
/// recurrence `b(1) = a(m)`,
/// `b(i) = (a(m−1)+1)·Σ_{j<i} b(j) + a(m)`:
/// every Block-Update by a lower-id simulator can make one of `q_i`'s
/// Block-Updates yield, wasting at most `a(m−1)+1` Block-Updates of
/// reconstruction work, plus the `a(m)` for the all-atomic path.
///
/// (The paper states the closed form `a(m)·(a(m−1)+1)^{i−1}`, which
/// undercounts its own recurrence for small `m`; we use the
/// recurrence, which the measured counts respect.)
pub fn b_bound(m: usize, i: usize) -> u128 {
    assert!(i >= 1);
    if m == 1 {
        // Construct(1) applies no Block-Updates; the final block update
        // to all m = 1 components is locally simulated.
        return 0;
    }
    let waste = a_bound(m, m - 1).saturating_add(1);
    let a_m = a_bound(m, m);
    let mut sum: u128 = 0;
    let mut b = a_m;
    for _ in 1..i {
        sum = sum.saturating_add(b);
        b = waste.saturating_mul(sum).saturating_add(a_m);
    }
    b
}

/// Lemma 31's total step bound for an all-covering (x = 0) simulation:
/// `(2f + 7)·b(f) + 3`, itself at most `2^{f·m²}`.
pub fn simulation_step_bound(m: usize, f: usize) -> u128 {
    (2 * f as u128 + 7)
        .saturating_mul(b_bound(m, f))
        .saturating_add(3)
}

/// The crude closed-form cap `2^{f·m²}` (saturating).
pub fn two_to_fm2(m: usize, f: usize) -> u128 {
    let exp = (f as u32).saturating_mul((m as u32).saturating_mul(m as u32));
    if exp >= 127 {
        u128::MAX
    } else {
        1u128 << exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_bound_is_n() {
        for n in 2..=64 {
            assert_eq!(kset_space_lower_bound(n, 1, 1), n);
            assert_eq!(kset_space_upper_bound(n, 1, 1), n);
        }
    }

    #[test]
    fn n_minus_1_set_agreement_bound_is_2() {
        for n in 3..=64 {
            assert_eq!(kset_space_lower_bound(n, n - 1, 1), 2);
            // Upper bound is x + 1 = 2 as well: tight.
            assert_eq!(kset_space_upper_bound(n, n - 1, 1), 2);
        }
    }

    #[test]
    fn lower_bound_never_exceeds_upper_bound() {
        for n in 2..=40 {
            for k in 1..n {
                for x in 1..=k {
                    let lo = kset_space_lower_bound(n, k, x);
                    let hi = kset_space_upper_bound(n, k, x);
                    assert!(lo <= hi, "n={n} k={k} x={x}: {lo} > {hi}");
                }
            }
        }
    }

    #[test]
    fn feasibility_is_exactly_below_the_bound() {
        // The reduction's mechanism: f = k + 1 simulators with d = x
        // direct ones can partition n processes iff m is strictly below
        // the Corollary 33 bound.
        for n in 2..=40 {
            for k in 1..n {
                for x in 1..=k {
                    let f = k + 1;
                    let bound = kset_space_lower_bound(n, k, x);
                    for m in 1..=n {
                        assert_eq!(
                            simulation_feasible(n, m, f, x),
                            m < bound,
                            "n={n} k={k} x={x} m={m}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn theorem21_xof_matches_corollary33() {
        for n in 2..=30 {
            for k in 1..n {
                for x in 1..=k {
                    assert_eq!(
                        theorem21_xof_bound(n, k + 1, x),
                        kset_space_lower_bound(n, k, x)
                    );
                }
            }
        }
    }

    #[test]
    fn a_bound_small_cases() {
        // a(1) = 0 always.
        assert_eq!(a_bound(3, 1), 0);
        // m = 2: a(2) = (C(2,1)+1)*0 + C(2,1) = 2.
        assert_eq!(a_bound(2, 2), 2);
        // m = 3: a(2) = 3; a(3) = (C(3,2)+1)*3 + C(3,2) = 4*3+3 = 15.
        assert_eq!(a_bound(3, 2), 3);
        assert_eq!(a_bound(3, 3), 15);
    }

    #[test]
    fn a_bound_within_closed_form() {
        // a(r) <= (C(m, m/2) + 1)^(r-1) - 1 <= 2^(m(r-1)).
        for m in 1..=8 {
            for r in 1..=m {
                let a = a_bound(m, r);
                let cap = 1u128 << (m * (r - 1)).min(127);
                assert!(a <= cap, "m={m} r={r}: {a} > {cap}");
            }
        }
    }

    #[test]
    fn b_bound_growth() {
        // m = 2: a(2) = 2, a(1) = 0 → waste = 1:
        // b(1) = 2, b(2) = 1*2 + 2 = 4, b(3) = 1*(2+4) + 2 = 8.
        assert_eq!(b_bound(2, 1), 2);
        assert_eq!(b_bound(2, 2), 4);
        assert_eq!(b_bound(2, 3), 8);
        // m = 3: a(3) = 15, a(2) = 3 → waste = 4:
        // b(1) = 15, b(2) = 4*15 + 15 = 75.
        assert_eq!(b_bound(3, 1), 15);
        assert_eq!(b_bound(3, 2), 75);
        // m = 1: no Block-Updates at all.
        assert_eq!(b_bound(1, 5), 0);
    }

    #[test]
    fn step_bound_below_2_pow_fm2() {
        for m in 2..=4 {
            for f in 2..=4 {
                assert!(
                    simulation_step_bound(m, f) <= two_to_fm2(m, f),
                    "m={m} f={f}"
                );
            }
        }
    }

    #[test]
    fn approx_bounds_behave() {
        // L grows linearly in eps_exp.
        assert!(approx_step_lower_bound(20) > approx_step_lower_bound(10));
        // For tiny ε the partition term dominates: bound → ⌊n/2⌋+1.
        let b = approx_space_lower_bound(6, 1_000_000);
        assert_eq!(b, 4.0);
        // For large ε the step term dominates and is small.
        assert!(approx_space_lower_bound(1_000, 4) < 2.0);
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(10, 5), 252);
    }
}
