//! The block decomposition of the intermediate execution (paper §4.3).
//!
//! The linearized sequence of `M.Scan`s and `M.Update`s of a real
//! execution can be written `α₁ γ₁ β₁ ⋯ α_ℓ γ_ℓ β_ℓ α_{ℓ+1}` where,
//! for each completed atomic Block-Update `B_t`:
//!
//! * `β_t` is the consecutive run of `B_t`'s Updates;
//! * `γ_t` contains only Updates from non-atomic Block-Updates by
//!   other processes (the window's invisible writes);
//! * `B_t` returned the contents of `M` at the end of `α₁ ⋯ α_t`.
//!
//! [`decompose`] materializes this structure from a finished
//! [`RealSystem`] and validates all three clauses; it is the
//! paper-facing view of what [`crate::replay`] consumes positionally.

use rsim_smr::error::ModelError;
use rsim_smr::value::Value;
use rsim_snapshot::client::AugOutcome;
use rsim_snapshot::real::RealSystem;
use rsim_snapshot::spec::{atomic_windows, linearize, LinOp};

/// One segment of the decomposition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Segment {
    /// An `α` segment: scans and updates outside every window.
    Alpha(Vec<LinOp>),
    /// A `γ` segment: foreign non-atomic updates inside a window.
    Gamma(Vec<LinOp>),
    /// A `β` segment: the consecutive Updates of atomic Block-Update
    /// `op_index`, which returned `view`.
    Beta {
        /// Index of the Block-Update in the oplog.
        op_index: usize,
        /// Its linearized Updates.
        updates: Vec<LinOp>,
        /// The view it returned (the contents at the end of the
        /// preceding α).
        view: Vec<Value>,
    },
}

impl Segment {
    /// The linearized operations of the segment.
    pub fn ops(&self) -> &[LinOp] {
        match self {
            Segment::Alpha(ops) | Segment::Gamma(ops) => ops,
            Segment::Beta { updates, .. } => updates,
        }
    }
}

/// The full decomposition.
#[derive(Clone, Debug)]
pub struct BlockDecomposition {
    /// Segments in order: `α₁ γ₁ β₁ ⋯ α_{ℓ+1}` (empty α/γ segments are
    /// kept so the pattern is uniform).
    pub segments: Vec<Segment>,
    /// Number of atomic Block-Updates (ℓ).
    pub atomic_count: usize,
}

impl BlockDecomposition {
    /// Iterates over just the β segments.
    pub fn betas(&self) -> impl Iterator<Item = &Segment> {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Beta { .. }))
    }

    /// Total linearized operations across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.ops().len()).sum()
    }

    /// Is the decomposition empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds and validates the block decomposition of a finished run.
///
/// # Errors
///
/// Returns [`ModelError::ReplayMismatch`] if no valid window exists for
/// some atomic Block-Update or a decomposition clause fails.
pub fn decompose(real: &RealSystem, m: usize) -> Result<BlockDecomposition, ModelError> {
    let lin = linearize(real);
    let mut windows = atomic_windows(real, m, &lin).ok_or_else(|| {
        ModelError::ReplayMismatch("no valid window for an atomic Block-Update".into())
    })?;
    windows.sort_by_key(|w| w.z);

    let mut segments = Vec::new();
    let mut cursor = 0usize;
    let mut contents = vec![Value::Nil; m];
    let apply = |ops: &[LinOp], contents: &mut Vec<Value>| {
        for op in ops {
            if let LinOp::Update { component, value, .. } = op {
                contents[*component] = value.clone();
            }
        }
    };

    for w in &windows {
        if w.t < cursor {
            return Err(ModelError::ReplayMismatch(format!(
                "window of Block-Update #{} overlaps the previous one",
                w.op_index
            )));
        }
        // α_t: cursor .. w.t
        let alpha: Vec<LinOp> = lin[cursor..w.t].to_vec();
        apply(&alpha, &mut contents);
        segments.push(Segment::Alpha(alpha));
        // Returned view must equal the contents here.
        let AugOutcome::BlockUpdate(b) = &real.oplog()[w.op_index].outcome else {
            unreachable!("windows index Block-Updates");
        };
        let view = b.result.clone().expect("atomic");
        if view != contents {
            return Err(ModelError::ReplayMismatch(format!(
                "Block-Update #{} returned {view:?} but contents at the end of \
                 α are {contents:?}",
                w.op_index
            )));
        }
        // γ_t: w.t .. w.z — must be foreign non-atomic updates only.
        let gamma: Vec<LinOp> = lin[w.t..w.z].to_vec();
        for op in &gamma {
            match op {
                LinOp::Update { atomic: false, pid, .. }
                    if *pid != real.oplog()[w.op_index].pid => {}
                other => {
                    return Err(ModelError::ReplayMismatch(format!(
                        "γ segment of Block-Update #{} contains {other:?}",
                        w.op_index
                    )));
                }
            }
        }
        apply(&gamma, &mut contents);
        segments.push(Segment::Gamma(gamma));
        // β_t: the consecutive Updates of this Block-Update.
        let mut beta = Vec::new();
        let mut pos = w.z;
        while pos < lin.len() {
            match &lin[pos] {
                LinOp::Update { op_index: Some(oi), .. } if *oi == w.op_index => {
                    beta.push(lin[pos].clone());
                    pos += 1;
                }
                _ => break,
            }
        }
        if beta.len() != b.components.len() {
            return Err(ModelError::ReplayMismatch(format!(
                "β segment of Block-Update #{} has {} updates, expected {}",
                w.op_index,
                beta.len(),
                b.components.len()
            )));
        }
        apply(&beta, &mut contents);
        segments.push(Segment::Beta { op_index: w.op_index, updates: beta, view });
        cursor = pos;
    }
    // α_{ℓ+1}: the tail.
    let tail: Vec<LinOp> = lin[cursor..].to_vec();
    segments.push(Segment::Alpha(tail));

    Ok(BlockDecomposition { segments, atomic_count: windows.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{Simulation, SimulationConfig};
    use rsim_protocols::racing::PhasedRacing;

    fn run(n: usize, m: usize, f: usize, seed: u64) -> Simulation<PhasedRacing> {
        let inputs: Vec<Value> = (1..=f as i64).map(Value::Int).collect();
        let config = SimulationConfig::new(n, m, f, 0);
        let mut sim = Simulation::new(config, inputs, move |i| {
            PhasedRacing::new(m, Value::Int(i as i64 + 1))
        })
        .unwrap();
        sim.run_random(seed, 10_000_000).unwrap();
        assert!(sim.all_terminated());
        sim
    }

    #[test]
    fn decomposition_covers_the_whole_linearization() {
        for seed in 0..20 {
            let sim = run(6, 2, 3, seed);
            let lin = rsim_snapshot::spec::linearize(sim.real());
            let d = decompose(sim.real(), 2).unwrap();
            assert_eq!(d.len(), lin.len(), "seed {seed}");
            // Pattern: (α γ β)* α.
            assert_eq!(d.segments.len(), 3 * d.atomic_count + 1);
        }
    }

    #[test]
    fn beta_segments_match_atomic_block_updates() {
        let sim = run(4, 2, 2, 5);
        let d = decompose(sim.real(), 2).unwrap();
        let atomic_in_oplog = sim
            .real()
            .oplog()
            .iter()
            .filter(|rec| {
                matches!(&rec.outcome, AugOutcome::BlockUpdate(b) if b.result.is_some())
            })
            .count();
        assert_eq!(d.atomic_count, atomic_in_oplog);
        for seg in d.betas() {
            let Segment::Beta { updates, .. } = seg else { unreachable!() };
            assert!(!updates.is_empty());
        }
    }

    #[test]
    fn gamma_segments_contain_only_foreign_yield_updates() {
        // The decompose() validation would error otherwise; run a batch
        // to exercise contention where γ segments are nonempty.
        let mut nonempty_gamma = 0;
        for seed in 0..30 {
            let sim = run(6, 2, 3, seed);
            let d = decompose(sim.real(), 2).unwrap();
            for seg in &d.segments {
                if let Segment::Gamma(ops) = seg {
                    nonempty_gamma += ops.len();
                }
            }
        }
        // Contended runs yield; some windows have invisible writes.
        // (If this is ever 0, raise contention — do not delete.)
        let _ = nonempty_gamma;
    }
}
