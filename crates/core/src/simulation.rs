//! The full revisionist simulation: `f` real processes simulate an
//! n-process protocol Π over an m-component snapshot (paper §4, the
//! setting of Theorem 21 and Figure 1).
//!
//! Covering simulators take the *low* identifiers `0..f−d` (the paper
//! requires covering simulators below direct ones so that Theorem 20's
//! yield asymmetry feeds their atomic Block-Updates), each owning `m`
//! simulated processes; the `d` direct simulators own one each. The
//! partition needs `(f−d)·m + d ≤ n` simulated processes — the
//! feasibility predicate that *is* the space bound
//! ([`crate::bounds::simulation_feasible`]).

use crate::bounds;
use crate::covering::CoveringSimulator;
use crate::direct::DirectSimulator;
use rsim_smr::error::ModelError;
use rsim_smr::process::SnapshotProtocol;
use rsim_smr::value::Value;
use rsim_snapshot::real::RealSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a simulation run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimulationConfig {
    /// Simulated processes available (the protocol Π is an n-process
    /// protocol).
    pub n: usize,
    /// Components of the simulated snapshot `M` (Π's space use).
    pub m: usize,
    /// Real processes (simulators).
    pub f: usize,
    /// Direct simulators (the paper's `d`; `d = x` in the
    /// x-obstruction-free case, `d = 0` in the obstruction-free case).
    pub d: usize,
    /// Budget for each local solo simulation.
    pub solo_budget: usize,
}

impl SimulationConfig {
    /// A config with a default solo budget.
    pub fn new(n: usize, m: usize, f: usize, d: usize) -> Self {
        SimulationConfig { n, m, f, d, solo_budget: 100_000 }
    }

    /// Is the partition of simulated processes possible?
    pub fn is_feasible(&self) -> bool {
        bounds::simulation_feasible(self.n, self.m, self.f, self.d)
    }
}

enum Sim<P> {
    // Boxed: a covering simulator owns `m` protocol replicas plus the
    // revision log, dwarfing the direct variant.
    Covering(Box<CoveringSimulator<P>>),
    Direct(DirectSimulator<P>),
}

/// The simulation driver: the real system plus `f` simulators.
pub struct Simulation<P> {
    config: SimulationConfig,
    real: RealSystem,
    sims: Vec<Sim<P>>,
    in_flight: Vec<bool>,
    crashed: Vec<bool>,
    inputs: Vec<Value>,
}

impl<P: SnapshotProtocol> Simulation<P> {
    /// Builds a simulation. `make_protocol(i)` constructs a simulated
    /// process with real process `q_i`'s input; `inputs[i]` is that
    /// input (used for task validation and the replay).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadId`] if the partition is infeasible
    /// (`(f−d)·m + d > n`) — the situation that *is* the lower bound —
    /// or the inputs don't match `f`.
    pub fn new(
        config: SimulationConfig,
        inputs: Vec<Value>,
        make_protocol: impl Fn(usize) -> P,
    ) -> Result<Self, ModelError> {
        if !config.is_feasible() {
            return Err(ModelError::BadId(format!(
                "infeasible partition: ({} - {})*{} + {} > {} — m >= the space bound",
                config.f, config.d, config.m, config.d, config.n
            )));
        }
        if inputs.len() != config.f {
            return Err(ModelError::BadId(format!(
                "need {} inputs, got {}",
                config.f,
                inputs.len()
            )));
        }
        let covering_count = config.f - config.d;
        let mut sims = Vec::with_capacity(config.f);
        for i in 0..config.f {
            if i < covering_count {
                let procs: Vec<P> =
                    (0..config.m).map(|_| make_protocol(i)).collect();
                sims.push(Sim::Covering(Box::new(CoveringSimulator::new(
                    procs,
                    config.solo_budget,
                ))));
            } else {
                sims.push(Sim::Direct(DirectSimulator::new(make_protocol(i))));
            }
        }
        Ok(Simulation {
            real: RealSystem::new(config.f, config.m),
            sims,
            in_flight: vec![false; config.f],
            crashed: vec![false; config.f],
            inputs,
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The simulators' inputs.
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }

    /// The underlying real system (event and operation logs).
    pub fn real(&self) -> &RealSystem {
        &self.real
    }

    /// Simulator `i`'s output, if terminated.
    pub fn output(&self, i: usize) -> Option<&Value> {
        match &self.sims[i] {
            Sim::Covering(c) => c.output(),
            Sim::Direct(d) => d.output(),
        }
    }

    /// Outputs of all simulators.
    pub fn outputs(&self) -> Vec<Option<Value>> {
        (0..self.config.f).map(|i| self.output(i).cloned()).collect()
    }

    /// Have all simulators terminated?
    pub fn all_terminated(&self) -> bool {
        (0..self.config.f).all(|i| self.output(i).is_some())
    }

    /// Crash-stops simulator `i`: it takes no further H-steps, exactly
    /// like a crashed real process in the paper's model (§2). An
    /// operation left in flight stays incomplete in `H` — the augmented
    /// snapshot is non-blocking, so survivors are never stuck behind it.
    pub fn crash(&mut self, i: usize) {
        self.crashed[i] = true;
    }

    /// Has simulator `i` crash-stopped?
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// Number of crash-stopped simulators.
    pub fn crash_count(&self) -> usize {
        self.crashed.iter().filter(|&&c| c).count()
    }

    /// Have all non-crashed simulators terminated? This is the
    /// termination condition of the crash-tolerant runs: the paper's
    /// simulation promises outputs from the survivors only.
    pub fn survivors_terminated(&self) -> bool {
        (0..self.config.f)
            .all(|i| self.crashed[i] || self.output(i).is_some())
    }

    /// The covering simulator `i` (panics if `i` is direct).
    pub fn covering(&self, i: usize) -> &CoveringSimulator<P> {
        match &self.sims[i] {
            Sim::Covering(c) => c,
            Sim::Direct(_) => panic!("simulator {i} is direct"),
        }
    }

    /// Is simulator `i` a covering simulator?
    pub fn is_covering(&self, i: usize) -> bool {
        matches!(self.sims[i], Sim::Covering(_))
    }

    /// The revisions logged by simulator `i` (empty for direct
    /// simulators).
    pub fn revisions(&self, i: usize) -> &[crate::covering::RevisionRecord] {
        match &self.sims[i] {
            Sim::Covering(c) => c.revisions(),
            Sim::Direct(_) => &[],
        }
    }

    /// The Algorithm 7 tail of simulator `i`, if any.
    pub fn final_block(&self, i: usize) -> Option<&crate::covering::FinalBlock> {
        match &self.sims[i] {
            Sim::Covering(c) => c.final_block(),
            Sim::Direct(_) => None,
        }
    }

    /// `(scans, block_updates)` applied by simulator `i`.
    pub fn op_counts(&self, i: usize) -> (usize, usize) {
        match &self.sims[i] {
            Sim::Covering(c) => (c.scan_count(), c.block_update_count()),
            Sim::Direct(d) => (d.scan_count(), d.block_update_count()),
        }
    }

    /// Performs one atomic H-step for simulator `i` (beginning its next
    /// `M` operation if idle). Returns `false` if the simulator has
    /// terminated.
    ///
    /// # Errors
    ///
    /// Propagates a failed local simulation (protocol not
    /// obstruction-free within the solo budget).
    pub fn step(&mut self, i: usize) -> Result<bool, ModelError> {
        if self.crashed[i] {
            return Ok(false);
        }
        if self.output(i).is_some() && !self.in_flight[i] {
            return Ok(false);
        }
        if !self.in_flight[i] {
            let op = match &mut self.sims[i] {
                Sim::Covering(c) => c.next_op()?,
                Sim::Direct(d) => Ok::<_, ModelError>(d.next_op())?,
            };
            match op {
                Some(op) => {
                    self.real.begin(i, op);
                    self.in_flight[i] = true;
                }
                None => return Ok(false), // terminated without an op
            }
        }
        if let Some(outcome) = self.real.step(i) {
            self.in_flight[i] = false;
            match &mut self.sims[i] {
                Sim::Covering(c) => c.on_outcome(&outcome),
                Sim::Direct(d) => d.on_outcome(&outcome),
            }
        }
        Ok(true)
    }

    /// Runs simulators round-robin until all terminate or `max_h_steps`
    /// elapse. Returns the number of H-steps taken.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::step`] errors.
    pub fn run_round_robin(&mut self, max_h_steps: usize) -> Result<usize, ModelError> {
        let mut steps = 0;
        let mut made_progress = true;
        while steps < max_h_steps && made_progress && !self.survivors_terminated() {
            made_progress = false;
            for i in 0..self.config.f {
                if steps >= max_h_steps {
                    break;
                }
                if self.step(i)? {
                    made_progress = true;
                    steps += 1;
                }
            }
        }
        Ok(steps)
    }

    /// Runs simulators under a seeded random schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::step`] errors.
    pub fn run_random(&mut self, seed: u64, max_h_steps: usize) -> Result<usize, ModelError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut steps = 0;
        while steps < max_h_steps && !self.survivors_terminated() {
            let live: Vec<usize> = (0..self.config.f)
                .filter(|&i| {
                    !self.crashed[i] && (self.output(i).is_none() || self.in_flight[i])
                })
                .collect();
            if live.is_empty() {
                break;
            }
            let i = live[rng.gen_range(0..live.len())];
            if self.step(i)? {
                steps += 1;
            }
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_protocols::racing::PhasedRacing;
    use rsim_tasks::agreement::consensus;
    use rsim_tasks::task::ColorlessTask;

    fn consensus_sim(
        n: usize,
        m: usize,
        inputs: &[i64],
    ) -> Simulation<PhasedRacing> {
        let f = inputs.len();
        let vals: Vec<Value> = inputs.iter().map(|&v| Value::Int(v)).collect();
        let config = SimulationConfig::new(n, m, f, 0);
        Simulation::new(config, vals.clone(), move |i| {
            PhasedRacing::new(m, vals[i].clone())
        })
        .unwrap()
    }

    #[test]
    fn infeasible_partition_is_rejected() {
        // n = 4, m = 2, f = 2, d = 0 needs 4 processes: feasible.
        assert!(SimulationConfig::new(4, 2, 2, 0).is_feasible());
        // m = 3 needs 6 > 4: infeasible — the lower bound in action
        // (bound for n=4 consensus is 4; wait, here f=2 ⇒ bound ⌊4/2⌋+1 = 3).
        assert!(!SimulationConfig::new(4, 3, 2, 0).is_feasible());
        let config = SimulationConfig::new(4, 3, 2, 0);
        let r = Simulation::new(config, vec![Value::Int(1), Value::Int(2)], |_| {
            PhasedRacing::new(3, Value::Int(0))
        });
        assert!(r.is_err());
    }

    #[test]
    fn two_covering_simulators_terminate_round_robin() {
        // n = 4 simulated processes, m = 2 components, f = 2 covering
        // simulators: the reduction of Corollary 33 for consensus.
        let mut sim = consensus_sim(4, 2, &[1, 2]);
        sim.run_round_robin(1_000_000).unwrap();
        assert!(sim.all_terminated(), "simulation must be wait-free");
        // Validity: outputs are inputs of some simulator.
        for out in sim.outputs() {
            let out = out.unwrap();
            assert!(out == Value::Int(1) || out == Value::Int(2));
        }
    }

    #[test]
    fn equal_inputs_force_agreement_through_simulation() {
        // With both simulators holding input 5, any correct-validity Π
        // makes every simulated process output 5; so must the
        // simulators (Lemma 27).
        for seed in 0..10 {
            let mut sim = consensus_sim(4, 2, &[5, 5]);
            sim.run_random(seed, 1_000_000).unwrap();
            assert!(sim.all_terminated());
            let outs: Vec<Value> =
                sim.outputs().into_iter().map(Option::unwrap).collect();
            consensus()
                .validate(&[Value::Int(5), Value::Int(5)], &outs)
                .unwrap();
        }
    }

    #[test]
    fn random_schedules_terminate_and_are_wait_free() {
        for seed in 0..20 {
            let mut sim = consensus_sim(4, 2, &[1, 2]);
            let steps = sim.run_random(seed, 2_000_000).unwrap();
            assert!(sim.all_terminated(), "seed {seed}: not terminated");
            // Lemma 31-flavored sanity: H-steps are far below the
            // crude bound.
            assert!(steps < 2_000_000);
        }
    }

    #[test]
    fn block_update_counts_respect_lemma_30() {
        for seed in 0..10 {
            let mut sim = consensus_sim(4, 2, &[1, 2]);
            sim.run_random(seed, 2_000_000).unwrap();
            for i in 0..2 {
                let (_, bus) = sim.op_counts(i);
                let bound = crate::bounds::b_bound(2, i + 1);
                assert!(
                    (bus as u128) <= bound,
                    "seed {seed}: simulator {i} applied {bus} > b({}) = {bound}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn mixed_direct_and_covering_simulators() {
        // f = 3, d = 1: two covering + one direct simulator
        // (x-obstruction-free case with x = 1).
        let n = 5;
        let m = 2;
        let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let config = SimulationConfig::new(n, m, 3, 1);
        assert!(config.is_feasible()); // 2*2 + 1 = 5 <= 5
        let mut sim = Simulation::new(config, inputs, move |i| {
            PhasedRacing::new(m, Value::Int([1, 2, 3][i]))
        })
        .unwrap();
        sim.run_round_robin(2_000_000).unwrap();
        assert!(sim.all_terminated());
    }

    #[test]
    fn m_equals_one_simulators_take_a_single_scan() {
        // The m = 1 corner: Construct(1) is the whole construction, so
        // a covering simulator applies exactly one M.Scan and zero
        // M.Block-Updates (b(i) = 0), locally simulates the 1-component
        // block + solo run, and outputs its own input — the 1-register
        // impossibility [21] in miniature: both simulators decide their
        // own values.
        let config = SimulationConfig::new(2, 1, 2, 0);
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let mut sim = Simulation::new(config, inputs, |i| {
            PhasedRacing::new(1, Value::Int([1, 2][i]))
        })
        .unwrap();
        sim.run_round_robin(1_000).unwrap();
        assert!(sim.all_terminated());
        for i in 0..2 {
            let (scans, bus) = sim.op_counts(i);
            assert_eq!(scans, 1, "simulator {i}");
            assert_eq!(bus, 0, "simulator {i}");
        }
        assert_eq!(sim.output(0), Some(&Value::Int(1)));
        assert_eq!(sim.output(1), Some(&Value::Int(2)));
    }

    #[test]
    fn survivor_terminates_despite_a_mid_operation_crash() {
        // §4: the simulation tolerates up to f − 1 crashes. Crash
        // simulator 0 at every point of its first operation in turn;
        // simulator 1 must still terminate with a valid output.
        for crash_after in 0..6 {
            let mut sim = consensus_sim(4, 2, &[1, 2]);
            for _ in 0..crash_after {
                sim.step(0).unwrap();
            }
            sim.crash(0);
            assert!(sim.is_crashed(0));
            assert_eq!(sim.crash_count(), 1);
            sim.run_round_robin(2_000_000).unwrap();
            assert!(
                sim.survivors_terminated(),
                "crash_after {crash_after}: survivor blocked"
            );
            assert!(!sim.all_terminated(), "the crashed simulator never outputs");
            let out = sim.output(1).cloned().expect("survivor output");
            assert!(
                out == Value::Int(1) || out == Value::Int(2),
                "crash_after {crash_after}: invalid output {out:?}"
            );
        }
    }

    #[test]
    fn crashed_simulators_take_no_further_h_steps() {
        let mut sim = consensus_sim(4, 2, &[1, 2]);
        for _ in 0..3 {
            sim.step(0).unwrap();
        }
        sim.crash(0);
        let victim_steps =
            sim.real().log().iter().filter(|e| e.pid == 0).count();
        assert!(!sim.step(0).unwrap(), "a crashed simulator refuses to step");
        sim.run_round_robin(2_000_000).unwrap();
        assert_eq!(
            sim.real().log().iter().filter(|e| e.pid == 0).count(),
            victim_steps,
            "the crash must freeze the victim's H-step count"
        );
    }

    #[test]
    fn f_minus_1_crashes_leave_one_survivor_running() {
        // Three simulators, two crashes (= f − 1): the lone survivor
        // still terminates under both schedules.
        let n = 5;
        let m = 2;
        let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let config = SimulationConfig::new(n, m, 3, 1);
        let mut sim = Simulation::new(config, inputs, move |i| {
            PhasedRacing::new(m, Value::Int([1, 2, 3][i]))
        })
        .unwrap();
        sim.step(0).unwrap();
        sim.crash(0);
        sim.step(2).unwrap();
        sim.step(2).unwrap();
        sim.crash(2);
        assert_eq!(sim.crash_count(), 2);
        sim.run_round_robin(2_000_000).unwrap();
        assert!(sim.survivors_terminated());
        assert!(sim.output(1).is_some());
    }

    #[test]
    fn reduction_extracts_disagreement_below_the_bound() {
        // The punchline of Theorem 21: Π (phased racing) on m = 2
        // components among n = 4 processes is obstruction-free, so two
        // simulators solve "consensus" wait-free — but wait-free
        // 2-process consensus is impossible, and indeed some schedule
        // makes the outputs disagree.
        let mut found = false;
        for seed in 0..200 {
            let mut sim = consensus_sim(4, 2, &[1, 2]);
            sim.run_random(seed, 2_000_000).unwrap();
            assert!(sim.all_terminated());
            let outs: Vec<Value> =
                sim.outputs().into_iter().map(Option::unwrap).collect();
            if consensus()
                .validate(&[Value::Int(1), Value::Int(2)], &outs)
                .is_err()
            {
                found = true;
                break;
            }
        }
        assert!(
            found,
            "expected some schedule to extract a consensus violation"
        );
    }
}
