//! The BG simulation (Borowsky–Gafni \[15\]) — the baseline the paper
//! contrasts its technique against.
//!
//! > "In our simulation, a real process may revise the past of a
//! > simulated process […] This is possible because each simulated
//! > process is simulated by a single real process. In contrast, in the
//! > BG simulation, different steps of simulated processes can be
//! > performed by different real processes, so this would be much more
//! > difficult to do." (paper §1)
//!
//! This module implements the two pieces that make the contrast
//! executable:
//!
//! * [`SafeAgreement`] — the BG building block, as an explicit step
//!   machine over single-writer levels/values (Borowsky–Gafni's
//!   level-based algorithm). Proposing is wait-free; *reading* blocks
//!   while any process is at level 1 — the "unsafe window". A simulator
//!   that crashes inside the window blocks the box forever.
//! * [`BgSimulation`] — a colorless BG driver: the simulators use one
//!   safe-agreement box per simulated process to agree on its input,
//!   then each deterministically replays the simulated system under a
//!   fixed round-robin schedule. Every simulator must read every box:
//!   one simulator crashing in an unsafe window stalls *all* the
//!   others — precisely the non-wait-freedom that the revisionist
//!   simulation's augmented snapshot avoids (its Block-Updates are
//!   wait-free and Scans non-blocking; no simulator ever waits for
//!   another).
//!
//! The tests demonstrate both sides: BG solves the task when all
//! simulators are live, and stalls under a mid-window crash — while the
//! revisionist simulation under the same crash pattern terminates
//! (every simulator that keeps taking steps outputs).

use rsim_smr::error::ModelError;
use rsim_smr::process::SnapshotProtocol;
use rsim_smr::sched::Fixed;
use rsim_smr::value::Value;

/// The level of a process in a safe-agreement box.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Level {
    /// Not participating (or backed off).
    Zero,
    /// In the unsafe window (wrote value, not yet decided level).
    One,
    /// Committed.
    Two,
}

/// One safe-agreement box shared by `f` processes (Borowsky–Gafni).
///
/// Protocol for `propose_i(v)`:
///
/// 1. `val[i] ← v; level[i] ← 1` (one step — the entry to the unsafe
///    window);
/// 2. snapshot the levels; if someone is at level 2, back off
///    (`level[i] ← 0`), else commit (`level[i] ← 2`) (one step).
///
/// `read()` spins until no process is at level 1, then returns the
/// value of the smallest-id process at level 2.
///
/// *Agreement*: all reads return the same value. *Validity*: the value
/// was proposed. *Unsafety*: a process that stops between steps 1 and 2
/// leaves the box unreadable forever.
#[derive(Clone, Debug)]
pub struct SafeAgreement {
    vals: Vec<Option<Value>>,
    levels: Vec<Level>,
    /// Per-process progress in the propose protocol (steps taken).
    stage: Vec<u8>,
}

impl SafeAgreement {
    /// A fresh box for `f` processes.
    pub fn new(f: usize) -> Self {
        SafeAgreement {
            vals: vec![None; f],
            levels: vec![Level::Zero; f],
            stage: vec![0; f],
        }
    }

    /// Has process `i` completed its propose protocol?
    pub fn proposed(&self, i: usize) -> bool {
        self.stage[i] >= 2
    }

    /// Performs one atomic step of `propose_i(v)`. Returns `true` when
    /// the propose protocol is complete.
    ///
    /// # Panics
    ///
    /// Panics if called after completion.
    pub fn propose_step(&mut self, i: usize, v: &Value) -> bool {
        match self.stage[i] {
            0 => {
                self.vals[i] = Some(v.clone());
                self.levels[i] = Level::One;
                self.stage[i] = 1;
                false
            }
            1 => {
                // Snapshot of levels + decision, modelled as one step
                // (the snapshot) followed by the local choice and the
                // level write; we fold the write into this step for
                // brevity — the unsafe window is still stages 1..2.
                let someone_committed =
                    self.levels.contains(&Level::Two);
                self.levels[i] =
                    if someone_committed { Level::Zero } else { Level::Two };
                self.stage[i] = 2;
                true
            }
            _ => panic!("propose already complete"),
        }
    }

    /// Is the box readable (no process in the unsafe window)?
    pub fn readable(&self) -> bool {
        !self.levels.contains(&Level::One)
    }

    /// Reads the agreed value, or `None` if the box is not (yet)
    /// readable or nobody committed.
    pub fn read(&self) -> Option<&Value> {
        if !self.readable() {
            return None;
        }
        self.levels
            .iter()
            .position(|&l| l == Level::Two)
            .and_then(|i| self.vals[i].as_ref())
    }
}

/// Status of a BG simulator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BgStatus {
    /// Still proposing/reading boxes or replaying.
    Working,
    /// Blocked on an unreadable box (some simulator is in its unsafe
    /// window).
    Blocked(usize),
    /// Terminated with an output.
    Done(Value),
}

/// A colorless BG simulation: `f` simulators agree (via one
/// safe-agreement box per simulated process) on the `n` simulated
/// inputs, then deterministically replay Π under a fixed round-robin
/// schedule and output the first simulated output.
pub struct BgSimulation<P> {
    n: usize,
    inputs: Vec<Value>,
    boxes: Vec<SafeAgreement>,
    /// Per-simulator: index of the box it is currently proposing to.
    cursor: Vec<usize>,
    status: Vec<BgStatus>,
    make_protocol: Box<dyn Fn(&Value) -> P>,
    replay_budget: usize,
}

impl<P: SnapshotProtocol + 'static> BgSimulation<P> {
    /// Creates a BG simulation of `n` processes by `f` simulators with
    /// the given simulator inputs. `make_protocol(v)` builds a simulated
    /// process with input `v`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != f`.
    pub fn new(
        n: usize,
        inputs: Vec<Value>,
        make_protocol: impl Fn(&Value) -> P + 'static,
        replay_budget: usize,
    ) -> Self {
        let f = inputs.len();
        BgSimulation {
            n,
            inputs,
            boxes: (0..n).map(|_| SafeAgreement::new(f)).collect(),
            cursor: vec![0; f],
            status: vec![BgStatus::Working; f],
            make_protocol: Box::new(make_protocol),
            replay_budget,
        }
    }

    /// The status of simulator `i`.
    pub fn status(&self, i: usize) -> &BgStatus {
        &self.status[i]
    }

    /// Outputs of all simulators (None while working/blocked).
    pub fn outputs(&self) -> Vec<Option<Value>> {
        self.status
            .iter()
            .map(|s| match s {
                BgStatus::Done(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    }

    /// Performs one step for simulator `i`: advances its current box
    /// proposal, or — once all boxes are proposed — tries to read them
    /// all and replay. A simulator blocked on an unreadable box stays
    /// [`BgStatus::Blocked`] until the window clears.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BudgetExhausted`] if the deterministic
    /// replay exceeds the budget.
    pub fn step(&mut self, i: usize) -> Result<(), ModelError> {
        if matches!(self.status[i], BgStatus::Done(_)) {
            return Ok(());
        }
        // Phase 1: propose our input to every box, round-robin.
        if self.cursor[i] < self.n {
            let b = self.cursor[i];
            let input = self.inputs[i].clone();
            if self.boxes[b].propose_step(i, &input) {
                self.cursor[i] += 1;
            }
            self.status[i] = BgStatus::Working;
            return Ok(());
        }
        // Phase 2: read all boxes; blocked if any is unreadable.
        let mut agreed = Vec::with_capacity(self.n);
        for (b, sa) in self.boxes.iter().enumerate() {
            match sa.read() {
                Some(v) => agreed.push(v.clone()),
                None => {
                    self.status[i] = BgStatus::Blocked(b);
                    return Ok(());
                }
            }
        }
        // Phase 3: deterministic replay of Π under round-robin.
        let out = self.replay(&agreed)?;
        self.status[i] = BgStatus::Done(out);
        Ok(())
    }

    fn replay(&self, agreed: &[Value]) -> Result<Value, ModelError> {
        use rsim_smr::object::{Object, ObjectId};
        use rsim_smr::process::{Process, SnapshotProcess};
        let m = (self.make_protocol)(&agreed[0]).components();
        let processes: Vec<Box<dyn Process>> = agreed
            .iter()
            .map(|v| {
                Box::new(SnapshotProcess::new(
                    (self.make_protocol)(v),
                    ObjectId(0),
                )) as Box<dyn Process>
            })
            .collect();
        let mut sys =
            rsim_smr::system::System::new(vec![Object::snapshot(m)], processes);
        let mut sched = Fixed::new(
            (0..self.replay_budget)
                .map(|k| rsim_smr::process::ProcessId(k % self.n))
                .collect(),
        );
        sys.run(&mut sched, self.replay_budget)?;
        for p in 0..self.n {
            if let Some(v) = sys.output(rsim_smr::process::ProcessId(p)) {
                return Ok(v);
            }
        }
        Err(ModelError::BudgetExhausted {
            budget: self.replay_budget,
            context: "BG deterministic replay produced no output".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{Simulation, SimulationConfig};
    use rsim_protocols::racing::PhasedRacing;

    #[test]
    fn safe_agreement_agrees_and_is_valid() {
        let mut sa = SafeAgreement::new(3);
        // Interleave all three proposers step by step.
        let vals = [Value::Int(10), Value::Int(20), Value::Int(30)];
        for stage in 0..2 {
            for (i, val) in vals.iter().enumerate() {
                let done = sa.propose_step(i, val);
                assert_eq!(done, stage == 1);
            }
        }
        let agreed = sa.read().expect("readable").clone();
        assert!(vals.contains(&agreed));
    }

    #[test]
    fn first_committer_wins_when_sequential() {
        let mut sa = SafeAgreement::new(2);
        sa.propose_step(1, &Value::Int(2));
        sa.propose_step(1, &Value::Int(2));
        // p1 committed; p0 arrives later and must back off.
        sa.propose_step(0, &Value::Int(1));
        sa.propose_step(0, &Value::Int(1));
        assert_eq!(sa.read(), Some(&Value::Int(2)));
    }

    #[test]
    fn crash_in_the_unsafe_window_blocks_the_box() {
        let mut sa = SafeAgreement::new(2);
        sa.propose_step(0, &Value::Int(1)); // enters window, then crashes
        sa.propose_step(1, &Value::Int(2));
        sa.propose_step(1, &Value::Int(2));
        assert!(!sa.readable());
        assert_eq!(sa.read(), None);
    }

    fn bg(n: usize, inputs: &[i64]) -> BgSimulation<PhasedRacing> {
        let vals: Vec<Value> = inputs.iter().map(|&v| Value::Int(v)).collect();
        BgSimulation::new(n, vals, |v| PhasedRacing::new(2, v.clone()), 100_000)
    }

    #[test]
    fn bg_simulation_solves_the_task_when_all_live() {
        let mut sim = bg(4, &[1, 2]);
        for _ in 0..100 {
            for i in 0..2 {
                sim.step(i).unwrap();
            }
        }
        let outs = sim.outputs();
        assert!(outs.iter().all(Option::is_some), "{outs:?}");
        // All simulators replay the same deterministic execution: they
        // agree (a stronger property than the task requires).
        assert_eq!(outs[0], outs[1]);
        // Validity: the output is some simulator's input.
        let v = outs[0].clone().unwrap();
        assert!(v == Value::Int(1) || v == Value::Int(2));
    }

    #[test]
    fn bg_crash_in_window_blocks_every_other_simulator() {
        let mut sim = bg(4, &[1, 2]);
        // q0 takes exactly one step: it enters box 0's unsafe window
        // and "crashes" (never steps again).
        sim.step(0).unwrap();
        // q1 runs alone for a long time: it completes its proposals but
        // blocks reading box 0.
        for _ in 0..500 {
            sim.step(1).unwrap();
        }
        assert_eq!(sim.status(1), &BgStatus::Blocked(0), "q1 must be blocked");
        assert!(sim.outputs()[1].is_none());
    }

    #[test]
    fn revisionist_simulation_survives_the_same_crash_pattern() {
        // The contrast: under "q0 takes one step then crashes", the
        // revisionist simulation's q1 still terminates — no simulator
        // ever waits for another (wait-freedom, Lemma 31).
        let config = SimulationConfig::new(4, 2, 2, 0);
        let inputs = vec![Value::Int(1), Value::Int(2)];
        let mut sim = Simulation::new(config, inputs, |i| {
            PhasedRacing::new(2, Value::Int([1, 2][i]))
        })
        .unwrap();
        sim.step(0).unwrap(); // q0 crashes after one H-step
        let mut guard = 0;
        while sim.output(1).is_none() {
            let progressed = sim.step(1).unwrap();
            assert!(progressed || sim.output(1).is_some());
            guard += 1;
            assert!(guard < 100_000, "q1 must terminate despite q0's crash");
        }
        assert!(sim.output(1).is_some());
    }
}
