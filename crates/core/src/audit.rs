//! The space auditor: the paper's theorem as a practical tool.
//!
//! Given a claimed x-obstruction-free k-set agreement protocol over `m`
//! snapshot components, [`audit_kset`] renders the verdict of
//! Corollary 33:
//!
//! * `m ≥ ⌊(n−x)/(k+1−x)⌋ + 1` — the claim is *consistent* with the
//!   lower bound (which says nothing about correctness);
//! * `m` below the bound — the claim is **impossible**: the protocol
//!   cannot be a correct x-obstruction-free solution. The auditor then
//!   hunts for concrete evidence by running the revisionist simulation
//!   over many schedules and reporting the first extracted wait-free
//!   execution whose outputs violate the task.
//!
//! This is how a downstream user consumes the reproduction: point the
//! auditor at a protocol family and a parameter point, get back either
//! "consistent" or a counterexample seed.

use crate::bounds;
use crate::simulation::{Simulation, SimulationConfig};
use rsim_smr::error::ModelError;
use rsim_smr::process::SnapshotProtocol;
use rsim_smr::value::Value;
use rsim_tasks::agreement::KSetAgreement;
use rsim_tasks::task::ColorlessTask;

/// Concrete evidence of impossibility: an extracted violating run.
#[derive(Clone, Debug)]
pub struct ViolationEvidence {
    /// The random-schedule seed that produced the violation.
    pub seed: u64,
    /// The simulators' (wait-free) outputs.
    pub outputs: Vec<Value>,
    /// H-steps the run took.
    pub h_steps: usize,
}

/// The auditor's verdict.
#[derive(Clone, Debug)]
pub enum AuditVerdict {
    /// `m` meets the Corollary 33 bound: the space claim is consistent
    /// with the lower bound.
    Consistent {
        /// The claimed component count.
        m: usize,
        /// The Corollary 33 bound.
        bound: usize,
    },
    /// `m` is below the bound: no correct protocol exists at this
    /// space. If the extraction found a violating schedule within the
    /// search budget, it is attached.
    Impossible {
        /// The claimed component count.
        m: usize,
        /// The Corollary 33 bound.
        bound: usize,
        /// Extracted counterexample, if one was found.
        evidence: Option<ViolationEvidence>,
        /// Schedules searched.
        schedules_tried: u64,
    },
}

impl AuditVerdict {
    /// Did the audit find the claim impossible?
    pub fn is_impossible(&self) -> bool {
        matches!(self, AuditVerdict::Impossible { .. })
    }
}

/// Audits a claimed x-obstruction-free k-set agreement protocol family
/// over `m` components for `n` processes. `make_protocol(i)` builds a
/// simulated process holding simulator `i`'s input `inputs[i]`
/// (`inputs.len()` must be `k + 1`).
///
/// # Errors
///
/// Propagates simulation errors (e.g. the protocol not being
/// obstruction-free within the solo budget — itself a finding).
///
/// # Panics
///
/// Panics if the parameters violate `1 ≤ x ≤ k < n` or
/// `inputs.len() != k + 1`.
pub fn audit_kset<P: SnapshotProtocol>(
    n: usize,
    k: usize,
    x: usize,
    m: usize,
    inputs: &[Value],
    make_protocol: impl Fn(usize) -> P + Copy,
    schedules: u64,
) -> Result<AuditVerdict, ModelError> {
    assert!(1 <= x && x <= k && k < n, "need 1 <= x <= k < n");
    assert_eq!(inputs.len(), k + 1, "the reduction uses f = k + 1 simulators");
    let bound = bounds::kset_space_lower_bound(n, k, x);
    if m >= bound {
        return Ok(AuditVerdict::Consistent { m, bound });
    }
    let task = KSetAgreement::new(k);
    let config = SimulationConfig::new(n, m, k + 1, x);
    debug_assert!(config.is_feasible(), "m < bound implies feasibility");
    for seed in 0..schedules {
        let mut sim = Simulation::new(config, inputs.to_vec(), make_protocol)?;
        sim.run_random(seed, 100_000_000)?;
        if !sim.all_terminated() {
            continue;
        }
        let outs: Vec<Value> = sim.outputs().into_iter().flatten().collect();
        if task.validate(inputs, &outs).is_err() {
            return Ok(AuditVerdict::Impossible {
                m,
                bound,
                evidence: Some(ViolationEvidence {
                    seed,
                    outputs: outs,
                    h_steps: sim.real().log().len(),
                }),
                schedules_tried: seed + 1,
            });
        }
    }
    Ok(AuditVerdict::Impossible { m, bound, evidence: None, schedules_tried: schedules })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_protocols::racing::PhasedRacing;

    #[test]
    fn audit_accepts_space_at_the_bound() {
        // Consensus (k = 1, x = 1) among n = 4 with m = 4 = the bound.
        let inputs = [Value::Int(1), Value::Int(2)];
        let verdict = audit_kset(
            4,
            1,
            1,
            4,
            &inputs,
            |i| PhasedRacing::new(4, Value::Int([1, 2][i])),
            10,
        )
        .unwrap();
        assert!(matches!(
            verdict,
            AuditVerdict::Consistent { m: 4, bound: 4 }
        ));
    }

    #[test]
    fn audit_finds_evidence_below_the_bound() {
        let inputs = [Value::Int(1), Value::Int(2)];
        let verdict = audit_kset(
            4,
            1,
            1,
            2,
            &inputs,
            |i| PhasedRacing::new(2, Value::Int([1, 2][i])),
            300,
        )
        .unwrap();
        match verdict {
            AuditVerdict::Impossible { m: 2, bound: 4, evidence: Some(ev), .. } => {
                assert_eq!(ev.outputs.len(), 2);
                assert_ne!(ev.outputs[0], ev.outputs[1]);
            }
            other => panic!("expected evidence, got {other:?}"),
        }
    }

    #[test]
    fn audit_kset_with_direct_simulators() {
        // 2-set agreement, x = 2 (two direct simulators): n = 7, bound
        // ⌊5/1⌋+1 = 6; audit m = 2 < 6 — feasibility: (3-2)*2+2 = 4 ≤ 7.
        let inputs = [Value::Int(1), Value::Int(2), Value::Int(3)];
        let verdict = audit_kset(
            7,
            2,
            2,
            2,
            &inputs,
            |i| PhasedRacing::new(2, Value::Int([1, 2, 3][i])),
            30,
        )
        .unwrap();
        // Below the bound (whether or not evidence shows up within 30
        // schedules, the verdict is Impossible).
        assert!(verdict.is_impossible());
    }
}
