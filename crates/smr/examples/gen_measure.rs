//! Scratch measurement harness: kill/clean rates per mutation across
//! generator seeds. Not part of the shipped surface.

use rsim_smr::campaign::{replay_run, SchedulerSpec};
use rsim_smr::gen::fuzz::consensus_check;
use rsim_smr::gen::grammar::GenSpec;
use rsim_smr::gen::mutate::{Mutation, ALL_MUTATIONS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gen_seeds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let runs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let budget: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3_000);
    let sched_name = args.get(4).cloned().unwrap_or_else(|| "random".into());
    let sched = SchedulerSpec::parse(&sched_name).unwrap();

    println!("gen_seeds={gen_seeds} runs={runs} budget={budget} sched={sched_name}");
    let mut variants: Vec<(String, Option<Mutation>)> =
        vec![("base".to_string(), None)];
    for m in ALL_MUTATIONS {
        if m.expected_lint().is_none() {
            variants.push((m.name().to_string(), Some(m)));
        }
    }

    for (name, mutation) in &variants {
        let mut killed = 0u64;
        let mut total_first_kill: u64 = 0;
        let mut max_first_kill: u64 = 0;
        let mut nkilled_seeds: Vec<u64> = Vec::new();
        for seed in 0..gen_seeds {
            let base = GenSpec::from_seed(seed);
            let spec = match mutation {
                Some(m) => m.apply(&base),
                None => base,
            };
            let factory = |_s: u64| spec.build_system();
            let check = consensus_check(spec.inputs());
            let mut first: Option<u64> = None;
            for s in 0..runs {
                let rec = replay_run(&sched, s, budget, factory, &check);
                if rec.violation.is_some() {
                    first = Some(s);
                    break;
                }
            }
            match first {
                Some(s) => {
                    killed += 1;
                    total_first_kill += s;
                    max_first_kill = max_first_kill.max(s);
                }
                None => nkilled_seeds.push(seed),
            }
        }
        let avg = if killed > 0 {
            total_first_kill as f64 / killed as f64
        } else {
            0.0
        };
        println!(
            "{name:18} killed {killed}/{gen_seeds}  avg_first_kill={avg:.1}  \
             max_first_kill={max_first_kill}  survivors={nkilled_seeds:?}",
        );
    }
}
