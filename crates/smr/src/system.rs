//! Configurations and executions of the asynchronous system.
//!
//! A [`System`] is a configuration (paper §2): the state of each process
//! plus the value of each object. [`System::step`] applies the next step
//! of one process atomically — one base-object operation plus the local
//! transition — and appends an [`Event`] to the execution trace.
//!
//! Single-writer restrictions (single-writer registers and single-writer
//! snapshots) are configuration-level invariants installed with
//! [`System::restrict_writer`].

use crate::error::ModelError;
use crate::fingerprint::{ConfigHash, FnvStream};
use crate::object::{Object, ObjectId, Operation, Response};
use crate::process::{Poised, Process, ProcessId};
use crate::trace::Trace;
use crate::value::Value;
use std::collections::HashMap;

/// One step of an execution: process `pid` performed `op` and received
/// `resp`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// The process that took the step.
    pub pid: ProcessId,
    /// The operation it performed.
    pub op: Operation,
    /// The response it received.
    pub resp: Response,
}

/// A configuration of the asynchronous system, together with the
/// execution trace that led to it.
///
/// # Examples
///
/// ```
/// use rsim_smr::object::Object;
/// use rsim_smr::system::System;
///
/// let sys = System::new(vec![Object::snapshot(2)], vec![]);
/// assert_eq!(sys.space_complexity(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct System {
    objects: Vec<Object>,
    processes: Vec<Box<dyn Process>>,
    trace: Trace,
    /// Steps taken per process, maintained on [`System::step`] so fault
    /// triggers and schedulers can read them in O(1) instead of
    /// re-scanning the trace.
    steps_per_process: Vec<usize>,
    /// `(object, component) -> owner` restrictions; `component` is 0 for
    /// plain registers.
    owners: HashMap<(ObjectId, usize), ProcessId>,
}

impl System {
    /// Creates a system in an initial configuration.
    pub fn new(objects: Vec<Object>, processes: Vec<Box<dyn Process>>) -> Self {
        let n = processes.len();
        System {
            objects,
            processes,
            trace: Trace::new(),
            steps_per_process: vec![0; n],
            owners: HashMap::new(),
        }
    }

    /// Declares `owner` to be the only process allowed to mutate
    /// `component` of `obj` (use component 0 for a plain register).
    /// Installing ownership for every component of a snapshot makes it a
    /// single-writer snapshot.
    pub fn restrict_writer(&mut self, obj: ObjectId, component: usize, owner: ProcessId) {
        self.owners.insert((obj, component), owner);
    }

    /// Declares the m-component snapshot `obj` single-writer with
    /// component `i` owned by process `i`.
    pub fn restrict_single_writer_snapshot(&mut self, obj: ObjectId, m: usize) {
        for i in 0..m {
            self.restrict_writer(obj, i, ProcessId(i));
        }
    }

    /// The declared single-writer owner of `(obj, component)`, if any.
    /// Components without a declared owner are multi-writer. The
    /// pre-flight analyzer keys its single-writer and happens-before
    /// checks on this.
    pub fn owner_of(&self, obj: ObjectId, component: usize) -> Option<ProcessId> {
        self.owners.get(&(obj, component)).copied()
    }

    /// Number of processes (terminated or not).
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The objects of the configuration.
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// The processes of the configuration.
    pub fn process(&self, pid: ProcessId) -> Option<&dyn Process> {
        self.processes.get(pid.0).map(|p| p.as_ref())
    }

    /// The execution trace from the initial configuration.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Seals the trace's owned suffix into its `Arc`-shared prefix so
    /// subsequent [`System::clone`] calls copy no events at all. The
    /// explorer calls this on a configuration before forking it; see
    /// [`Trace::freeze`].
    pub fn freeze_trace(&mut self) {
        self.trace.freeze();
    }

    /// Steps taken by process `pid` so far (0 for unknown ids).
    pub fn steps_of(&self, pid: ProcessId) -> usize {
        self.steps_per_process.get(pid.0).copied().unwrap_or(0)
    }

    /// Space complexity of the configuration in registers (paper §2: an
    /// m-component snapshot counts as m registers).
    pub fn space_complexity(&self) -> usize {
        self.objects.iter().map(Object::register_cost).sum()
    }

    /// What process `pid` is poised to do next. Processes are
    /// deterministic, so this reveals the exact base-object operation
    /// `pid` would perform if scheduled — the explorer's partial-order
    /// reduction uses it to compute step commutation per configuration.
    pub fn poised(&self, pid: ProcessId) -> Poised {
        self.processes[pid.0].poised()
    }

    /// Has process `pid` terminated (is it poised to output)?
    pub fn is_terminated(&self, pid: ProcessId) -> bool {
        matches!(self.processes[pid.0].poised(), Poised::Output(_))
    }

    /// Have all processes terminated?
    pub fn all_terminated(&self) -> bool {
        (0..self.processes.len()).all(|i| self.is_terminated(ProcessId(i)))
    }

    /// The output of process `pid`, if it has terminated.
    pub fn output(&self, pid: ProcessId) -> Option<Value> {
        match self.processes[pid.0].poised() {
            Poised::Output(v) => Some(v),
            Poised::Step(_) => None,
        }
    }

    /// Outputs of all terminated processes, indexed by process.
    pub fn outputs(&self) -> Vec<Option<Value>> {
        (0..self.processes.len()).map(|i| self.output(ProcessId(i))).collect()
    }

    fn check_ownership(&self, pid: ProcessId, op: &Operation) -> Result<(), ModelError> {
        if !op.is_mutation() {
            return Ok(());
        }
        let component = match op {
            Operation::Update { component, .. } | Operation::WriteMax { component, .. } => {
                *component
            }
            _ => 0,
        };
        if let Some(owner) = self.owners.get(&(op.object(), component)) {
            if *owner != pid {
                return Err(ModelError::WriterViolation {
                    process: pid.0,
                    component,
                });
            }
        }
        Ok(())
    }

    /// Applies the next step of process `pid`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ProcessTerminated`] if `pid` already output.
    /// * [`ModelError::BadId`] if `pid` or the target object is unknown.
    /// * [`ModelError::WriterViolation`] on single-writer violations.
    /// * [`ModelError::BadOperation`] if the operation does not fit the
    ///   object.
    pub fn step(&mut self, pid: ProcessId) -> Result<Event, ModelError> {
        let process = self
            .processes
            .get_mut(pid.0)
            .ok_or_else(|| ModelError::BadId(format!("no process {pid}")))?;
        let op = match process.poised() {
            Poised::Step(op) => op,
            Poised::Output(_) => return Err(ModelError::ProcessTerminated(pid.0)),
        };
        let op_clone = op.clone();
        self.check_ownership(pid, &op_clone)?;
        let obj = self
            .objects
            .get_mut(op_clone.object().0)
            .ok_or_else(|| ModelError::BadId(format!("no object {}", op_clone.object())))?;
        let resp = obj.apply(&op_clone)?;
        self.processes[pid.0].receive(resp.clone());
        self.steps_per_process[pid.0] += 1;
        let event = Event { pid, op: op_clone, resp };
        self.trace.push(event.clone());
        Ok(event)
    }

    /// Runs the system under `scheduler` until all processes terminate,
    /// the scheduler returns `None`, or `max_steps` elapse. Returns the
    /// number of steps taken.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`System::step`].
    pub fn run(
        &mut self,
        scheduler: &mut dyn crate::sched::Scheduler,
        max_steps: usize,
    ) -> Result<usize, ModelError> {
        let mut steps = 0;
        while steps < max_steps && !self.all_terminated() {
            let Some(pid) = scheduler.next(self) else {
                break;
            };
            if self.is_terminated(pid) {
                // Terminated processes do nothing when allocated a step
                // (paper §5.1); skip without consuming budget.
                continue;
            }
            self.step(pid)?;
            steps += 1;
        }
        Ok(steps)
    }

    /// Runs process `pid` solo until it terminates or `budget` steps
    /// elapse. Returns its output if it terminated.
    ///
    /// # Errors
    ///
    /// Propagates step errors; returns
    /// [`ModelError::BudgetExhausted`] if the budget runs out.
    pub fn run_solo(&mut self, pid: ProcessId, budget: usize) -> Result<Value, ModelError> {
        for _ in 0..budget {
            if let Some(v) = self.output(pid) {
                return Ok(v);
            }
            self.step(pid)?;
        }
        self.output(pid).ok_or(ModelError::BudgetExhausted {
            budget,
            context: format!("solo run of {pid}"),
        })
    }

    /// The configuration key (object values + process states) as a
    /// string, used by the explorer to deduplicate. Trace is excluded.
    ///
    /// The hot paths use [`System::config_fingerprint`], which hashes
    /// the same bytes without materialising this string; `config_key`
    /// remains the reference encoding the golden regression tests check
    /// the streaming hash against.
    pub fn config_key(&self) -> String {
        use std::fmt::Write;
        let mut key = String::new();
        for o in &self.objects {
            let _ = write!(key, "{o:?};");
        }
        for p in &self.processes {
            let _ = write!(key, "{};", p.state_key());
        }
        key
    }

    /// Stable 64-bit fingerprint of the configuration (object values +
    /// process states; trace excluded), streamed through FNV-1a with
    /// zero allocation. Bit-identical to
    /// `fingerprint(&self.config_key())`.
    pub fn config_fingerprint(&self) -> u64 {
        let mut h = FnvStream::new();
        self.hash_config(&mut h);
        h.finish()
    }

    /// Are two configurations indistinguishable to every process — same
    /// object values and same process states (paper §2)? Traces may
    /// differ.
    ///
    /// Object values are compared exactly; process states are compared
    /// by streamed 64-bit state fingerprints (no allocation), so a
    /// collision — probability 2⁻⁶⁴ per process pair, the same
    /// fingerprint-identity semantics the explorer's deduplication
    /// already relies on — could equate distinct states.
    pub fn indistinguishable(&self, other: &System) -> bool {
        if self.objects != other.objects
            || self.processes.len() != other.processes.len()
        {
            return false;
        }
        self.processes.iter().zip(&other.processes).all(|(a, b)| {
            let mut ha = FnvStream::new();
            let mut hb = FnvStream::new();
            a.write_state_key(&mut ha);
            b.write_state_key(&mut hb);
            ha.finish() == hb.finish()
        })
    }
}

impl ConfigHash for System {
    /// Streams exactly the bytes of [`System::config_key`]: the `Debug`
    /// rendering of each object and the state key of each process, each
    /// terminated by `;`.
    fn hash_config(&self, h: &mut FnvStream) {
        use std::fmt::Write;
        for o in &self.objects {
            o.hash_config(h);
            let _ = h.write_str(";");
        }
        for p in &self.processes {
            p.write_state_key(h);
            let _ = h.write_str(";");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{ProtocolStep, SnapshotProcess, SnapshotProtocol};

    #[derive(Clone, Debug)]
    struct WriteAndRead {
        input: i64,
        wrote: bool,
    }

    impl SnapshotProtocol for WriteAndRead {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(self.input))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn small_system() -> System {
        let p0 = SnapshotProcess::new(WriteAndRead { input: 10, wrote: false }, ObjectId(0));
        let p1 = SnapshotProcess::new(WriteAndRead { input: 20, wrote: false }, ObjectId(0));
        System::new(
            vec![Object::snapshot(1)],
            vec![Box::new(p0), Box::new(p1)],
        )
    }

    #[test]
    fn solo_run_terminates() {
        let mut sys = small_system();
        let out = sys.run_solo(ProcessId(0), 100).unwrap();
        assert_eq!(out, Value::Int(10));
        assert!(sys.is_terminated(ProcessId(0)));
        assert!(!sys.is_terminated(ProcessId(1)));
    }

    #[test]
    fn interleaved_run_with_round_robin() {
        let mut sys = small_system();
        let mut sched = crate::sched::RoundRobin::new();
        sys.run(&mut sched, 1000).unwrap();
        assert!(sys.all_terminated());
        // Both wrote before either's final scan in round-robin order:
        // p0 scan, p1 scan, p0 update, p1 update, p0 scan -> sees 20.
        assert_eq!(sys.output(ProcessId(0)), Some(Value::Int(20)));
        assert_eq!(sys.output(ProcessId(1)), Some(Value::Int(20)));
    }

    #[test]
    fn trace_records_events() {
        let mut sys = small_system();
        sys.step(ProcessId(0)).unwrap();
        sys.step(ProcessId(1)).unwrap();
        assert_eq!(sys.trace().len(), 2);
        assert_eq!(sys.trace()[0].pid, ProcessId(0));
        assert!(matches!(sys.trace()[0].op, Operation::Scan { .. }));
    }

    #[test]
    fn stepping_terminated_process_errors() {
        let mut sys = small_system();
        sys.run_solo(ProcessId(0), 100).unwrap();
        assert!(matches!(
            sys.step(ProcessId(0)),
            Err(ModelError::ProcessTerminated(0))
        ));
    }

    #[test]
    fn single_writer_restriction_enforced() {
        let mut sys = small_system();
        sys.restrict_writer(ObjectId(0), 0, ProcessId(1));
        sys.step(ProcessId(0)).unwrap(); // scan is fine
        let err = sys.step(ProcessId(0)).unwrap_err(); // update violates
        assert!(matches!(err, ModelError::WriterViolation { .. }));
    }

    #[test]
    fn clone_forks_configuration() {
        let mut sys = small_system();
        sys.step(ProcessId(0)).unwrap();
        let fork = sys.clone();
        assert!(sys.indistinguishable(&fork));
        let mut sys2 = sys.clone();
        sys2.step(ProcessId(0)).unwrap();
        assert!(!sys2.indistinguishable(&fork));
    }

    #[test]
    fn per_process_step_counts_track_the_trace() {
        let mut sys = small_system();
        sys.step(ProcessId(0)).unwrap();
        sys.step(ProcessId(1)).unwrap();
        sys.step(ProcessId(0)).unwrap();
        assert_eq!(sys.steps_of(ProcessId(0)), 2);
        assert_eq!(sys.steps_of(ProcessId(1)), 1);
        assert_eq!(sys.steps_of(ProcessId(9)), 0);
        let counts = summarize_counts(&sys);
        assert_eq!(counts, vec![2, 1]);
    }

    fn summarize_counts(sys: &System) -> Vec<usize> {
        (0..sys.process_count())
            .map(|i| sys.trace().iter().filter(|e| e.pid == ProcessId(i)).count())
            .collect()
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut sys = small_system();
        let err = sys.run_solo(ProcessId(0), 1).unwrap_err();
        assert!(matches!(err, ModelError::BudgetExhausted { .. }));
    }
}
