//! Deterministic randomised campaign runner.
//!
//! A *campaign* is a matrix of seeded runs — scheduler specs × a seed
//! range — over systems produced by a caller-supplied factory. The
//! runner fans the matrix across worker threads, records the seed of
//! every run so any failure replays exactly (`campaign --seed N`), and
//! aggregates distinct-configurations/terminations/violations into a
//! machine-readable report.
//!
//! Determinism: run outcomes depend only on `(scheduler spec, seed)`,
//! never on which worker executed them. Records are merged in matrix
//! order, and the distinct-configuration count is the size of a shared
//! [`FingerprintCache`] — a set union, so it too is independent of
//! thread interleaving. A campaign report is identical at any thread
//! count.

use crate::error::ModelError;
use crate::fault::{FaultPlan, FaultScheduler};
use crate::fingerprint::FingerprintCache;
use crate::json::Json;
use crate::process::ProcessId;
use crate::sched::{Crash, Obstruction, Quantum, Random, RoundRobin, Scheduler};
use crate::system::System;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A buildable scheduler description — the "which adversary" half of a
/// run's identity (the seed is the other half).
#[derive(Clone, Debug, PartialEq)]
pub enum SchedulerSpec {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`Random`] seeded with the run seed.
    Random,
    /// [`Quantum`] with the given quantum.
    Quantum(usize),
    /// [`Obstruction`] with isolated-set bound `x`, chaos prefix and
    /// burst length.
    Obstruction {
        /// Maximum size of the eventually-isolated set.
        x: usize,
        /// Random steps before bursts begin.
        chaos_steps: usize,
        /// Steps per isolated burst.
        burst_len: usize,
    },
    /// [`Crash`] with a crash budget and per-step crash probability.
    Crash {
        /// Maximum processes to crash.
        max_crashes: usize,
        /// Per-step crash probability.
        probability: f64,
    },
}

impl SchedulerSpec {
    /// Parses a spec from its CLI syntax:
    ///
    /// * `rr` / `round-robin`
    /// * `random`
    /// * `quantum:<q>`
    /// * `obstruction:<x>` (chaos 32, bursts 64)
    /// * `crash:<max>` (probability 0.05)
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] naming the malformed spec.
    pub fn parse(spec: &str) -> Result<SchedulerSpec, ModelError> {
        let bad = |reason: String| ModelError::BadSpec {
            spec: spec.to_string(),
            reason,
        };
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        let numeric = |what: &str| -> Result<usize, ModelError> {
            arg.ok_or_else(|| bad(format!("{head} needs `:<{what}>`")))?
                .parse::<usize>()
                .map_err(|_| bad(format!("bad {what}")))
        };
        match head {
            "rr" | "round-robin" => Ok(SchedulerSpec::RoundRobin),
            "random" => Ok(SchedulerSpec::Random),
            "quantum" => {
                let q = numeric("quantum")?;
                if q == 0 {
                    return Err(bad("quantum must be >= 1".into()));
                }
                Ok(SchedulerSpec::Quantum(q))
            }
            "obstruction" => Ok(SchedulerSpec::Obstruction {
                x: numeric("x")?,
                chaos_steps: 32,
                burst_len: 64,
            }),
            "crash" => Ok(SchedulerSpec::Crash {
                max_crashes: numeric("max-crashes")?,
                probability: 0.05,
            }),
            _ => Err(bad(
                "unknown scheduler (expected rr, random, quantum:<q>, \
                 obstruction:<x>, crash:<max>)"
                    .into(),
            )),
        }
    }

    /// Builds the scheduler for one run.
    pub fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        match *self {
            SchedulerSpec::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerSpec::Random => Box::new(Random::seeded(seed)),
            SchedulerSpec::Quantum(q) => Box::new(Quantum::new(q)),
            SchedulerSpec::Obstruction { x, chaos_steps, burst_len } => {
                Box::new(Obstruction::new(x, chaos_steps, burst_len, seed))
            }
            SchedulerSpec::Crash { max_crashes, probability } => {
                Box::new(Crash::new(max_crashes, probability, seed))
            }
        }
    }
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerSpec::RoundRobin => write!(f, "rr"),
            SchedulerSpec::Random => write!(f, "random"),
            SchedulerSpec::Quantum(q) => write!(f, "quantum:{q}"),
            SchedulerSpec::Obstruction { x, .. } => write!(f, "obstruction:{x}"),
            SchedulerSpec::Crash { max_crashes, .. } => {
                write!(f, "crash:{max_crashes}")
            }
        }
    }
}

/// Campaign shape: the scheduler mix, the seed range, per-run budget
/// and worker count.
#[derive(Clone, PartialEq, Debug)]
pub struct CampaignConfig {
    /// Scheduler mix; every spec runs against every seed.
    pub schedulers: Vec<SchedulerSpec>,
    /// First seed of the range.
    pub seed_start: u64,
    /// Seeds per scheduler (total runs = `schedulers.len() * runs`).
    pub runs: usize,
    /// Step budget per run.
    pub budget: usize,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            schedulers: vec![SchedulerSpec::Random],
            seed_start: 0,
            runs: 100,
            budget: 2_000,
            threads: 0,
        }
    }
}

/// Hardening knobs for [`run_campaign_with`], separate from
/// [`CampaignConfig`] so the campaign *shape* (which determines the
/// report) stays distinct from *how defensively* it executes.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Wall-clock watchdog: once elapsed, workers stop claiming runs
    /// and the report records how many were skipped. Skipping under a
    /// wall-clock limit is inherently machine-dependent; the report
    /// says so rather than silently dropping runs. Before the hard
    /// stop, a *soft* deadline at 80% of the limit degrades sampling
    /// breadth (per-run budget drops to a quarter) so more cells
    /// complete — shallowly — instead of being skipped outright.
    pub wall_limit: Option<Duration>,
    /// Run-count watchdog: stop after this many runs complete in this
    /// session (deterministic truncation, used to exercise `--resume`).
    pub stop_after: Option<usize>,
    /// Fingerprint-cache memory budget in entries; when exceeded the
    /// cache degrades to bounded-LRU shards and `distinct_configs`
    /// becomes approximate (flagged in the report). `None` = unbounded.
    pub cache_budget: Option<usize>,
    /// Write a checkpoint after every `N` completed runs (and once at
    /// the end of the session). Requires [`CampaignOptions::checkpoint_path`].
    pub checkpoint_every: Option<usize>,
    /// Where checkpoints are written (atomically: tmp file + rename).
    pub checkpoint_path: Option<PathBuf>,
    /// Resume state from an earlier checkpoint: completed runs are not
    /// re-executed and the fingerprint set is restored, so the final
    /// aggregates are bit-for-bit those of an uninterrupted campaign.
    pub resume_from: Option<CampaignCheckpoint>,
    /// Supervisor: re-attempt a cell this many times after a transient
    /// worker panic before recording it as failed. Only panics are
    /// retried — violations, runtime errors, and cell timeouts are
    /// deterministic outcomes and retrying them would just burn the
    /// deadline.
    pub retries: usize,
    /// Supervisor: base delay between retry attempts, doubled per
    /// attempt (bounded exponential backoff).
    pub retry_backoff: Duration,
    /// Supervisor: per-cell wall-clock timeout. A cell that exceeds it
    /// is recorded as a structured [`ModelError::CellTimeout`] failure
    /// so one pathological schedule cannot starve the worker fleet.
    pub cell_timeout: Option<Duration>,
    /// Campaign identity stamped into every checkpoint this session
    /// writes (see [`campaign_spec_id`]), so a later `--resume` can
    /// fail closed instead of merging a checkpoint from a different
    /// campaign.
    pub spec_id: Option<String>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            wall_limit: None,
            stop_after: None,
            cache_budget: None,
            checkpoint_every: None,
            checkpoint_path: None,
            resume_from: None,
            retries: 2,
            retry_backoff: Duration::from_millis(1),
            cell_timeout: None,
            spec_id: None,
        }
    }
}

/// The identity string of a campaign: protocol plus every parameter
/// that shapes the matrix or the per-run outcomes. Two campaigns with
/// the same spec id produce interchangeable checkpoints; any other
/// pair must never be merged. `threads` is deliberately excluded — the
/// report is thread-count independent by construction.
pub fn campaign_spec_id(protocol: &str, config: &CampaignConfig) -> String {
    let schedulers: Vec<String> =
        config.schedulers.iter().map(ToString::to_string).collect();
    format!(
        "protocol={} sched={} seeds={}+{} budget={}",
        protocol,
        schedulers.join(","),
        config.seed_start,
        config.runs,
        config.budget,
    )
}

/// A campaign checkpoint: which matrix indices already ran (with their
/// records) plus the fingerprint set at that point. Restoring both is
/// what makes resumed aggregates — including `distinct_configs` —
/// identical to an uninterrupted run.
#[derive(Clone, Debug, Default)]
pub struct CampaignCheckpoint {
    /// The identity of the campaign that wrote this checkpoint (see
    /// [`campaign_spec_id`]); `None` only in pre-service checkpoints.
    /// Resume validates it so two different campaigns can never be
    /// silently merged.
    pub spec: Option<String>,
    /// Completed `(matrix index, record)` pairs.
    pub completed: Vec<(usize, RunRecord)>,
    /// Sorted fingerprint set at checkpoint time.
    pub fingerprints: Vec<u64>,
}

/// Serialises one completed `(matrix index, record)` pair as the JSON
/// object used in checkpoints and service shard results — one format,
/// so shard records merge bit-for-bit with single-process checkpoints.
pub(crate) fn record_entry_json(index: usize, r: &RunRecord) -> String {
    format!(
        "{{\"index\": {}, \"scheduler\": {}, \"seed\": {}, \
         \"steps\": {}, \"terminated\": {}, \"violation\": {}, \
         \"error\": {}, \"attempts\": {}, \"pruned\": {}, \
         \"prefilter_hits\": {}, \"static_indep_pairs\": {}}}",
        index,
        json_string(&r.scheduler),
        r.seed,
        r.steps,
        r.terminated,
        r.violation.as_deref().map_or("null".into(), json_string),
        r.error.as_deref().map_or("null".into(), json_string),
        r.attempts,
        r.pruned,
        r.prefilter_hits,
        r.static_indep_pairs,
    )
}

/// Parses one checkpoint/shard record entry (inverse of
/// [`record_entry_json`]).
///
/// # Errors
///
/// Returns [`ModelError::BadSpec`] on missing or mistyped fields.
pub(crate) fn parse_record_entry(entry: &Json) -> Result<(usize, RunRecord), ModelError> {
    let bad = |reason: &str| ModelError::BadSpec {
        spec: "checkpoint".into(),
        reason: reason.into(),
    };
    let field =
        |key: &str| entry.get(key).ok_or_else(|| bad(&format!("missing `{key}`")));
    let index = field("index")?.as_usize().ok_or_else(|| bad("bad `index`"))?;
    let opt_str = |key: &str| -> Option<String> {
        entry.get(key)?.as_str().map(str::to_string)
    };
    Ok((
        index,
        RunRecord {
            scheduler: field("scheduler")?
                .as_str()
                .ok_or_else(|| bad("bad `scheduler`"))?
                .to_string(),
            seed: field("seed")?.as_u64().ok_or_else(|| bad("bad `seed`"))?,
            steps: field("steps")?.as_usize().ok_or_else(|| bad("bad `steps`"))?,
            terminated: field("terminated")?
                .as_bool()
                .ok_or_else(|| bad("bad `terminated`"))?,
            violation: opt_str("violation"),
            error: opt_str("error"),
            // Absent in pre-supervisor checkpoints: one attempt.
            attempts: entry.get("attempts").and_then(Json::as_usize).unwrap_or(1),
            // Absent in pre-DPOR checkpoints: no redundancy recorded.
            pruned: entry.get("pruned").and_then(Json::as_usize).unwrap_or(0),
            // Absent in pre-interference checkpoints: no static
            // analysis recorded.
            prefilter_hits: entry
                .get("prefilter_hits")
                .and_then(Json::as_usize)
                .unwrap_or(0),
            static_indep_pairs: entry
                .get("static_indep_pairs")
                .and_then(Json::as_usize)
                .unwrap_or(0),
        },
    ))
}

impl CampaignCheckpoint {
    /// Serialises the checkpoint as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        if let Some(spec) = &self.spec {
            out.push_str(&format!("  \"spec\": {},\n", json_string(spec)));
        }
        out.push_str("  \"completed\": [\n");
        for (i, (index, r)) in self.completed.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&record_entry_json(*index, r));
            out.push_str(if i + 1 < self.completed.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"fingerprints\": [");
        for (i, fp) in self.fingerprints.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&fp.to_string());
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a checkpoint from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on malformed or missing fields.
    pub fn parse(text: &str) -> Result<CampaignCheckpoint, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "checkpoint".into(),
            reason: reason.into(),
        };
        let doc = Json::parse(text)?;
        let mut checkpoint = CampaignCheckpoint {
            spec: doc.get("spec").and_then(Json::as_str).map(str::to_string),
            ..CampaignCheckpoint::default()
        };
        for entry in doc
            .get("completed")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `completed` array"))?
        {
            checkpoint.completed.push(parse_record_entry(entry)?);
        }
        for fp in doc
            .get("fingerprints")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `fingerprints` array"))?
        {
            checkpoint
                .fingerprints
                .push(fp.as_u64().ok_or_else(|| bad("bad fingerprint"))?);
        }
        Ok(checkpoint)
    }

    /// Fails closed if this checkpoint was written by a campaign whose
    /// identity differs from `requested` (see [`campaign_spec_id`]).
    /// Checkpoints without a recorded spec (pre-service format) pass —
    /// there is nothing to compare against.
    ///
    /// # Errors
    ///
    /// [`ModelError::ResumeMismatch`] naming both specs.
    pub fn ensure_matches(&self, requested: &str) -> Result<(), ModelError> {
        match &self.spec {
            Some(spec) if spec != requested => Err(ModelError::ResumeMismatch {
                checkpoint: spec.clone(),
                requested: requested.to_string(),
            }),
            _ => Ok(()),
        }
    }

    /// Loads a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] if the file cannot be read or
    /// parsed.
    pub fn load(path: &Path) -> Result<CampaignCheckpoint, ModelError> {
        let text = std::fs::read_to_string(path).map_err(|e| ModelError::BadSpec {
            spec: path.display().to_string(),
            reason: format!("cannot read checkpoint: {e}"),
        })?;
        CampaignCheckpoint::parse(&text)
    }
}

/// Outcome of a single run; `(scheduler, seed)` replays it exactly.
#[derive(Clone, PartialEq, Debug)]
pub struct RunRecord {
    /// The scheduler spec, in its parseable syntax.
    pub scheduler: String,
    /// The run seed (seeds the scheduler and the system factory).
    pub seed: u64,
    /// Steps actually taken.
    pub steps: usize,
    /// Did every process terminate within budget?
    pub terminated: bool,
    /// Check failure on the final configuration, if any.
    pub violation: Option<String>,
    /// Runtime error, if the run aborted.
    pub error: Option<String>,
    /// Supervisor attempts this cell took (1 = first try; larger when
    /// transient worker panics were retried).
    pub attempts: usize,
    /// Happens-before redundancy of this run's schedule: adjacent step
    /// pairs that commute (per [`crate::hb::independent`]) and are in
    /// process-id-inverted order — each is an interleaving the
    /// explorer's partial-order reduction would have merged with its
    /// swapped twin. The campaign analogue of
    /// [`crate::explore::ExploreReport::pruned`].
    pub pruned: usize,
    /// Adjacent schedule pairs the run's static interference matrix
    /// answered "independent", each audited against the dynamic
    /// oracle after the run (a contradiction fails the run closed
    /// with [`ModelError::StaticUnsound`]). The campaign analogue of
    /// [`crate::explore::ExploreReport::prefilter_hits`].
    pub prefilter_hits: usize,
    /// Unordered process pairs the run's static interference matrix
    /// proved independent before the first step.
    pub static_indep_pairs: usize,
}

impl RunRecord {
    fn is_failure(&self) -> bool {
        self.violation.is_some() || self.error.is_some()
    }
}

/// Per-scheduler aggregate.
#[derive(Clone, Debug)]
pub struct SchedulerTally {
    /// The scheduler spec, in its parseable syntax.
    pub scheduler: String,
    /// Runs executed with this scheduler.
    pub runs: usize,
    /// Runs in which every process terminated.
    pub terminated: usize,
    /// Runs with a violation or error.
    pub failures: usize,
    /// Total steps across the runs.
    pub total_steps: usize,
    /// Total happens-before redundancy ([`RunRecord::pruned`]) across
    /// the runs.
    pub pruned: usize,
    /// Total static-prefilter confirmations
    /// ([`RunRecord::prefilter_hits`]) across the runs.
    pub prefilter_hits: usize,
}

/// Aggregated campaign outcome. All fields are deterministic functions
/// of the [`CampaignConfig`] and the system factory.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The configuration that produced this report.
    pub config: CampaignConfig,
    /// Total runs executed.
    pub total_runs: usize,
    /// Runs in which every process terminated within budget.
    pub terminated_runs: usize,
    /// Distinct configurations visited across all runs (fingerprint
    /// cache size — a set union, thread-count independent).
    pub distinct_configs: usize,
    /// Total steps across all runs.
    pub total_steps: usize,
    /// Total happens-before redundancy across all runs: schedule steps
    /// that commute with their inverted-order predecessor. The
    /// campaign-side reduction metric, summed per run so shard merges
    /// reproduce it bit-for-bit.
    pub total_pruned: usize,
    /// Total static-prefilter confirmations across all runs (see
    /// [`RunRecord::prefilter_hits`]), summed per run.
    pub prefilter_hits: usize,
    /// Unordered process pairs the static interference matrix proved
    /// independent (the maximum across records — every run of one
    /// campaign analyzes the same protocol shape).
    pub static_indep_pairs: usize,
    /// Per-scheduler tallies, in scheduler-mix order.
    pub per_scheduler: Vec<SchedulerTally>,
    /// Every failing run, in matrix order; each replays from its seed.
    pub failures: Vec<RunRecord>,
    /// Runs not executed because a watchdog fired (wall-clock or
    /// run-count); 0 for a complete campaign.
    pub skipped_runs: usize,
    /// Why runs were skipped, when they were. Never silent: a truncated
    /// campaign always says so here.
    pub truncation: Option<String>,
    /// The fingerprint cache hit its memory budget: `distinct_configs`
    /// is an over-count from that point on.
    pub cache_truncated: bool,
    /// Runs the supervisor re-attempted after a transient worker panic
    /// (each run's [`RunRecord::attempts`] has the detail).
    pub retried_runs: usize,
    /// Runs executed at reduced budget because the wall-clock soft
    /// deadline had passed (the degradation ladder's first rung).
    pub degraded_runs: usize,
}

impl CampaignReport {
    /// Did every run terminate with no violations or errors, with no
    /// runs skipped by a watchdog?
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
            && self.terminated_runs == self.total_runs
            && self.skipped_runs == 0
    }

    /// The campaign-side reduction factor:
    /// `(total_steps + total_pruned) / total_steps` — how much schedule
    /// redundancy the executed mix carried. `1.0` for an empty
    /// campaign.
    pub fn reduction_factor(&self) -> f64 {
        if self.total_steps == 0 {
            return 1.0;
        }
        (self.total_steps + self.total_pruned) as f64 / self.total_steps as f64
    }

    /// Renders the report as JSON (hand-rolled: the workspace builds
    /// offline, without serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schedulers\": [{}],\n",
            self.config
                .schedulers
                .iter()
                .map(|s| json_string(&s.to_string()))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"seed_start\": {},\n", self.config.seed_start));
        out.push_str(&format!("  \"runs_per_scheduler\": {},\n", self.config.runs));
        out.push_str(&format!("  \"budget\": {},\n", self.config.budget));
        out.push_str(&format!("  \"total_runs\": {},\n", self.total_runs));
        out.push_str(&format!("  \"terminated_runs\": {},\n", self.terminated_runs));
        out.push_str(&format!("  \"distinct_configs\": {},\n", self.distinct_configs));
        out.push_str(&format!("  \"total_steps\": {},\n", self.total_steps));
        out.push_str(&format!("  \"total_pruned\": {},\n", self.total_pruned));
        out.push_str(&format!("  \"prefilter_hits\": {},\n", self.prefilter_hits));
        out.push_str(&format!(
            "  \"static_indep_pairs\": {},\n",
            self.static_indep_pairs
        ));
        out.push_str(&format!(
            "  \"reduction_factor\": {:.4},\n",
            self.reduction_factor()
        ));
        out.push_str(&format!("  \"skipped_runs\": {},\n", self.skipped_runs));
        out.push_str(&format!(
            "  \"truncation\": {},\n",
            self.truncation.as_deref().map_or("null".into(), json_string)
        ));
        out.push_str(&format!(
            "  \"cache_truncated\": {},\n",
            self.cache_truncated
        ));
        out.push_str(&format!("  \"retried_runs\": {},\n", self.retried_runs));
        out.push_str(&format!("  \"degraded_runs\": {},\n", self.degraded_runs));
        out.push_str("  \"per_scheduler\": [\n");
        for (i, t) in self.per_scheduler.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scheduler\": {}, \"runs\": {}, \"terminated\": {}, \
                 \"failures\": {}, \"total_steps\": {}, \"pruned\": {}, \
                 \"prefilter_hits\": {}}}{}\n",
                json_string(&t.scheduler),
                t.runs,
                t.terminated,
                t.failures,
                t.total_steps,
                t.pruned,
                t.prefilter_hits,
                if i + 1 < self.per_scheduler.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"failures\": [\n");
        for (i, r) in self.failures.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scheduler\": {}, \"seed\": {}, \"steps\": {}, \
                 \"terminated\": {}, \"violation\": {}, \"error\": {}}}{}\n",
                json_string(&r.scheduler),
                r.seed,
                r.steps,
                r.terminated,
                r.violation.as_deref().map_or("null".into(), json_string),
                r.error.as_deref().map_or("null".into(), json_string),
                if i + 1 < self.failures.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON string literal with escaping (the workspace-wide routine in
/// [`crate::json::escape`]).
fn json_string(s: &str) -> String {
    crate::json::escape(s)
}

/// How often the per-cell timeout is polled, in steps: cheap enough to
/// be negligible, frequent enough that a pathological cell overshoots
/// its deadline by at most a few microseconds of stepping.
const TIMEOUT_POLL_STEPS: usize = 64;

/// Executes one run and records its outcome. The final configuration is
/// validated with `check`; intermediate configurations are fingerprinted
/// into `cache` when one is supplied; when a `cell_timeout` is set, the
/// wall clock is polled every [`TIMEOUT_POLL_STEPS`] steps and an
/// expired cell aborts with a structured [`ModelError::CellTimeout`].
fn execute_run(
    spec: &SchedulerSpec,
    seed: u64,
    budget: usize,
    system: &mut System,
    check: &dyn Fn(&System) -> Option<String>,
    cache: Option<&FingerprintCache>,
    cell_timeout: Option<Duration>,
) -> RunRecord {
    let mut record = RunRecord {
        scheduler: spec.to_string(),
        seed,
        steps: 0,
        terminated: false,
        violation: None,
        error: None,
        attempts: 1,
        pruned: 0,
        prefilter_hits: 0,
        static_indep_pairs: 0,
    };
    // The static interference matrix of the pristine entry system: it
    // never mutates `system`, and every schedule pair it proves
    // independent is audited against the dynamic oracle once the run's
    // trace is complete.
    let matrix = crate::analyze::InterferenceMatrix::build(
        system,
        crate::analyze::DEFAULT_BUDGET,
    );
    record.static_indep_pairs = matrix.indep_pairs();
    let trace_start = system.trace().len();
    let mut scheduler = spec.build(seed);
    let deadline = cell_timeout.map(|limit| (Instant::now() + limit, limit));
    if cache.is_some() || deadline.is_some() {
        if let Some(cache) = cache {
            cache.insert_fingerprint(system.config_fingerprint());
        }
        while record.steps < budget && !system.all_terminated() {
            if let Some((at, limit)) = deadline {
                if record.steps.is_multiple_of(TIMEOUT_POLL_STEPS) && Instant::now() >= at
                {
                    record.error = Some(
                        ModelError::CellTimeout {
                            limit_ms: limit.as_millis(),
                            context: format!("campaign run `{spec}` seed {seed}"),
                        }
                        .to_string(),
                    );
                    return record;
                }
            }
            let Some(pid) = scheduler.next(system) else { break };
            if system.is_terminated(pid) {
                continue;
            }
            if let Err(err) = system.step(pid) {
                record.error = Some(err.to_string());
                return record;
            }
            record.steps += 1;
            if let Some(cache) = cache {
                cache.insert_fingerprint(system.config_fingerprint());
            }
        }
    } else {
        match system.run(scheduler.as_mut(), budget) {
            Ok(steps) => record.steps = steps,
            Err(err) => {
                record.error = Some(err.to_string());
                return record;
            }
        }
    }
    record.terminated = system.all_terminated();
    record.violation = check(system);
    record.pruned = commuting_inversions(system, trace_start);
    match static_audit(system, &matrix, trace_start) {
        Ok(hits) => record.prefilter_hits = hits,
        Err(err) => record.error = Some(err.to_string()),
    }
    record
}

/// Audits the run's schedule against its static interference matrix:
/// every adjacent event pair the matrix calls independent must also be
/// dynamically independent per [`crate::hb::independent`]. Confirmed
/// answers are the run's prefilter hits; a contradiction means the
/// static analyzer under-approximated dependence — an analyzer bug —
/// and fails the run closed.
///
/// # Errors
///
/// [`ModelError::StaticUnsound`] naming the pair and its operations.
fn static_audit(
    system: &System,
    matrix: &crate::analyze::InterferenceMatrix,
    trace_start: usize,
) -> Result<usize, ModelError> {
    let mut prev: Option<&crate::system::Event> = None;
    let mut hits = 0;
    for event in system.trace().events_from(trace_start) {
        if let Some(p) = prev {
            if p.pid != event.pid && matrix.independent(p.pid.0, event.pid.0) {
                if crate::hb::independent(&p.op, &event.op) {
                    hits += 1;
                } else {
                    return Err(ModelError::StaticUnsound {
                        p: p.pid.0.min(event.pid.0),
                        q: p.pid.0.max(event.pid.0),
                        ops: format!("{:?} vs {:?}", p.op, event.op),
                    });
                }
            }
        }
        prev = Some(event);
    }
    Ok(hits)
}

/// Counts the happens-before redundancy of a completed run's schedule:
/// adjacent event pairs whose operations commute
/// ([`crate::hb::independent`]) but arrive in process-id-inverted
/// order. Each such pair is the twin of a canonically ordered schedule
/// the explorer's partial-order reduction would have kept instead — so
/// this is the per-run "pruned" tally campaign aggregates and service
/// shard merges sum deterministically.
fn commuting_inversions(system: &System, trace_start: usize) -> usize {
    let mut prev: Option<&crate::system::Event> = None;
    let mut count = 0;
    for event in system.trace().events_from(trace_start) {
        if let Some(p) = prev {
            if p.pid.0 > event.pid.0 && crate::hb::independent(&p.op, &event.op) {
                count += 1;
            }
        }
        prev = Some(event);
    }
    count
}

/// Replays one run of a campaign: same `(spec, seed)` → same outcome.
/// This is what `campaign --seed N` uses to reproduce a failure.
pub fn replay_run<F>(
    spec: &SchedulerSpec,
    seed: u64,
    budget: usize,
    factory: F,
    check: &dyn Fn(&System) -> Option<String>,
) -> RunRecord
where
    F: Fn(u64) -> System,
{
    let mut system = factory(seed);
    execute_run(spec, seed, budget, &mut system, check, None, None)
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Executes one run with panic isolation: a panicking run (factory,
/// scheduler, or check) becomes a structured
/// [`ModelError::WorkerPanic`] record carrying its replay coordinates
/// instead of tearing down the worker.
fn run_one_guarded<F>(
    spec: &SchedulerSpec,
    seed: u64,
    budget: usize,
    factory: &F,
    check: &(dyn Fn(&System) -> Option<String> + Sync),
    cache: Option<&FingerprintCache>,
    cell_timeout: Option<Duration>,
) -> RunRecord
where
    F: Fn(u64) -> System + Sync,
{
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let mut system = factory(seed);
        execute_run(spec, seed, budget, &mut system, check, cache, cell_timeout)
    }));
    match attempt {
        Ok(record) => record,
        Err(payload) => RunRecord {
            scheduler: spec.to_string(),
            seed,
            steps: 0,
            terminated: false,
            violation: None,
            error: Some(
                ModelError::WorkerPanic {
                    context: format!("campaign run `{spec}` seed {seed}"),
                    message: panic_message(payload.as_ref()),
                }
                .to_string(),
            ),
            attempts: 1,
            pruned: 0,
            prefilter_hits: 0,
            static_indep_pairs: 0,
        },
    }
}

/// Is this record's error a worker panic (the only failure class the
/// supervisor treats as transient and retries)?
fn is_transient(record: &RunRecord) -> bool {
    record
        .error
        .as_deref()
        .is_some_and(|e| e.starts_with("worker panic"))
}

/// Bounded exponential backoff for retry attempt `attempt` (1-based).
fn backoff_for(base: Duration, attempt: usize) -> Duration {
    base.saturating_mul(1u32 << attempt.min(10) as u32)
}

/// Supervises one cell: runs it with panic isolation and re-attempts
/// transient worker panics up to `retries` times (with bounded
/// exponential backoff) before recording the failure. The returned
/// record's [`RunRecord::attempts`] says how many tries the cell took.
fn run_cell_supervised<F>(
    spec: &SchedulerSpec,
    seed: u64,
    budget: usize,
    factory: &F,
    check: &(dyn Fn(&System) -> Option<String> + Sync),
    cache: Option<&FingerprintCache>,
    options: &CampaignOptions,
) -> RunRecord
where
    F: Fn(u64) -> System + Sync,
{
    let mut attempt = 1;
    loop {
        let mut record = run_one_guarded(
            spec,
            seed,
            budget,
            factory,
            check,
            cache,
            options.cell_timeout,
        );
        record.attempts = attempt;
        if is_transient(&record) && attempt <= options.retries {
            std::thread::sleep(backoff_for(options.retry_backoff, attempt));
            attempt += 1;
            continue;
        }
        return record;
    }
}

/// Writes a checkpoint atomically (tmp file + rename). A failed write
/// is reported on stderr, never silently dropped, and does not abort
/// the campaign.
fn write_checkpoint(
    path: &Path,
    spec: Option<&str>,
    mut completed: Vec<(usize, RunRecord)>,
    cache: &FingerprintCache,
) {
    completed.sort_by_key(|(index, _)| *index);
    let checkpoint = CampaignCheckpoint {
        spec: spec.map(str::to_string),
        completed,
        fingerprints: cache.snapshot(),
    };
    if let Err(e) = crate::json::write_atomic(path, &checkpoint.to_json()) {
        eprintln!("warning: checkpoint write to {} failed: {e}", path.display());
    }
}

/// Why workers stopped claiming runs (0 = still running).
const STOP_NONE: usize = 0;
const STOP_WALL: usize = 1;
const STOP_COUNT: usize = 2;

/// The mandatory campaign pre-flight: statically lints the system the
/// factory builds for the campaign's first seed, before any run
/// executes. A deny-level finding rejects the whole campaign with
/// [`ModelError::PreflightRejected`] — minutes of exploration are not
/// spent on a protocol that violates a paper precondition the linter
/// can see up front. The CLI calls this once per campaign and offers
/// `--no-preflight` to skip it.
///
/// # Errors
///
/// [`ModelError::PreflightRejected`] carrying the rendered deny-level
/// diagnostics.
pub fn preflight_campaign<F>(
    factory: F,
    seed: u64,
    lint_config: &crate::analyze::LintConfig,
) -> Result<crate::analyze::AnalysisReport, ModelError>
where
    F: Fn(u64) -> System,
{
    crate::analyze::preflight(&factory(seed), lint_config)
}

/// Runs the full campaign matrix (scheduler mix × seed range) across
/// worker threads. Equivalent to [`run_campaign_with`] with default
/// [`CampaignOptions`].
///
/// `factory(seed)` builds the system for a run; `check` validates the
/// final configuration (return a description to flag a violation).
/// Runtime errors and panics inside a run are recorded as failures,
/// not propagated.
pub fn run_campaign<F>(
    config: &CampaignConfig,
    factory: F,
    check: &(dyn Fn(&System) -> Option<String> + Sync),
) -> CampaignReport
where
    F: Fn(u64) -> System + Sync,
{
    run_campaign_with(config, &CampaignOptions::default(), factory, check)
}

/// [`run_campaign`] with hardening options: wall-clock and run-count
/// watchdogs (graceful, reported truncation), periodic checkpoints,
/// resume from a checkpoint, and a fingerprint-cache memory budget.
pub fn run_campaign_with<F>(
    config: &CampaignConfig,
    options: &CampaignOptions,
    factory: F,
    check: &(dyn Fn(&System) -> Option<String> + Sync),
) -> CampaignReport
where
    F: Fn(u64) -> System + Sync,
{
    let total = config.schedulers.len() * config.runs;
    let threads = if config.threads > 0 {
        config.threads
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    };
    let cache = FingerprintCache::for_threads_bounded(threads, options.cache_budget);

    // Restore resume state: completed runs keep their records and are
    // never re-executed; their fingerprints re-seed the dedup set so
    // `distinct_configs` matches an uninterrupted campaign exactly.
    let mut already = vec![false; total];
    let mut resumed: Vec<(usize, RunRecord)> = Vec::new();
    if let Some(checkpoint) = &options.resume_from {
        for fp in &checkpoint.fingerprints {
            cache.insert_fingerprint(*fp);
        }
        for (index, record) in &checkpoint.completed {
            if *index < total && !already[*index] {
                already[*index] = true;
                resumed.push((*index, record.clone()));
            }
        }
    }

    let now = Instant::now();
    let deadline = options.wall_limit.map(|limit| now + limit);
    // Degradation ladder, rung 1: past 80% of the wall limit, runs
    // execute at a quarter of the budget — sampling breadth shrinks
    // before cells get skipped outright at the hard stop.
    let soft_deadline = options.wall_limit.map(|limit| now + limit / 5 * 4);
    let degraded_budget = (config.budget / 4).max(1);
    let records: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(resumed);
    let cursor = AtomicUsize::new(0);
    let stop = AtomicUsize::new(STOP_NONE);
    let executed = AtomicUsize::new(0);
    let degraded = AtomicUsize::new(0);
    let last_checkpoint = Mutex::new(0usize);
    let chunk = total.div_ceil(threads * 8).clamp(1, 256);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(total.max(1)) {
            scope.spawn(|| {
                loop {
                    if stop.load(Ordering::Relaxed) != STOP_NONE {
                        break;
                    }
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let mut local: Vec<(usize, RunRecord)> = Vec::new();
                    // `index` is a matrix coordinate (spec, seed), not
                    // just a subscript into `already`.
                    #[allow(clippy::needless_range_loop)]
                    for index in start..(start + chunk).min(total) {
                        if already[index] {
                            continue;
                        }
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            let _ = stop.compare_exchange(
                                STOP_NONE,
                                STOP_WALL,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            );
                            break;
                        }
                        if stop.load(Ordering::Relaxed) != STOP_NONE {
                            break;
                        }
                        // Matrix order: scheduler-major, then seed.
                        let spec = &config.schedulers[index / config.runs];
                        let seed =
                            config.seed_start + (index % config.runs) as u64;
                        let budget = if soft_deadline
                            .is_some_and(|d| Instant::now() >= d)
                        {
                            degraded.fetch_add(1, Ordering::Relaxed);
                            degraded_budget
                        } else {
                            config.budget
                        };
                        let record = run_cell_supervised(
                            spec,
                            seed,
                            budget,
                            &factory,
                            check,
                            Some(&cache),
                            options,
                        );
                        local.push((index, record));
                        let done = executed.fetch_add(1, Ordering::Relaxed) + 1;
                        if options.stop_after.is_some_and(|cap| done >= cap) {
                            let _ = stop.compare_exchange(
                                STOP_NONE,
                                STOP_COUNT,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            );
                            break;
                        }
                    }
                    // Merge the chunk, then checkpoint if a full period
                    // of runs completed since the last write.
                    let to_checkpoint = {
                        let mut recs = records.lock().expect("records lock");
                        recs.extend(local);
                        match (options.checkpoint_every, &options.checkpoint_path) {
                            (Some(every), Some(_path)) if every > 0 => {
                                let mut last = last_checkpoint
                                    .lock()
                                    .expect("checkpoint counter lock");
                                if recs.len() >= *last + every {
                                    *last = recs.len();
                                    Some(recs.clone())
                                } else {
                                    None
                                }
                            }
                            _ => None,
                        }
                    };
                    if let (Some(completed), Some(path)) =
                        (to_checkpoint, &options.checkpoint_path)
                    {
                        write_checkpoint(
                            path,
                            options.spec_id.as_deref(),
                            completed,
                            &cache,
                        );
                    }
                }
            });
        }
    });
    let mut records = records.into_inner().expect("records lock");
    records.sort_by_key(|(index, _)| *index);

    // A final checkpoint captures everything this session completed, so
    // a watchdog-truncated campaign is always resumable.
    if let Some(path) = &options.checkpoint_path {
        write_checkpoint(path, options.spec_id.as_deref(), records.clone(), &cache);
    }

    let skipped_runs = total - records.len();
    let truncation = match stop.load(Ordering::Relaxed) {
        STOP_WALL => Some(format!(
            "wall-clock limit reached: {skipped_runs} of {total} runs skipped"
        )),
        STOP_COUNT => Some(format!(
            "run-count watchdog fired: {skipped_runs} of {total} runs skipped"
        )),
        _ if skipped_runs > 0 => {
            Some(format!("{skipped_runs} of {total} runs skipped"))
        }
        _ => None,
    };

    assemble_report(
        config,
        records,
        cache.len(),
        cache.truncated(),
        truncation,
        degraded.load(Ordering::Relaxed),
    )
}

/// Folds index-sorted run records into a [`CampaignReport`]. This is
/// the *single* aggregation routine: [`run_campaign_with`] feeds it the
/// records of one process, the service merge layer feeds it records
/// reassembled from many worker shards — so a merged multi-process
/// report is byte-identical to a single-process one by construction,
/// not by parallel maintenance of two aggregators.
pub(crate) fn assemble_report(
    config: &CampaignConfig,
    records: Vec<(usize, RunRecord)>,
    distinct_configs: usize,
    cache_truncated: bool,
    truncation: Option<String>,
    degraded_runs: usize,
) -> CampaignReport {
    let total = config.schedulers.len() * config.runs;
    let mut report = CampaignReport {
        config: config.clone(),
        total_runs: records.len(),
        terminated_runs: 0,
        distinct_configs,
        total_steps: 0,
        total_pruned: 0,
        prefilter_hits: 0,
        static_indep_pairs: 0,
        per_scheduler: config
            .schedulers
            .iter()
            .map(|s| SchedulerTally {
                scheduler: s.to_string(),
                runs: 0,
                terminated: 0,
                failures: 0,
                total_steps: 0,
                pruned: 0,
                prefilter_hits: 0,
            })
            .collect(),
        failures: Vec::new(),
        skipped_runs: total - records.len(),
        truncation,
        cache_truncated,
        retried_runs: 0,
        degraded_runs,
    };
    for (index, record) in records {
        let tally = &mut report.per_scheduler[index / config.runs];
        tally.runs += 1;
        tally.total_steps += record.steps;
        tally.pruned += record.pruned;
        tally.prefilter_hits += record.prefilter_hits;
        report.total_steps += record.steps;
        report.total_pruned += record.pruned;
        report.prefilter_hits += record.prefilter_hits;
        // Every run of a campaign analyzes the same protocol shape, so
        // the max is the one matrix's pair count (0-filled legacy
        // records aside).
        report.static_indep_pairs =
            report.static_indep_pairs.max(record.static_indep_pairs);
        if record.terminated {
            tally.terminated += 1;
            report.terminated_runs += 1;
        }
        if record.attempts > 1 {
            report.retried_runs += 1;
        }
        if record.is_failure() {
            tally.failures += 1;
            report.failures.push(record);
        }
    }
    report
}

/// A fault campaign: a matrix of fault plans × seeds, each run
/// executing the base scheduler wrapped in a [`FaultScheduler`]. This is
/// how crash-placement spaces are certified exhaustively: enumerate
/// every plan (e.g. [`FaultPlan::single_crash_plans`]) and require
/// non-blocking progress of the survivors under all of them.
#[derive(Clone, Debug)]
pub struct FaultCampaignConfig {
    /// The base scheduler every plan is applied on top of.
    pub base: SchedulerSpec,
    /// The plan space to fan over.
    pub plans: Vec<FaultPlan>,
    /// First seed of the range.
    pub seed_start: u64,
    /// Seeds per plan (total runs = `plans.len() * runs`).
    pub runs: usize,
    /// Step budget per run.
    pub budget: usize,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
}

/// A check evaluated on the final configuration of a fault run, given
/// the set of crashed processes; returns a description to flag a
/// violation.
pub type FaultCheck<'a> = &'a (dyn Fn(&System, &[ProcessId]) -> Option<String> + Sync);

/// Outcome of one fault run; `(plan, scheduler, seed)` replays it.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultRunRecord {
    /// The fault plan, in its parseable syntax.
    pub plan: String,
    /// The base scheduler spec.
    pub scheduler: String,
    /// The run seed.
    pub seed: u64,
    /// Steps actually taken.
    pub steps: usize,
    /// Processes the plan crashed during this run.
    pub crashed: usize,
    /// Did every *surviving* process terminate within budget? This is
    /// the non-blocking progress certificate: crashed processes may
    /// block nobody.
    pub survivors_terminated: bool,
    /// Check failure on the final configuration, if any.
    pub violation: Option<String>,
    /// Runtime error or worker panic, if the run aborted.
    pub error: Option<String>,
    /// Supervisor attempts this cell took (1 = first try).
    pub attempts: usize,
}

impl FaultRunRecord {
    fn is_failure(&self) -> bool {
        !self.survivors_terminated || self.violation.is_some() || self.error.is_some()
    }
}

/// Serialises one completed `(matrix index, fault record)` pair as the
/// JSON object used in both [`FaultCampaignReport::to_json`] failures
/// and service shard results — one format, so shards merge bit-for-bit
/// with the single-process report.
pub(crate) fn fault_record_entry_json(r: &FaultRunRecord) -> String {
    format!(
        "{{\"plan\": {}, \"scheduler\": {}, \"seed\": {}, \
         \"steps\": {}, \"crashed\": {}, \"survivors_terminated\": {}, \
         \"violation\": {}, \"error\": {}, \"attempts\": {}}}",
        json_string(&r.plan),
        json_string(&r.scheduler),
        r.seed,
        r.steps,
        r.crashed,
        r.survivors_terminated,
        r.violation.as_deref().map_or("null".into(), json_string),
        r.error.as_deref().map_or("null".into(), json_string),
        r.attempts,
    )
}

/// Parses one fault-record entry (inverse of
/// [`fault_record_entry_json`]).
///
/// # Errors
///
/// Returns [`ModelError::BadSpec`] on missing or mistyped fields.
pub(crate) fn parse_fault_record_entry(
    entry: &Json,
) -> Result<FaultRunRecord, ModelError> {
    let bad = |reason: &str| ModelError::BadSpec {
        spec: "fault record".into(),
        reason: reason.into(),
    };
    let field =
        |key: &str| entry.get(key).ok_or_else(|| bad(&format!("missing `{key}`")));
    let opt_str =
        |key: &str| -> Option<String> { entry.get(key)?.as_str().map(str::to_string) };
    Ok(FaultRunRecord {
        plan: field("plan")?
            .as_str()
            .ok_or_else(|| bad("bad `plan`"))?
            .to_string(),
        scheduler: field("scheduler")?
            .as_str()
            .ok_or_else(|| bad("bad `scheduler`"))?
            .to_string(),
        seed: field("seed")?.as_u64().ok_or_else(|| bad("bad `seed`"))?,
        steps: field("steps")?.as_usize().ok_or_else(|| bad("bad `steps`"))?,
        crashed: field("crashed")?.as_usize().ok_or_else(|| bad("bad `crashed`"))?,
        survivors_terminated: field("survivors_terminated")?
            .as_bool()
            .ok_or_else(|| bad("bad `survivors_terminated`"))?,
        violation: opt_str("violation"),
        error: opt_str("error"),
        attempts: entry.get("attempts").and_then(Json::as_usize).unwrap_or(1),
    })
}

/// Aggregated fault-campaign outcome.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultCampaignReport {
    /// The base scheduler spec.
    pub scheduler: String,
    /// Number of fault plans fanned over.
    pub plans: usize,
    /// Total runs executed (`plans × seeds`).
    pub total_runs: usize,
    /// Runs certified: survivors terminated, no violation, no error.
    pub certified_runs: usize,
    /// Total steps across all runs.
    pub total_steps: usize,
    /// Every failing run, in matrix order; each replays from its
    /// `(plan, seed)`.
    pub failures: Vec<FaultRunRecord>,
    /// Runs the supervisor re-attempted after a transient worker panic.
    pub retried_runs: usize,
    /// Matrix cells with no surviving record (service campaigns only:
    /// runs lost to quarantined work units). Always zero in a
    /// single-process run.
    pub missing_runs: usize,
}

impl FaultCampaignReport {
    /// Did every plan × seed certify?
    pub fn is_certified(&self) -> bool {
        self.failures.is_empty()
            && self.missing_runs == 0
            && self.certified_runs == self.total_runs
    }

    /// Renders the report as JSON (hand-rolled; no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"scheduler\": {},\n",
            json_string(&self.scheduler)
        ));
        out.push_str(&format!("  \"plans\": {},\n", self.plans));
        out.push_str(&format!("  \"total_runs\": {},\n", self.total_runs));
        out.push_str(&format!("  \"certified_runs\": {},\n", self.certified_runs));
        out.push_str(&format!("  \"total_steps\": {},\n", self.total_steps));
        out.push_str(&format!("  \"certified\": {},\n", self.is_certified()));
        out.push_str(&format!("  \"retried_runs\": {},\n", self.retried_runs));
        if self.missing_runs > 0 {
            // Emitted only when runs were lost (quarantined service
            // units), so complete merged reports stay byte-identical
            // to the single-process rendering.
            out.push_str(&format!("  \"missing_runs\": {},\n", self.missing_runs));
        }
        out.push_str("  \"failures\": [\n");
        for (i, r) in self.failures.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&fault_record_entry_json(r));
            out.push_str(if i + 1 < self.failures.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Executes one fault run (no panic guard; see
/// [`run_fault_campaign`] for the guarded path).
fn execute_fault_run<F>(
    config: &FaultCampaignConfig,
    plan: &FaultPlan,
    seed: u64,
    factory: &F,
    check: FaultCheck,
    cell_timeout: Option<Duration>,
) -> FaultRunRecord
where
    F: Fn(u64) -> System + Sync,
{
    let mut record = FaultRunRecord {
        plan: plan.to_string(),
        scheduler: config.base.to_string(),
        seed,
        steps: 0,
        crashed: 0,
        survivors_terminated: false,
        violation: None,
        error: None,
        attempts: 1,
    };
    let mut system = factory(seed);
    let mut sched = FaultScheduler::new(config.base.build(seed), plan.clone());
    if let Some(limit) = cell_timeout {
        // Manual stepping so the wall clock can be polled; the
        // FaultScheduler never picks terminated or crashed processes,
        // so this loop is step-for-step what `System::run` would do.
        let at = Instant::now() + limit;
        while record.steps < config.budget && !system.all_terminated() {
            if record.steps.is_multiple_of(TIMEOUT_POLL_STEPS) && Instant::now() >= at {
                record.error = Some(
                    ModelError::CellTimeout {
                        limit_ms: limit.as_millis(),
                        context: format!("fault run plan `{plan}` seed {seed}"),
                    }
                    .to_string(),
                );
                return record;
            }
            let Some(pid) = sched.next(&system) else { break };
            if system.is_terminated(pid) {
                continue;
            }
            if let Err(err) = system.step(pid) {
                record.error = Some(err.to_string());
                return record;
            }
            record.steps += 1;
        }
    } else {
        match system.run(&mut sched, config.budget) {
            Ok(steps) => record.steps = steps,
            Err(err) => {
                record.error = Some(err.to_string());
                return record;
            }
        }
    }
    record.crashed = sched.crashed().len();
    record.survivors_terminated = sched
        .survivors(&system)
        .iter()
        .all(|&p| system.is_terminated(p));
    record.violation = check(&system, sched.crashed());
    record
}

/// Replays one fault run: same `(plan, base scheduler, seed)` → same
/// outcome.
pub fn replay_fault_run<F>(
    config: &FaultCampaignConfig,
    plan: &FaultPlan,
    seed: u64,
    factory: F,
    check: FaultCheck,
) -> FaultRunRecord
where
    F: Fn(u64) -> System + Sync,
{
    execute_fault_run(config, plan, seed, &factory, check, None)
}

/// Runs the fault-campaign matrix (plan space × seed range) across
/// worker threads, with the same determinism contract as
/// [`run_campaign`]: records merge in matrix order, so the report is
/// identical at any thread count. Worker panics become structured
/// [`ModelError::WorkerPanic`] records naming the plan and seed.
/// Equivalent to [`run_fault_campaign_with`] under default
/// [`CampaignOptions`] (transient panics retried twice).
pub fn run_fault_campaign<F>(
    config: &FaultCampaignConfig,
    factory: F,
    check: FaultCheck,
) -> FaultCampaignReport
where
    F: Fn(u64) -> System + Sync,
{
    run_fault_campaign_with(config, &CampaignOptions::default(), factory, check)
}

/// [`run_fault_campaign`] with supervisor options. Only the supervisor
/// knobs of [`CampaignOptions`] apply here —
/// [`CampaignOptions::retries`], [`CampaignOptions::retry_backoff`] and
/// [`CampaignOptions::cell_timeout`]; the watchdog and checkpoint
/// fields are for [`run_campaign_with`] and are ignored.
pub fn run_fault_campaign_with<F>(
    config: &FaultCampaignConfig,
    options: &CampaignOptions,
    factory: F,
    check: FaultCheck,
) -> FaultCampaignReport
where
    F: Fn(u64) -> System + Sync,
{
    let total = config.plans.len() * config.runs;
    let records = run_fault_records(config, options, factory, check);
    assemble_fault_report(
        &config.base.to_string(),
        config.plans.len(),
        total,
        records.into_iter().enumerate().collect(),
    )
}

/// Executes the fault matrix and returns its records in matrix order
/// (plan-major, then seed) — the raw material of
/// [`run_fault_campaign_with`], exposed so service workers can execute
/// one unit's slice and ship the records to the coordinator for a
/// byte-identical merged report.
pub fn run_fault_records<F>(
    config: &FaultCampaignConfig,
    options: &CampaignOptions,
    factory: F,
    check: FaultCheck,
) -> Vec<FaultRunRecord>
where
    F: Fn(u64) -> System + Sync,
{
    let total = config.plans.len() * config.runs;
    let threads = if config.threads > 0 {
        config.threads
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    };
    let records: Mutex<Vec<(usize, FaultRunRecord)>> =
        Mutex::new(Vec::with_capacity(total));
    let cursor = AtomicUsize::new(0);
    let chunk = total.div_ceil(threads * 8).clamp(1, 256);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(total.max(1)) {
            scope.spawn(|| {
                let mut local: Vec<(usize, FaultRunRecord)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    for index in start..(start + chunk).min(total) {
                        // Matrix order: plan-major, then seed.
                        let plan = &config.plans[index / config.runs];
                        let seed =
                            config.seed_start + (index % config.runs) as u64;
                        // Supervised cell: transient panics are retried
                        // with backoff before the failure is recorded.
                        let mut attempt_no = 1;
                        let record = loop {
                            let attempt = catch_unwind(AssertUnwindSafe(|| {
                                execute_fault_run(
                                    config,
                                    plan,
                                    seed,
                                    &factory,
                                    check,
                                    options.cell_timeout,
                                )
                            }));
                            let mut record = attempt.unwrap_or_else(|payload| {
                                FaultRunRecord {
                                    plan: plan.to_string(),
                                    scheduler: config.base.to_string(),
                                    seed,
                                    steps: 0,
                                    crashed: 0,
                                    survivors_terminated: false,
                                    violation: None,
                                    error: Some(
                                        ModelError::WorkerPanic {
                                            context: format!(
                                                "fault run plan `{plan}` seed {seed}"
                                            ),
                                            message: panic_message(
                                                payload.as_ref(),
                                            ),
                                        }
                                        .to_string(),
                                    ),
                                    attempts: 1,
                                }
                            });
                            record.attempts = attempt_no;
                            let transient = record
                                .error
                                .as_deref()
                                .is_some_and(|e| e.starts_with("worker panic"));
                            if transient && attempt_no <= options.retries {
                                std::thread::sleep(backoff_for(
                                    options.retry_backoff,
                                    attempt_no,
                                ));
                                attempt_no += 1;
                                continue;
                            }
                            break record;
                        };
                        local.push((index, record));
                    }
                }
                records.lock().expect("records lock").extend(local);
            });
        }
    });
    let mut records = records.into_inner().expect("records lock");
    records.sort_by_key(|(index, _)| *index);
    records.into_iter().map(|(_, record)| record).collect()
}

/// Folds index-sorted fault records into a [`FaultCampaignReport`].
/// Like [`assemble_report`], this is the *single* aggregation routine:
/// [`run_fault_campaign_with`] feeds it one process's records, the
/// service merge layer feeds it records reassembled from many worker
/// shards — byte-identical reports by construction. `expected_total`
/// is the full matrix size; cells with no surviving record (quarantined
/// units) are counted as `missing_runs` and veto certification.
pub(crate) fn assemble_fault_report(
    base: &str,
    plans: usize,
    expected_total: usize,
    records: Vec<(usize, FaultRunRecord)>,
) -> FaultCampaignReport {
    let mut report = FaultCampaignReport {
        scheduler: base.to_string(),
        plans,
        total_runs: records.len(),
        certified_runs: 0,
        total_steps: 0,
        failures: Vec::new(),
        retried_runs: 0,
        missing_runs: expected_total - records.len().min(expected_total),
    };
    for (_, record) in records {
        report.total_steps += record.steps;
        if record.attempts > 1 {
            report.retried_runs += 1;
        }
        if record.is_failure() {
            report.failures.push(record);
        } else {
            report.certified_runs += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId};
    use crate::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};
    use crate::value::Value;

    /// Terminates after `n` updates, outputs its last view of slot 0.
    #[derive(Clone, Debug)]
    struct Stepper {
        n: usize,
    }

    impl SnapshotProtocol for Stepper {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.n == 0 {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.n -= 1;
                ProtocolStep::Update(0, Value::Int(self.n as i64))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn factory(_seed: u64) -> System {
        let procs: Vec<Box<dyn Process>> = (0..3)
            .map(|_| {
                Box::new(SnapshotProcess::new(Stepper { n: 3 }, ObjectId(0)))
                    as Box<dyn Process>
            })
            .collect();
        System::new(vec![Object::snapshot(1)], procs)
    }

    #[test]
    fn spec_parse_round_trips() {
        for spec in ["rr", "random", "quantum:2", "obstruction:2", "crash:1"] {
            let parsed = SchedulerSpec::parse(spec).unwrap();
            assert_eq!(parsed.to_string(), spec);
        }
        assert_eq!(
            SchedulerSpec::parse("round-robin").unwrap(),
            SchedulerSpec::RoundRobin
        );
        assert!(SchedulerSpec::parse("quantum:0").is_err());
        assert!(SchedulerSpec::parse("quantum").is_err());
        assert!(SchedulerSpec::parse("frobnicate").is_err());
        assert!(SchedulerSpec::parse("crash:x").is_err());
    }

    #[test]
    fn campaign_terminates_and_aggregates() {
        let config = CampaignConfig {
            schedulers: vec![
                SchedulerSpec::RoundRobin,
                SchedulerSpec::Random,
                SchedulerSpec::Quantum(2),
            ],
            seed_start: 0,
            runs: 20,
            budget: 1_000,
            threads: 4,
        };
        let report = run_campaign(&config, factory, &|_| None);
        assert_eq!(report.total_runs, 60);
        assert_eq!(report.terminated_runs, 60);
        assert!(report.is_clean());
        assert!(report.distinct_configs > 0);
        assert_eq!(report.per_scheduler.len(), 3);
        assert!(report.per_scheduler.iter().all(|t| t.runs == 20));
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let mk = |threads| CampaignConfig {
            schedulers: vec![SchedulerSpec::Random, SchedulerSpec::Crash {
                max_crashes: 1,
                probability: 0.1,
            }],
            seed_start: 7,
            runs: 25,
            budget: 500,
            threads,
        };
        let base = run_campaign(&mk(1), factory, &|_| None);
        for threads in [2, 8] {
            let report = run_campaign(&mk(threads), factory, &|_| None);
            assert_eq!(report.total_runs, base.total_runs);
            assert_eq!(report.terminated_runs, base.terminated_runs);
            assert_eq!(report.distinct_configs, base.distinct_configs);
            assert_eq!(report.total_steps, base.total_steps);
        }
    }

    #[test]
    fn violations_record_replayable_seeds() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::Random],
            seed_start: 0,
            runs: 10,
            budget: 1_000,
            threads: 2,
        };
        // Flag runs whose seed is even: a deterministic pseudo-check.
        let check = |sys: &System| {
            let key = sys.config_key();
            let _ = key;
            None::<String>
        };
        let _ = check;
        let flagging = |sys: &System| -> Option<String> {
            sys.output(crate::process::ProcessId(0))
                .filter(|v| *v == Value::Int(0))
                .map(|v| format!("p0 output {v}"))
        };
        let report = run_campaign(&config, factory, &flagging);
        for failure in &report.failures {
            let spec = SchedulerSpec::parse(&failure.scheduler).unwrap();
            let replayed = replay_run(
                &spec,
                failure.seed,
                config.budget,
                factory,
                &flagging,
            );
            assert_eq!(replayed.violation, failure.violation);
            assert_eq!(replayed.steps, failure.steps);
        }
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::Random],
            seed_start: 0,
            runs: 5,
            budget: 200,
            threads: 1,
        };
        let report = run_campaign(&config, factory, &|_| None);
        let json = report.to_json();
        assert!(json.contains("\"total_runs\": 5"));
        assert!(json.contains("\"schedulers\": [\"random\"]"));
        assert!(json.contains("\"failures\": ["));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parse_errors_are_structured_bad_specs() {
        for bad in ["frobnicate", "quantum:x", "crash"] {
            match SchedulerSpec::parse(bad) {
                Err(ModelError::BadSpec { spec, reason }) => {
                    assert_eq!(spec, bad);
                    assert!(!reason.is_empty());
                }
                other => panic!("`{bad}` gave {other:?}"),
            }
        }
    }

    #[test]
    fn panicking_run_yields_structured_worker_panic_record() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::RoundRobin],
            seed_start: 0,
            runs: 6,
            budget: 500,
            threads: 2,
        };
        // Seed 3's factory panics; the campaign must survive, record a
        // WorkerPanic failure with the seed, and finish the other runs.
        let exploding = |seed: u64| {
            assert!(seed != 3, "injected failure for seed 3");
            factory(seed)
        };
        let report = run_campaign(&config, exploding, &|_| None);
        assert_eq!(report.total_runs, 6);
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.seed, 3);
        let err = failure.error.as_deref().unwrap();
        assert!(err.contains("worker panic"), "error was: {err}");
        assert!(err.contains("seed 3"), "error was: {err}");
        assert!(err.contains("injected failure"), "error was: {err}");
    }

    #[test]
    fn transient_panic_heals_on_retry_and_is_reported() {
        use std::sync::atomic::AtomicUsize;

        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::RoundRobin],
            seed_start: 0,
            runs: 4,
            budget: 500,
            threads: 1,
        };
        // Seed 2's factory panics exactly once — a transient fault the
        // supervisor must absorb by retrying the cell.
        let glitches = AtomicUsize::new(0);
        let flaky = |seed: u64| {
            if seed == 2 && glitches.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient glitch");
            }
            factory(seed)
        };
        let report = run_campaign(&config, flaky, &|_| None);
        assert_eq!(report.total_runs, 4);
        assert!(
            report.failures.is_empty(),
            "the retried cell must not be lost: {:?}",
            report.failures
        );
        assert_eq!(report.terminated_runs, 4);
        assert_eq!(report.retried_runs, 1, "exactly one cell was retried");
        assert!(report.to_json().contains("\"retried_runs\": 1"));
    }

    #[test]
    fn persistent_panic_still_fails_after_retries_with_attempt_count() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::RoundRobin],
            seed_start: 0,
            runs: 2,
            budget: 500,
            threads: 1,
        };
        let exploding = |seed: u64| {
            assert!(seed != 1, "persistent failure for seed 1");
            factory(seed)
        };
        let options = CampaignOptions {
            retries: 3,
            retry_backoff: Duration::from_micros(10),
            ..CampaignOptions::default()
        };
        let report = run_campaign_with(&config, &options, exploding, &|_| None);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].attempts, 4, "1 try + 3 retries");
        assert_eq!(report.retried_runs, 1);
    }

    #[test]
    fn fault_campaign_retries_transient_panics() {
        use std::sync::atomic::AtomicUsize;

        let config = FaultCampaignConfig {
            base: SchedulerSpec::RoundRobin,
            plans: vec![FaultPlan::none(), FaultPlan::parse("crash@0:1").unwrap()],
            seed_start: 0,
            runs: 2,
            budget: 500,
            threads: 1,
        };
        let glitches = AtomicUsize::new(0);
        let flaky = |seed: u64| {
            if seed == 1 && glitches.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient fault-run glitch");
            }
            factory(seed)
        };
        let report = run_fault_campaign(&config, flaky, &|_, _| None);
        assert_eq!(report.total_runs, 4);
        assert!(report.is_certified(), "failures: {:?}", report.failures);
        assert_eq!(report.retried_runs, 1);
        assert!(report.to_json().contains("\"retried_runs\": 1"));
    }

    /// Updates forever; never terminates.
    #[derive(Clone, Debug)]
    struct Spinner;

    impl SnapshotProtocol for Spinner {
        fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
            ProtocolStep::Update(0, Value::Int(0))
        }
        fn components(&self) -> usize {
            1
        }
    }

    #[test]
    fn pathological_cell_times_out_with_structured_error() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::RoundRobin],
            seed_start: 0,
            runs: 1,
            budget: usize::MAX,
            threads: 1,
        };
        let spinner = |_seed: u64| {
            System::new(
                vec![Object::snapshot(1)],
                vec![Box::new(SnapshotProcess::new(Spinner, ObjectId(0)))
                    as Box<dyn Process>],
            )
        };
        let options = CampaignOptions {
            cell_timeout: Some(Duration::from_millis(20)),
            ..CampaignOptions::default()
        };
        let report = run_campaign_with(&config, &options, spinner, &|_| None);
        assert_eq!(report.total_runs, 1, "the cell is recorded, not lost");
        assert_eq!(report.failures.len(), 1);
        let err = report.failures[0].error.as_deref().unwrap();
        assert!(err.contains("cell timeout"), "error was: {err}");
        assert!(err.contains("seed 0"), "error was: {err}");
        assert_eq!(
            report.retried_runs, 0,
            "timeouts are deterministic and must not be retried"
        );
    }

    #[test]
    fn soft_deadline_degrades_budget_before_the_hard_stop() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::RoundRobin],
            seed_start: 0,
            runs: 4,
            budget: 400,
            threads: 1,
        };
        // Seed 0 burns most of the wall budget; the remaining cells must
        // still run, but on the degraded (quarter) budget.
        let slow_start = |seed: u64| {
            if seed == 0 {
                std::thread::sleep(Duration::from_millis(500));
            }
            factory(seed)
        };
        let report = run_campaign_with(
            &config,
            &CampaignOptions {
                wall_limit: Some(Duration::from_millis(600)),
                ..CampaignOptions::default()
            },
            slow_start,
            &|_| None,
        );
        assert!(
            report.degraded_runs >= 1,
            "cells past the soft deadline must be counted as degraded: {:?}",
            report.to_json()
        );
        assert!(report.total_runs >= 2, "degraded cells still execute");
        assert!(report.to_json().contains("\"degraded_runs\""));
    }

    #[test]
    fn watchdog_truncation_still_flushes_a_final_checkpoint() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::Random],
            seed_start: 0,
            runs: 30,
            budget: 500,
            threads: 2,
        };
        let dir = std::env::temp_dir().join(format!(
            "rsim-truncated-ckpt-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.checkpoint.json");
        let report = run_campaign_with(
            &config,
            &CampaignOptions {
                stop_after: Some(5),
                checkpoint_path: Some(path.clone()),
                ..CampaignOptions::default()
            },
            factory,
            &|_| None,
        );
        assert!(report.truncation.is_some());
        let checkpoint = CampaignCheckpoint::load(&path).unwrap();
        assert_eq!(
            checkpoint.completed.len(),
            report.total_runs,
            "the final flush must capture every completed run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_count_watchdog_truncates_gracefully() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::Random],
            seed_start: 0,
            runs: 40,
            budget: 500,
            threads: 1,
        };
        let options = CampaignOptions {
            stop_after: Some(10),
            ..CampaignOptions::default()
        };
        let report = run_campaign_with(&config, &options, factory, &|_| None);
        assert_eq!(report.total_runs, 10);
        assert_eq!(report.skipped_runs, 30);
        let notice = report.truncation.as_deref().unwrap();
        assert!(notice.contains("30 of 40"), "notice was: {notice}");
        assert!(!report.is_clean(), "a truncated campaign is not clean");
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let checkpoint = CampaignCheckpoint {
            spec: Some("protocol=racing sched=random seeds=0+40 budget=500".into()),
            completed: vec![
                (
                    0,
                    RunRecord {
                        scheduler: "random".into(),
                        seed: 5,
                        steps: 17,
                        terminated: true,
                        violation: None,
                        error: None,
                        attempts: 1,
                        pruned: 4,
                        prefilter_hits: 2,
                        static_indep_pairs: 1,
                    },
                ),
                (
                    3,
                    RunRecord {
                        scheduler: "crash:1".into(),
                        seed: 8,
                        steps: 2,
                        terminated: false,
                        violation: Some("p0 output \"x\"".into()),
                        error: None,
                        attempts: 3,
                        pruned: 0,
                        prefilter_hits: 0,
                        static_indep_pairs: 0,
                    },
                ),
            ],
            fingerprints: vec![1, u64::MAX, 0xcbf2_9ce4_8422_2325],
        };
        let parsed = CampaignCheckpoint::parse(&checkpoint.to_json()).unwrap();
        assert_eq!(parsed.fingerprints, checkpoint.fingerprints);
        assert_eq!(parsed.completed.len(), 2);
        assert_eq!(parsed.completed[0].0, 0);
        assert_eq!(parsed.completed[1].1.violation.as_deref(), Some("p0 output \"x\""));
        assert!(parsed.completed[1].1.error.is_none());
        assert_eq!(parsed.completed[1].1.seed, 8);
        assert_eq!(parsed.completed[0].1.attempts, 1);
        assert_eq!(parsed.completed[1].1.attempts, 3);
        assert_eq!(parsed.completed[0].1.prefilter_hits, 2);
        assert_eq!(parsed.completed[0].1.static_indep_pairs, 1);
        assert_eq!(parsed.completed[1].1.prefilter_hits, 0);
    }

    #[test]
    fn pre_supervisor_checkpoints_still_parse() {
        // Checkpoints written before the supervisor existed have no
        // `attempts` field; they load with attempts = 1.
        let legacy = r#"{
            "version": 1,
            "completed": [
                {"index": 0, "scheduler": "rr", "seed": 0, "steps": 9,
                 "terminated": true, "violation": null, "error": null}
            ],
            "fingerprints": [7]
        }"#;
        let parsed = CampaignCheckpoint::parse(legacy).unwrap();
        assert_eq!(parsed.completed[0].1.attempts, 1);
    }

    #[test]
    fn resumed_campaign_matches_uninterrupted_bit_for_bit() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::Random, SchedulerSpec::RoundRobin],
            seed_start: 3,
            runs: 15,
            budget: 500,
            threads: 2,
        };
        let dir = std::env::temp_dir().join(format!(
            "rsim-ckpt-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.checkpoint.json");

        let uninterrupted = run_campaign(&config, factory, &|_| None);

        // Interrupt after 12 of 30 runs; the final checkpoint captures
        // what completed.
        let interrupted = run_campaign_with(
            &config,
            &CampaignOptions {
                stop_after: Some(12),
                checkpoint_every: Some(4),
                checkpoint_path: Some(path.clone()),
                ..CampaignOptions::default()
            },
            factory,
            &|_| None,
        );
        assert!(interrupted.skipped_runs > 0);

        // Resume and compare aggregates bit-for-bit.
        let checkpoint = CampaignCheckpoint::load(&path).unwrap();
        assert!(!checkpoint.completed.is_empty());
        let resumed = run_campaign_with(
            &config,
            &CampaignOptions {
                resume_from: Some(checkpoint),
                ..CampaignOptions::default()
            },
            factory,
            &|_| None,
        );
        assert_eq!(resumed.total_runs, uninterrupted.total_runs);
        assert_eq!(resumed.terminated_runs, uninterrupted.terminated_runs);
        assert_eq!(resumed.distinct_configs, uninterrupted.distinct_configs);
        assert_eq!(resumed.total_steps, uninterrupted.total_steps);
        assert_eq!(resumed.skipped_runs, 0);
        assert!(resumed.truncation.is_none());
        for (a, b) in resumed
            .per_scheduler
            .iter()
            .zip(uninterrupted.per_scheduler.iter())
        {
            assert_eq!(a.runs, b.runs);
            assert_eq!(a.terminated, b.terminated);
            assert_eq!(a.total_steps, b.total_steps);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_cache_budget_is_reported_as_truncation() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::Random],
            seed_start: 0,
            runs: 20,
            budget: 500,
            threads: 1,
        };
        let options = CampaignOptions {
            cache_budget: Some(8),
            ..CampaignOptions::default()
        };
        let report = run_campaign_with(&config, &options, factory, &|_| None);
        assert!(report.cache_truncated, "an 8-entry budget must evict");
        let json = report.to_json();
        assert!(json.contains("\"cache_truncated\": true"));
    }

    #[test]
    fn fault_campaign_certifies_single_crash_space() {
        // Every single-crash placement over 3 processes × 8 crash
        // points: survivors must always terminate (the protocol is
        // wait-free, hence non-blocking under crash-stopped processes).
        let config = FaultCampaignConfig {
            base: SchedulerSpec::RoundRobin,
            plans: FaultPlan::single_crash_plans(3, 7),
            seed_start: 0,
            runs: 2,
            budget: 2_000,
            threads: 2,
        };
        let report = run_fault_campaign(&config, factory, &|_, _| None);
        assert_eq!(report.plans, 24);
        assert_eq!(report.total_runs, 48);
        assert!(report.is_certified(), "failures: {:?}", report.failures);
        let json = report.to_json();
        assert!(json.contains("\"certified\": true"));
    }

    #[test]
    fn fault_campaign_is_thread_count_independent() {
        let mk = |threads| FaultCampaignConfig {
            base: SchedulerSpec::Random,
            plans: FaultPlan::single_crash_plans(3, 5),
            seed_start: 11,
            runs: 3,
            budget: 1_000,
            threads,
        };
        let base = run_fault_campaign(&mk(1), factory, &|_, _| None);
        for threads in [2, 8] {
            let report = run_fault_campaign(&mk(threads), factory, &|_, _| None);
            assert_eq!(report.total_runs, base.total_runs);
            assert_eq!(report.certified_runs, base.certified_runs);
            assert_eq!(report.total_steps, base.total_steps);
        }
    }

    #[test]
    fn fault_campaign_panic_names_plan_and_seed() {
        let config = FaultCampaignConfig {
            base: SchedulerSpec::RoundRobin,
            plans: vec![
                FaultPlan::none(),
                FaultPlan::parse("crash@1:2").unwrap(),
            ],
            seed_start: 0,
            runs: 2,
            budget: 500,
            threads: 2,
        };
        let exploding = |seed: u64| {
            assert!(seed != 1, "injected fault-run failure");
            factory(seed)
        };
        let report = run_fault_campaign(&config, exploding, &|_, _| None);
        assert_eq!(report.total_runs, 4);
        assert_eq!(report.failures.len(), 2, "one per plan at seed 1");
        for failure in &report.failures {
            assert_eq!(failure.seed, 1);
            let err = failure.error.as_deref().unwrap();
            assert!(err.contains("worker panic"), "error was: {err}");
            assert!(err.contains("plan"), "error was: {err}");
            assert!(err.contains("seed 1"), "error was: {err}");
        }
    }

    #[test]
    fn fault_replay_reproduces_campaign_records() {
        let config = FaultCampaignConfig {
            base: SchedulerSpec::Random,
            plans: FaultPlan::single_crash_plans(3, 3),
            seed_start: 0,
            runs: 2,
            budget: 1_000,
            threads: 4,
        };
        // Flag every run so records survive into the report, then check
        // each replays identically.
        let flag_all = |_: &System, _: &[ProcessId]| Some("flag".to_string());
        let report = run_fault_campaign(&config, factory, &flag_all);
        assert_eq!(report.failures.len(), report.total_runs);
        for record in report.failures.iter().take(6) {
            let plan = FaultPlan::parse(&record.plan).unwrap();
            let replayed =
                replay_fault_run(&config, &plan, record.seed, factory, &flag_all);
            assert_eq!(replayed.steps, record.steps);
            assert_eq!(replayed.crashed, record.crashed);
            assert_eq!(replayed.survivors_terminated, record.survivors_terminated);
        }
    }
}
