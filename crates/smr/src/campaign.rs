//! Deterministic randomised campaign runner.
//!
//! A *campaign* is a matrix of seeded runs — scheduler specs × a seed
//! range — over systems produced by a caller-supplied factory. The
//! runner fans the matrix across worker threads, records the seed of
//! every run so any failure replays exactly (`campaign --seed N`), and
//! aggregates distinct-configurations/terminations/violations into a
//! machine-readable report.
//!
//! Determinism: run outcomes depend only on `(scheduler spec, seed)`,
//! never on which worker executed them. Records are merged in matrix
//! order, and the distinct-configuration count is the size of a shared
//! [`FingerprintCache`] — a set union, so it too is independent of
//! thread interleaving. A campaign report is identical at any thread
//! count.

use crate::fingerprint::FingerprintCache;
use crate::sched::{Crash, Obstruction, Quantum, Random, RoundRobin, Scheduler};
use crate::system::System;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A buildable scheduler description — the "which adversary" half of a
/// run's identity (the seed is the other half).
#[derive(Clone, Debug, PartialEq)]
pub enum SchedulerSpec {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`Random`] seeded with the run seed.
    Random,
    /// [`Quantum`] with the given quantum.
    Quantum(usize),
    /// [`Obstruction`] with isolated-set bound `x`, chaos prefix and
    /// burst length.
    Obstruction {
        /// Maximum size of the eventually-isolated set.
        x: usize,
        /// Random steps before bursts begin.
        chaos_steps: usize,
        /// Steps per isolated burst.
        burst_len: usize,
    },
    /// [`Crash`] with a crash budget and per-step crash probability.
    Crash {
        /// Maximum processes to crash.
        max_crashes: usize,
        /// Per-step crash probability.
        probability: f64,
    },
}

impl SchedulerSpec {
    /// Parses a spec from its CLI syntax:
    ///
    /// * `rr` / `round-robin`
    /// * `random`
    /// * `quantum:<q>`
    /// * `obstruction:<x>` (chaos 32, bursts 64)
    /// * `crash:<max>` (probability 0.05)
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    pub fn parse(spec: &str) -> Result<SchedulerSpec, String> {
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        let numeric = |what: &str| -> Result<usize, String> {
            arg.ok_or_else(|| format!("{head} needs `:<{what}>`"))?
                .parse::<usize>()
                .map_err(|_| format!("bad {what} in scheduler spec `{spec}`"))
        };
        match head {
            "rr" | "round-robin" => Ok(SchedulerSpec::RoundRobin),
            "random" => Ok(SchedulerSpec::Random),
            "quantum" => {
                let q = numeric("quantum")?;
                if q == 0 {
                    return Err("quantum must be >= 1".into());
                }
                Ok(SchedulerSpec::Quantum(q))
            }
            "obstruction" => Ok(SchedulerSpec::Obstruction {
                x: numeric("x")?,
                chaos_steps: 32,
                burst_len: 64,
            }),
            "crash" => Ok(SchedulerSpec::Crash {
                max_crashes: numeric("max-crashes")?,
                probability: 0.05,
            }),
            _ => Err(format!(
                "unknown scheduler `{spec}` (expected rr, random, \
                 quantum:<q>, obstruction:<x>, crash:<max>)"
            )),
        }
    }

    /// Builds the scheduler for one run.
    pub fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        match *self {
            SchedulerSpec::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerSpec::Random => Box::new(Random::seeded(seed)),
            SchedulerSpec::Quantum(q) => Box::new(Quantum::new(q)),
            SchedulerSpec::Obstruction { x, chaos_steps, burst_len } => {
                Box::new(Obstruction::new(x, chaos_steps, burst_len, seed))
            }
            SchedulerSpec::Crash { max_crashes, probability } => {
                Box::new(Crash::new(max_crashes, probability, seed))
            }
        }
    }
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerSpec::RoundRobin => write!(f, "rr"),
            SchedulerSpec::Random => write!(f, "random"),
            SchedulerSpec::Quantum(q) => write!(f, "quantum:{q}"),
            SchedulerSpec::Obstruction { x, .. } => write!(f, "obstruction:{x}"),
            SchedulerSpec::Crash { max_crashes, .. } => {
                write!(f, "crash:{max_crashes}")
            }
        }
    }
}

/// Campaign shape: the scheduler mix, the seed range, per-run budget
/// and worker count.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Scheduler mix; every spec runs against every seed.
    pub schedulers: Vec<SchedulerSpec>,
    /// First seed of the range.
    pub seed_start: u64,
    /// Seeds per scheduler (total runs = `schedulers.len() * runs`).
    pub runs: usize,
    /// Step budget per run.
    pub budget: usize,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            schedulers: vec![SchedulerSpec::Random],
            seed_start: 0,
            runs: 100,
            budget: 2_000,
            threads: 0,
        }
    }
}

/// Outcome of a single run; `(scheduler, seed)` replays it exactly.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The scheduler spec, in its parseable syntax.
    pub scheduler: String,
    /// The run seed (seeds the scheduler and the system factory).
    pub seed: u64,
    /// Steps actually taken.
    pub steps: usize,
    /// Did every process terminate within budget?
    pub terminated: bool,
    /// Check failure on the final configuration, if any.
    pub violation: Option<String>,
    /// Runtime error, if the run aborted.
    pub error: Option<String>,
}

impl RunRecord {
    fn is_failure(&self) -> bool {
        self.violation.is_some() || self.error.is_some()
    }
}

/// Per-scheduler aggregate.
#[derive(Clone, Debug)]
pub struct SchedulerTally {
    /// The scheduler spec, in its parseable syntax.
    pub scheduler: String,
    /// Runs executed with this scheduler.
    pub runs: usize,
    /// Runs in which every process terminated.
    pub terminated: usize,
    /// Runs with a violation or error.
    pub failures: usize,
    /// Total steps across the runs.
    pub total_steps: usize,
}

/// Aggregated campaign outcome. All fields are deterministic functions
/// of the [`CampaignConfig`] and the system factory.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The configuration that produced this report.
    pub config: CampaignConfig,
    /// Total runs executed.
    pub total_runs: usize,
    /// Runs in which every process terminated within budget.
    pub terminated_runs: usize,
    /// Distinct configurations visited across all runs (fingerprint
    /// cache size — a set union, thread-count independent).
    pub distinct_configs: usize,
    /// Total steps across all runs.
    pub total_steps: usize,
    /// Per-scheduler tallies, in scheduler-mix order.
    pub per_scheduler: Vec<SchedulerTally>,
    /// Every failing run, in matrix order; each replays from its seed.
    pub failures: Vec<RunRecord>,
}

impl CampaignReport {
    /// Did every run terminate with no violations or errors?
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.terminated_runs == self.total_runs
    }

    /// Renders the report as JSON (hand-rolled: the workspace builds
    /// offline, without serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schedulers\": [{}],\n",
            self.config
                .schedulers
                .iter()
                .map(|s| json_string(&s.to_string()))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"seed_start\": {},\n", self.config.seed_start));
        out.push_str(&format!("  \"runs_per_scheduler\": {},\n", self.config.runs));
        out.push_str(&format!("  \"budget\": {},\n", self.config.budget));
        out.push_str(&format!("  \"total_runs\": {},\n", self.total_runs));
        out.push_str(&format!("  \"terminated_runs\": {},\n", self.terminated_runs));
        out.push_str(&format!("  \"distinct_configs\": {},\n", self.distinct_configs));
        out.push_str(&format!("  \"total_steps\": {},\n", self.total_steps));
        out.push_str("  \"per_scheduler\": [\n");
        for (i, t) in self.per_scheduler.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scheduler\": {}, \"runs\": {}, \"terminated\": {}, \
                 \"failures\": {}, \"total_steps\": {}}}{}\n",
                json_string(&t.scheduler),
                t.runs,
                t.terminated,
                t.failures,
                t.total_steps,
                if i + 1 < self.per_scheduler.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"failures\": [\n");
        for (i, r) in self.failures.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scheduler\": {}, \"seed\": {}, \"steps\": {}, \
                 \"terminated\": {}, \"violation\": {}, \"error\": {}}}{}\n",
                json_string(&r.scheduler),
                r.seed,
                r.steps,
                r.terminated,
                r.violation.as_deref().map_or("null".into(), json_string),
                r.error.as_deref().map_or("null".into(), json_string),
                if i + 1 < self.failures.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON string literal with escaping for the characters our messages
/// can contain.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Executes one run and records its outcome. The final configuration is
/// validated with `check`; intermediate configurations are fingerprinted
/// into `cache` when one is supplied.
fn execute_run(
    spec: &SchedulerSpec,
    seed: u64,
    budget: usize,
    system: &mut System,
    check: &dyn Fn(&System) -> Option<String>,
    cache: Option<&FingerprintCache>,
) -> RunRecord {
    let mut record = RunRecord {
        scheduler: spec.to_string(),
        seed,
        steps: 0,
        terminated: false,
        violation: None,
        error: None,
    };
    let mut scheduler = spec.build(seed);
    if let Some(cache) = cache {
        cache.insert(&system.config_key());
        while record.steps < budget && !system.all_terminated() {
            let Some(pid) = scheduler.next(system) else { break };
            if system.is_terminated(pid) {
                continue;
            }
            if let Err(err) = system.step(pid) {
                record.error = Some(err.to_string());
                return record;
            }
            record.steps += 1;
            cache.insert(&system.config_key());
        }
    } else {
        match system.run(scheduler.as_mut(), budget) {
            Ok(steps) => record.steps = steps,
            Err(err) => {
                record.error = Some(err.to_string());
                return record;
            }
        }
    }
    record.terminated = system.all_terminated();
    record.violation = check(system);
    record
}

/// Replays one run of a campaign: same `(spec, seed)` → same outcome.
/// This is what `campaign --seed N` uses to reproduce a failure.
pub fn replay_run<F>(
    spec: &SchedulerSpec,
    seed: u64,
    budget: usize,
    factory: F,
    check: &dyn Fn(&System) -> Option<String>,
) -> RunRecord
where
    F: Fn(u64) -> System,
{
    let mut system = factory(seed);
    execute_run(spec, seed, budget, &mut system, check, None)
}

/// Runs the full campaign matrix (scheduler mix × seed range) across
/// worker threads.
///
/// `factory(seed)` builds the system for a run; `check` validates the
/// final configuration (return a description to flag a violation).
/// Runtime errors inside a run are recorded as failures, not
/// propagated.
pub fn run_campaign<F>(
    config: &CampaignConfig,
    factory: F,
    check: &(dyn Fn(&System) -> Option<String> + Sync),
) -> CampaignReport
where
    F: Fn(u64) -> System + Sync,
{
    let total = config.schedulers.len() * config.runs;
    let threads = if config.threads > 0 {
        config.threads
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    };
    let cache = FingerprintCache::for_threads(threads);
    let records: Mutex<Vec<(usize, RunRecord)>> =
        Mutex::new(Vec::with_capacity(total));
    let cursor = AtomicUsize::new(0);
    let chunk = total.div_ceil(threads * 8).clamp(1, 256);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(total.max(1)) {
            scope.spawn(|| {
                let mut local: Vec<(usize, RunRecord)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    for index in start..(start + chunk).min(total) {
                        // Matrix order: scheduler-major, then seed.
                        let spec = &config.schedulers[index / config.runs];
                        let seed =
                            config.seed_start + (index % config.runs) as u64;
                        let mut system = factory(seed);
                        let record = execute_run(
                            spec,
                            seed,
                            config.budget,
                            &mut system,
                            check,
                            Some(&cache),
                        );
                        local.push((index, record));
                    }
                }
                records.lock().expect("records lock").extend(local);
            });
        }
    });
    let mut records = records.into_inner().expect("records lock");
    records.sort_by_key(|(index, _)| *index);

    let mut report = CampaignReport {
        config: config.clone(),
        total_runs: records.len(),
        terminated_runs: 0,
        distinct_configs: cache.len(),
        total_steps: 0,
        per_scheduler: config
            .schedulers
            .iter()
            .map(|s| SchedulerTally {
                scheduler: s.to_string(),
                runs: 0,
                terminated: 0,
                failures: 0,
                total_steps: 0,
            })
            .collect(),
        failures: Vec::new(),
    };
    for (index, record) in records {
        let tally = &mut report.per_scheduler[index / config.runs];
        tally.runs += 1;
        tally.total_steps += record.steps;
        report.total_steps += record.steps;
        if record.terminated {
            tally.terminated += 1;
            report.terminated_runs += 1;
        }
        if record.is_failure() {
            tally.failures += 1;
            report.failures.push(record);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId};
    use crate::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};
    use crate::value::Value;

    /// Terminates after `n` updates, outputs its last view of slot 0.
    #[derive(Clone, Debug)]
    struct Stepper {
        n: usize,
    }

    impl SnapshotProtocol for Stepper {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.n == 0 {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.n -= 1;
                ProtocolStep::Update(0, Value::Int(self.n as i64))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn factory(_seed: u64) -> System {
        let procs: Vec<Box<dyn Process>> = (0..3)
            .map(|_| {
                Box::new(SnapshotProcess::new(Stepper { n: 3 }, ObjectId(0)))
                    as Box<dyn Process>
            })
            .collect();
        System::new(vec![Object::snapshot(1)], procs)
    }

    #[test]
    fn spec_parse_round_trips() {
        for spec in ["rr", "random", "quantum:2", "obstruction:2", "crash:1"] {
            let parsed = SchedulerSpec::parse(spec).unwrap();
            assert_eq!(parsed.to_string(), spec);
        }
        assert_eq!(
            SchedulerSpec::parse("round-robin").unwrap(),
            SchedulerSpec::RoundRobin
        );
        assert!(SchedulerSpec::parse("quantum:0").is_err());
        assert!(SchedulerSpec::parse("quantum").is_err());
        assert!(SchedulerSpec::parse("frobnicate").is_err());
        assert!(SchedulerSpec::parse("crash:x").is_err());
    }

    #[test]
    fn campaign_terminates_and_aggregates() {
        let config = CampaignConfig {
            schedulers: vec![
                SchedulerSpec::RoundRobin,
                SchedulerSpec::Random,
                SchedulerSpec::Quantum(2),
            ],
            seed_start: 0,
            runs: 20,
            budget: 1_000,
            threads: 4,
        };
        let report = run_campaign(&config, factory, &|_| None);
        assert_eq!(report.total_runs, 60);
        assert_eq!(report.terminated_runs, 60);
        assert!(report.is_clean());
        assert!(report.distinct_configs > 0);
        assert_eq!(report.per_scheduler.len(), 3);
        assert!(report.per_scheduler.iter().all(|t| t.runs == 20));
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let mk = |threads| CampaignConfig {
            schedulers: vec![SchedulerSpec::Random, SchedulerSpec::Crash {
                max_crashes: 1,
                probability: 0.1,
            }],
            seed_start: 7,
            runs: 25,
            budget: 500,
            threads,
        };
        let base = run_campaign(&mk(1), factory, &|_| None);
        for threads in [2, 8] {
            let report = run_campaign(&mk(threads), factory, &|_| None);
            assert_eq!(report.total_runs, base.total_runs);
            assert_eq!(report.terminated_runs, base.terminated_runs);
            assert_eq!(report.distinct_configs, base.distinct_configs);
            assert_eq!(report.total_steps, base.total_steps);
        }
    }

    #[test]
    fn violations_record_replayable_seeds() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::Random],
            seed_start: 0,
            runs: 10,
            budget: 1_000,
            threads: 2,
        };
        // Flag runs whose seed is even: a deterministic pseudo-check.
        let check = |sys: &System| {
            let key = sys.config_key();
            let _ = key;
            None::<String>
        };
        let _ = check;
        let flagging = |sys: &System| -> Option<String> {
            sys.output(crate::process::ProcessId(0))
                .filter(|v| *v == Value::Int(0))
                .map(|v| format!("p0 output {v}"))
        };
        let report = run_campaign(&config, factory, &flagging);
        for failure in &report.failures {
            let spec = SchedulerSpec::parse(&failure.scheduler).unwrap();
            let replayed = replay_run(
                &spec,
                failure.seed,
                config.budget,
                factory,
                &flagging,
            );
            assert_eq!(replayed.violation, failure.violation);
            assert_eq!(replayed.steps, failure.steps);
        }
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::Random],
            seed_start: 0,
            runs: 5,
            budget: 200,
            threads: 1,
        };
        let report = run_campaign(&config, factory, &|_| None);
        let json = report.to_json();
        assert!(json.contains("\"total_runs\": 5"));
        assert!(json.contains("\"schedulers\": [\"random\"]"));
        assert!(json.contains("\"failures\": ["));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
