//! Base objects of the asynchronous shared-memory system.
//!
//! Each step of a process is one atomic operation on one base object
//! (paper §2). Objects are deterministic sequential state machines:
//! [`Object::apply`] consumes an [`Operation`] and produces a
//! [`Response`], mutating the object's value.
//!
//! The object zoo covers everything the paper mentions:
//!
//! * [`Object::Register`] — read/write register (multi-writer unless the
//!   system restricts writers).
//! * [`Object::Snapshot`] — m-component snapshot with `update`/`scan`;
//!   single-writer snapshots are a system-level restriction (component j
//!   owned by process j).
//! * [`Object::MaxRegister`], [`Object::FetchAndIncrement`],
//!   [`Object::Swap`], [`Object::Cas`] — the object families discussed in
//!   §5.3 (ABA-freedom).

use crate::error::ModelError;
use crate::value::Value;
use std::fmt;

/// Identifies a base object within a [`crate::system::System`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub usize);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// An operation on a base object; one process step performs exactly one.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operation {
    /// Read a register (or one component of a componentwise object).
    Read { obj: ObjectId },
    /// Write a value to a register.
    Write { obj: ObjectId, value: Value },
    /// Update component `component` of a snapshot object to `value`.
    Update { obj: ObjectId, component: usize, value: Value },
    /// Atomically read all components of a snapshot object.
    Scan { obj: ObjectId },
    /// Write `value` to a max-register component if it exceeds the
    /// current value (`writemax`, §5.2).
    WriteMax { obj: ObjectId, component: usize, value: Value },
    /// Fetch-and-increment: returns the pre-increment counter.
    FetchInc { obj: ObjectId },
    /// Swap: writes `value`, returns the previous value.
    Swap { obj: ObjectId, value: Value },
    /// Compare-and-swap: if the current value equals `expect`, replace it
    /// with `update`; returns whether the replacement happened.
    Cas { obj: ObjectId, expect: Value, update: Value },
}

impl Operation {
    /// The object this operation targets.
    pub fn object(&self) -> ObjectId {
        match self {
            Operation::Read { obj }
            | Operation::Write { obj, .. }
            | Operation::Update { obj, .. }
            | Operation::Scan { obj }
            | Operation::WriteMax { obj, .. }
            | Operation::FetchInc { obj }
            | Operation::Swap { obj, .. }
            | Operation::Cas { obj, .. } => *obj,
        }
    }

    /// Does this operation mutate the object? (Reads and scans do not.)
    pub fn is_mutation(&self) -> bool {
        !matches!(self, Operation::Read { .. } | Operation::Scan { .. })
    }
}

/// The response returned by a base-object operation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Response {
    /// Acknowledgement of a write-like operation.
    Ack,
    /// A single value (read, fetch-and-increment, swap).
    Value(Value),
    /// A full view of a snapshot object.
    View(Vec<Value>),
    /// Success flag of a compare-and-swap.
    Flag(bool),
}

impl Response {
    /// Views the response as a single value.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            Response::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Views the response as a snapshot view.
    pub fn as_view(&self) -> Option<&[Value]> {
        match self {
            Response::View(v) => Some(v),
            _ => None,
        }
    }
}

/// A base object's current value plus its sequential specification.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Object {
    /// A read/write register.
    Register { value: Value },
    /// An m-component snapshot object.
    Snapshot { components: Vec<Value> },
    /// An m-component max-register (`writemax` keeps the maximum).
    MaxRegister { components: Vec<Value> },
    /// A fetch-and-increment counter.
    FetchAndIncrement { counter: i64 },
    /// A swap object.
    Swap { value: Value },
    /// A compare-and-swap object.
    Cas { value: Value },
}

impl crate::fingerprint::ConfigHash for Object {
    fn hash_config(&self, h: &mut crate::fingerprint::FnvStream) {
        use fmt::Write;
        let _ = write!(h, "{self:?}");
    }
}

impl Object {
    /// A fresh register holding ⊥.
    pub fn register() -> Object {
        Object::Register { value: Value::Nil }
    }

    /// A fresh m-component snapshot, all components ⊥.
    pub fn snapshot(m: usize) -> Object {
        Object::Snapshot { components: vec![Value::Nil; m] }
    }

    /// A fresh m-component max-register, all components ⊥ (⊥ is the
    /// minimum of the value order).
    pub fn max_register(m: usize) -> Object {
        Object::MaxRegister { components: vec![Value::Nil; m] }
    }

    /// Number of registers this object counts as (paper §2: an
    /// m-component snapshot counts as m registers).
    pub fn register_cost(&self) -> usize {
        match self {
            Object::Snapshot { components } | Object::MaxRegister { components } => {
                components.len()
            }
            _ => 1,
        }
    }

    /// Applies `op` to the object, returning its response.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadOperation`] if the operation does not
    /// match the object's type or indexes a nonexistent component.
    pub fn apply(&mut self, op: &Operation) -> Result<Response, ModelError> {
        match (self, op) {
            (Object::Register { value }, Operation::Read { .. }) => {
                Ok(Response::Value(value.clone()))
            }
            (Object::Register { value }, Operation::Write { value: v, .. }) => {
                *value = v.clone();
                Ok(Response::Ack)
            }
            (Object::Snapshot { components }, Operation::Update { component, value, .. }) => {
                let slot = components.get_mut(*component).ok_or_else(|| {
                    ModelError::BadOperation(format!(
                        "update to nonexistent component {component}"
                    ))
                })?;
                *slot = value.clone();
                Ok(Response::Ack)
            }
            (Object::Snapshot { components }, Operation::Scan { .. }) => {
                Ok(Response::View(components.clone()))
            }
            (Object::MaxRegister { components }, Operation::WriteMax { component, value, .. }) => {
                let slot = components.get_mut(*component).ok_or_else(|| {
                    ModelError::BadOperation(format!(
                        "writemax to nonexistent component {component}"
                    ))
                })?;
                if *value > *slot {
                    *slot = value.clone();
                }
                Ok(Response::Ack)
            }
            (Object::MaxRegister { components }, Operation::Scan { .. }) => {
                Ok(Response::View(components.clone()))
            }
            (Object::FetchAndIncrement { counter }, Operation::FetchInc { .. }) => {
                let old = *counter;
                *counter += 1;
                Ok(Response::Value(Value::Int(old)))
            }
            (Object::Swap { value }, Operation::Swap { value: v, .. }) => {
                let old = std::mem::replace(value, v.clone());
                Ok(Response::Value(old))
            }
            (Object::Cas { value }, Operation::Cas { expect, update, .. }) => {
                if value == expect {
                    *value = update.clone();
                    Ok(Response::Flag(true))
                } else {
                    Ok(Response::Flag(false))
                }
            }
            (Object::Cas { value }, Operation::Read { .. })
            | (Object::Swap { value }, Operation::Read { .. }) => {
                Ok(Response::Value(value.clone()))
            }
            (obj, op) => Err(ModelError::BadOperation(format!(
                "operation {op:?} does not apply to object {obj:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid() -> ObjectId {
        ObjectId(0)
    }

    #[test]
    fn register_read_write() {
        let mut r = Object::register();
        assert_eq!(
            r.apply(&Operation::Read { obj: oid() }).unwrap(),
            Response::Value(Value::Nil)
        );
        r.apply(&Operation::Write { obj: oid(), value: Value::Int(7) })
            .unwrap();
        assert_eq!(
            r.apply(&Operation::Read { obj: oid() }).unwrap(),
            Response::Value(Value::Int(7))
        );
    }

    #[test]
    fn snapshot_update_scan() {
        let mut s = Object::snapshot(3);
        s.apply(&Operation::Update { obj: oid(), component: 1, value: Value::Int(5) })
            .unwrap();
        let resp = s.apply(&Operation::Scan { obj: oid() }).unwrap();
        assert_eq!(
            resp,
            Response::View(vec![Value::Nil, Value::Int(5), Value::Nil])
        );
    }

    #[test]
    fn snapshot_rejects_bad_component() {
        let mut s = Object::snapshot(2);
        let err = s
            .apply(&Operation::Update { obj: oid(), component: 5, value: Value::Nil })
            .unwrap_err();
        assert!(matches!(err, ModelError::BadOperation(_)));
    }

    #[test]
    fn max_register_keeps_maximum() {
        let mut m = Object::max_register(1);
        m.apply(&Operation::WriteMax { obj: oid(), component: 0, value: Value::Int(5) })
            .unwrap();
        m.apply(&Operation::WriteMax { obj: oid(), component: 0, value: Value::Int(3) })
            .unwrap();
        assert_eq!(
            m.apply(&Operation::Scan { obj: oid() }).unwrap(),
            Response::View(vec![Value::Int(5)])
        );
    }

    #[test]
    fn fetch_and_increment_counts() {
        let mut f = Object::FetchAndIncrement { counter: 0 };
        assert_eq!(
            f.apply(&Operation::FetchInc { obj: oid() }).unwrap(),
            Response::Value(Value::Int(0))
        );
        assert_eq!(
            f.apply(&Operation::FetchInc { obj: oid() }).unwrap(),
            Response::Value(Value::Int(1))
        );
    }

    #[test]
    fn swap_returns_old() {
        let mut s = Object::Swap { value: Value::Nil };
        assert_eq!(
            s.apply(&Operation::Swap { obj: oid(), value: Value::Int(1) })
                .unwrap(),
            Response::Value(Value::Nil)
        );
        assert_eq!(
            s.apply(&Operation::Swap { obj: oid(), value: Value::Int(2) })
                .unwrap(),
            Response::Value(Value::Int(1))
        );
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let mut c = Object::Cas { value: Value::Nil };
        assert_eq!(
            c.apply(&Operation::Cas {
                obj: oid(),
                expect: Value::Int(9),
                update: Value::Int(1)
            })
            .unwrap(),
            Response::Flag(false)
        );
        assert_eq!(
            c.apply(&Operation::Cas {
                obj: oid(),
                expect: Value::Nil,
                update: Value::Int(1)
            })
            .unwrap(),
            Response::Flag(true)
        );
        assert_eq!(
            c.apply(&Operation::Read { obj: oid() }).unwrap(),
            Response::Value(Value::Int(1))
        );
    }

    #[test]
    fn register_cost_counts_components() {
        assert_eq!(Object::register().register_cost(), 1);
        assert_eq!(Object::snapshot(5).register_cost(), 5);
        assert_eq!(Object::max_register(3).register_cost(), 3);
    }

    #[test]
    fn mismatched_operation_errors() {
        let mut r = Object::register();
        assert!(r.apply(&Operation::Scan { obj: oid() }).is_err());
        let mut s = Object::snapshot(1);
        assert!(s.apply(&Operation::Write { obj: oid(), value: Value::Nil }).is_err());
    }
}
