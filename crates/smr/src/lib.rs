//! `rsim-smr`: the asynchronous shared-memory runtime underlying the
//! Revisionist Simulations reproduction.
//!
//! This crate models the system of paper §2 ("Preliminaries"):
//!
//! * [`value`] — the dynamic value domain (⊥, integers, exact dyadic
//!   rationals, pairs, tuples).
//! * [`object`] — base objects (registers, m-component snapshots,
//!   max-registers, fetch&increment, swap, CAS) with their sequential
//!   specifications.
//! * [`process`] — deterministic process state machines; the
//!   Assumption 1 protocol shape ([`process::SnapshotProtocol`]) and its
//!   adapter; local solo simulation used by covering simulators.
//! * [`system`] — configurations, atomic steps, executions, traces,
//!   single-writer restrictions, indistinguishability.
//! * [`sched`] — adversarial schedulers (round-robin, random, solo,
//!   fixed, x-obstruction, crash).
//! * [`explore`] — bounded exhaustive model checking: all interleavings
//!   of small systems, solo/group termination checks; sequential DFS and
//!   a deterministic parallel frontier engine.
//! * [`fault`] — deterministic fault injection: precisely placed
//!   crashes, stall windows, and trace-keyed triggers composable with
//!   any scheduler via [`fault::FaultScheduler`].
//! * [`shrink`] — ddmin counterexample minimisation over the joint
//!   (decision sequence, fault plan) space, preserving the violation
//!   fingerprint.
//! * [`bundle`] — portable replay bundles: self-contained JSON
//!   counterexample artifacts the `replay` CLI subcommand re-executes
//!   and verifies bit-for-bit.
//! * [`json`] — minimal JSON reader (the workspace has no serde) used
//!   by campaign checkpoints and replay bundles, plus the atomic
//!   tmp+rename writer every JSON artifact goes through.
//! * [`fingerprint`] — the sharded configuration-fingerprint cache used
//!   by the parallel explorer and campaign runner.
//! * [`campaign`] — seeded randomised campaign runner: many runs across
//!   protocol families and scheduler mixes, fanned over cores, each run
//!   replayable from its recorded seed.
//! * [`service`] — the crash-tolerant multi-process campaign service:
//!   a journaled crash-safe job queue, leased work units executed by
//!   worker processes with heartbeats/retry/quarantine, a
//!   determinism-preserving merge layer, and built-in chaos injection
//!   (worker SIGKILL, torn journal writes).
//! * [`history`] / [`linearizability`] — operation histories and a
//!   Wing–Gong linearizability checker for implemented objects.
//! * [`trace`] — per-process column diagrams and summaries of
//!   executions.
//! * [`analyze`] — the pre-flight protocol analyzer: a static linter
//!   over protocol footprints (single-writer discipline, ABA-freedom,
//!   Theorem 21 feasibility, dead steps, yield handling) and a
//!   happens-before trace checker, with stable `RS-Wxxx` lint codes
//!   and `--deny`/`--warn`/`--allow` severity configuration.
//! * [`hb`] — the happens-before runtime core: vector clocks, the
//!   exact step-commutation (independence) oracle over the object zoo,
//!   and the incremental per-execution summary shared by the analyzer's
//!   trace checker and the explorer's partial-order reduction.
//! * [`gen`] — seeded, byte-deterministic protocol generation over a
//!   small grammar, paper-aware mutation operators tagged with
//!   predicted verdicts, and the fuzz harness closing the analyze →
//!   explore → shrink → bundle loop.
//!
//! # Example: run two processes under an adversarial scheduler
//!
//! ```
//! use rsim_smr::object::{Object, ObjectId};
//! use rsim_smr::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};
//! use rsim_smr::sched::Random;
//! use rsim_smr::system::System;
//! use rsim_smr::value::Value;
//!
//! #[derive(Clone, Debug)]
//! struct WriteOnce { input: i64, wrote: bool }
//!
//! impl SnapshotProtocol for WriteOnce {
//!     fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
//!         if self.wrote { ProtocolStep::Output(view[0].clone()) }
//!         else { self.wrote = true; ProtocolStep::Update(0, Value::Int(self.input)) }
//!     }
//!     fn components(&self) -> usize { 1 }
//! }
//!
//! # fn main() -> Result<(), rsim_smr::error::ModelError> {
//! let mk = |input| Box::new(SnapshotProcess::new(
//!     WriteOnce { input, wrote: false }, ObjectId(0))) as Box<dyn Process>;
//! let mut sys = System::new(vec![Object::snapshot(1)], vec![mk(1), mk(2)]);
//! sys.run(&mut Random::seeded(1), 1_000)?;
//! assert!(sys.all_terminated());
//! # Ok(())
//! # }
//! ```

pub mod analyze;
pub mod bundle;
pub mod campaign;
pub mod error;
pub mod explore;
pub mod fault;
pub mod fingerprint;
pub mod gen;
pub mod hb;
pub mod json;
pub mod history;
pub mod linearizability;
pub mod object;
pub mod process;
pub mod sched;
pub mod service;
pub mod shrink;
pub mod system;
pub mod trace;
pub mod value;

pub use error::ModelError;
pub use object::{Object, ObjectId, Operation, Response};
pub use process::{Poised, Process, ProcessId, ProtocolStep, SnapshotProcess, SnapshotProtocol};
pub use system::{Event, System};
pub use value::{Dyadic, Value};
