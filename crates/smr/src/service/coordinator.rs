//! The campaign-service coordinator: leases units to worker processes
//! and converges on the merged report.
//!
//! The coordinator owns no execution — it spawns worker processes
//! (`worker_cmd`, normally the CLI's `campaign-worker` subcommand),
//! feeds them [`CoordMsg::Lease`] frames over stdin, and listens to
//! heartbeats and results on their stdout. Everything that matters is
//! journaled through [`JobQueue`] *before* it is acted on, so a
//! coordinator crash recovers to the same place; worker death is an
//! expected event (requeue with backoff, quarantine after
//! `max_lease_attempts`), not an error. Chaos injection
//! ([`ChaosPlan`]) runs inside this loop on purpose: the service
//! attacks itself through exactly the code paths real faults take.

use crate::campaign::CampaignReport;
use crate::error::ModelError;
use crate::service::chaos::ChaosPlan;
use crate::service::lease::{LeaseEvent, LeaseManager};
use crate::service::merge::{merge_report, ShardResult};
use crate::service::proto::{read_frame, write_frame, CoordMsg, WorkerMsg};
use crate::service::queue::{JobQueue, JournalRecord};
use crate::service::unit::{ServiceSpec, WorkUnit};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How the service runs: fleet size, durability locations, lease
/// timing, retry policy, and the chaos plan.
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Worker processes to keep alive (capped at the unsettled unit
    /// count — idle processes are not spawned).
    pub workers: usize,
    /// State directory: journal, snapshot, per-unit checkpoints.
    pub state_dir: PathBuf,
    /// Corpus directory for deduplicated violation bundles.
    pub corpus_dir: PathBuf,
    /// A lease whose worker stays silent this long is killed and
    /// requeued.
    pub lease_timeout: Duration,
    /// How often workers heartbeat while executing a unit.
    pub heartbeat_interval: Duration,
    /// Failed leases before a unit is quarantined as poison.
    pub max_lease_attempts: usize,
    /// Base retry backoff, doubled per failed lease.
    pub retry_backoff: Duration,
    /// Journal appends between snapshot compactions.
    pub compact_every: usize,
    /// Fault injections to run against this service run.
    pub chaos: ChaosPlan,
    /// The worker process command line (argv). Normally the CLI
    /// passes its own executable plus `campaign-worker`; tests
    /// substitute failing commands to exercise quarantine.
    pub worker_cmd: Vec<String>,
}

impl ServiceOptions {
    /// Options with production defaults for the given locations and
    /// worker command.
    pub fn new(state_dir: PathBuf, corpus_dir: PathBuf, worker_cmd: Vec<String>) -> ServiceOptions {
        ServiceOptions {
            workers: 2,
            state_dir,
            corpus_dir,
            lease_timeout: Duration::from_secs(30),
            heartbeat_interval: Duration::from_millis(200),
            max_lease_attempts: 3,
            retry_backoff: Duration::from_millis(50),
            compact_every: 32,
            chaos: ChaosPlan::default(),
            worker_cmd,
        }
    }
}

/// Operational counters for one service run. Diagnostics only — the
/// merged report never depends on them (that is the determinism
/// contract).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Units in the partition.
    pub units: usize,
    /// Units whose shards came from a previous run's journal.
    pub recovered_units: usize,
    /// Leases granted this run.
    pub leases: usize,
    /// Leases that ended in requeue (death, expiry, torn write).
    pub requeues: usize,
    /// Units quarantined as poison.
    pub quarantined_units: usize,
    /// Worker processes spawned.
    pub workers_spawned: usize,
    /// Chaos: workers SIGKILLed.
    pub kills_injected: usize,
    /// Chaos: journal writes torn.
    pub torn_injected: usize,
    /// Corrupt/torn journal lines dropped during recovery.
    pub dropped_journal_lines: usize,
}

/// A finished service run: the merged report plus operational stats.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// The merged campaign report — bit-for-bit what a single-process
    /// run of the same spec produces, regardless of the run's
    /// crash/retry history.
    pub report: CampaignReport,
    /// Operational counters (stderr material, never in the report).
    pub stats: ServiceStats,
}

enum Event {
    Msg(usize, WorkerMsg),
    Gone(usize),
}

struct WorkerHandle {
    child: Child,
    stdin: Option<ChildStdin>,
    current: Option<u64>,
    alive: bool,
}

fn spawn_worker(
    opts: &ServiceOptions,
    wid: usize,
    tx: &mpsc::Sender<Event>,
) -> Result<WorkerHandle, ModelError> {
    let mut child = Command::new(&opts.worker_cmd[0])
        .args(&opts.worker_cmd[1..])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| ModelError::Service {
            context: format!("spawning worker `{}`", opts.worker_cmd.join(" ")),
            reason: e.to_string(),
        })?;
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("piped stdout");
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            match WorkerMsg::parse(&payload) {
                Ok(msg) => {
                    if tx.send(Event::Msg(wid, msg)).is_err() {
                        return;
                    }
                }
                // An unparseable frame means the worker is not
                // speaking the protocol: stop trusting the stream.
                Err(_) => break,
            }
        }
        let _ = tx.send(Event::Gone(wid));
    });
    Ok(WorkerHandle { child, stdin, current: None, alive: true })
}

/// Runs the full service: recover, lease, supervise, merge.
///
/// # Errors
///
/// [`ModelError::ResumeMismatch`] when the state directory belongs to
/// a different campaign; [`ModelError::Service`] for unrecoverable
/// infrastructure faults (unusable state dir, unjournalable disk,
/// unspawnable workers). Worker deaths, lease expiries, torn journal
/// writes, and poison units are *handled*, not returned.
pub fn run_service(spec: &ServiceSpec, opts: &ServiceOptions) -> Result<ServiceOutcome, ModelError> {
    if opts.worker_cmd.is_empty() {
        return Err(ModelError::Service {
            context: "configuring workers".into(),
            reason: "worker_cmd must name an executable".into(),
        });
    }
    let (mut queue, recovered) = JobQueue::open(&opts.state_dir, opts.compact_every)?;
    match &recovered.spec {
        Some(prev) if prev.identity() != spec.identity() => {
            return Err(ModelError::ResumeMismatch {
                checkpoint: prev.identity(),
                requested: spec.identity(),
            });
        }
        Some(_) => {}
        None => queue.append(&JournalRecord::Init { spec: spec.clone() })?,
    }
    std::fs::create_dir_all(&opts.corpus_dir).map_err(|e| ModelError::Service {
        context: "creating corpus directory".into(),
        reason: e.to_string(),
    })?;

    let units: BTreeMap<u64, WorkUnit> =
        spec.partition().into_iter().map(|u| (u.id, u)).collect();
    let mut lease = LeaseManager::new(
        units.keys().copied(),
        opts.max_lease_attempts,
        opts.retry_backoff,
    );
    let mut shards: Vec<ShardResult> = Vec::new();
    let mut stats = ServiceStats {
        units: units.len(),
        recovered_units: recovered.shards.len(),
        dropped_journal_lines: recovered.dropped_lines,
        ..ServiceStats::default()
    };
    for shard in recovered.shards {
        // Shards for units outside the partition would mean a spec
        // mismatch, which was rejected above.
        if units.contains_key(&shard.unit) {
            lease.mark_done(shard.unit);
            shards.push(shard);
        }
    }
    for (unit, attempts) in &recovered.attempts {
        lease.restore_attempts(*unit, *attempts);
    }
    for (unit, reason) in &recovered.quarantined {
        lease.mark_quarantined(*unit, reason);
    }

    let mut chaos = opts.chaos.clone();
    if !lease.all_settled() {
        supervise(spec, opts, &units, &mut lease, &mut queue, &mut shards, &mut chaos, &mut stats)?;
    }
    stats.kills_injected = chaos.kills_fired();
    stats.torn_injected = chaos.torn_fired();

    let quarantined = lease.quarantined();
    stats.quarantined_units = quarantined.len();
    let quarantined_runs: usize = quarantined
        .iter()
        .filter_map(|(id, _)| units.get(id).map(|u| u.runs))
        .sum();
    queue.compact(spec, &shards, &lease.pending_attempts(), &quarantined)?;
    let report = merge_report(&spec.config, &shards, quarantined_runs);
    Ok(ServiceOutcome { report, stats })
}

/// The live supervision loop: spawn, assign, heartbeat, reap, retry.
#[allow(clippy::too_many_arguments)]
fn supervise(
    spec: &ServiceSpec,
    opts: &ServiceOptions,
    units: &BTreeMap<u64, WorkUnit>,
    lease: &mut LeaseManager,
    queue: &mut JobQueue,
    shards: &mut Vec<ShardResult>,
    chaos: &mut ChaosPlan,
    stats: &mut ServiceStats,
) -> Result<(), ModelError> {
    let (tx, rx) = mpsc::channel::<Event>();
    let mut workers: Vec<WorkerHandle> = Vec::new();
    let tick = Duration::from_millis(25);

    let unsettled = |lease: &LeaseManager| {
        units
            .keys()
            .filter(|id| {
                !matches!(
                    lease.state(**id),
                    Some(
                        crate::service::lease::UnitState::Done
                            | crate::service::lease::UnitState::Quarantined { .. }
                    )
                )
            })
            .count()
    };

    while !lease.all_settled() {
        // Keep the fleet at strength: one spawn round per loop pass
        // bounds the respawn rate for crash-looping worker commands.
        let desired = opts.workers.max(1).min(unsettled(lease));
        while workers.iter().filter(|w| w.alive).count() < desired {
            let wid = workers.len();
            workers.push(spawn_worker(opts, wid, &tx)?);
            stats.workers_spawned += 1;
        }

        assign_idle(opts, units, lease, queue, &mut workers, stats)?;

        match rx.recv_timeout(tick) {
            Ok(Event::Msg(wid, WorkerMsg::Heartbeat { unit })) => {
                lease.heartbeat(unit, Instant::now());
                if chaos.take_kill(unit) {
                    // SIGKILL mid-unit: the reader thread's EOF turns
                    // this into a normal worker death downstream.
                    if let Some(w) = workers.get_mut(wid) {
                        let _ = w.child.kill();
                    }
                }
            }
            Ok(Event::Msg(wid, WorkerMsg::Result { unit, shard })) => {
                let now = Instant::now();
                if let Some(w) = workers.get_mut(wid) {
                    w.current = None;
                }
                if chaos.take_torn(unit) {
                    // Injected power loss mid-append: persist a torn
                    // prefix, drop the in-memory result, and requeue —
                    // the unit must be re-earned through recovery-real
                    // paths.
                    let record = JournalRecord::Result { shard };
                    let keep = record.to_json().len() / 2;
                    queue.torn_append(&record, keep)?;
                    if let Some(ev) = lease.fail_lease(unit, now, "journal write torn")
                    {
                        journal_lease_event(queue, stats, &ev)?;
                    }
                } else if lease.complete(unit) {
                    queue.append(&JournalRecord::Result { shard: shard.clone() })?;
                    shards.push(shard);
                    queue.maybe_compact(
                        spec,
                        shards,
                        &lease.pending_attempts(),
                        &lease.quarantined(),
                    )?;
                }
                // A duplicate result (crash/retry race) falls through
                // silently: determinism makes it identical to the one
                // already journaled.
            }
            Ok(Event::Gone(wid)) => {
                let now = Instant::now();
                if let Some(w) = workers.get_mut(wid) {
                    if w.alive {
                        w.alive = false;
                        w.current = None;
                        w.stdin = None;
                        let _ = w.child.kill();
                        let _ = w.child.wait();
                        for ev in lease.worker_died(wid, now, "worker process died")
                        {
                            journal_lease_event(queue, stats, &ev)?;
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Lease expiry: a silent worker is dead to us even if
                // the process lingers — kill it and let the reader
                // thread's EOF path do the requeue.
                let now = Instant::now();
                for (_unit, wid) in lease.expired(now, opts.lease_timeout) {
                    if let Some(w) = workers.get_mut(wid) {
                        if w.alive {
                            let _ = w.child.kill();
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(ModelError::Service {
                    context: "supervision loop".into(),
                    reason: "event channel disconnected".into(),
                });
            }
        }
    }

    // All settled: release the fleet.
    for w in &mut workers {
        if w.alive {
            if let Some(stdin) = &mut w.stdin {
                let _ = write_frame(stdin, &CoordMsg::Shutdown.to_json());
            }
            w.stdin = None;
            let _ = w.child.wait();
        }
    }
    Ok(())
}

fn journal_lease_event(
    queue: &mut JobQueue,
    stats: &mut ServiceStats,
    event: &LeaseEvent,
) -> Result<(), ModelError> {
    match event {
        LeaseEvent::Requeued { unit, attempt, reason } => {
            stats.requeues += 1;
            queue.append(&JournalRecord::Requeue {
                unit: *unit,
                attempt: *attempt,
                reason: reason.clone(),
            })
        }
        LeaseEvent::Quarantined { unit, reason } => {
            queue.append(&JournalRecord::Quarantine {
                unit: *unit,
                reason: reason.clone(),
            })
        }
    }
}

/// Hands the next available units to idle workers.
fn assign_idle(
    opts: &ServiceOptions,
    units: &BTreeMap<u64, WorkUnit>,
    lease: &mut LeaseManager,
    queue: &mut JobQueue,
    workers: &mut [WorkerHandle],
    stats: &mut ServiceStats,
) -> Result<(), ModelError> {
    let now = Instant::now();
    for (wid, worker) in workers.iter_mut().enumerate() {
        if !worker.alive || worker.current.is_some() {
            continue;
        }
        let Some(unit_id) = lease.next_available(now) else {
            break;
        };
        let attempt = lease.lease(unit_id, wid, now);
        stats.leases += 1;
        queue.append(&JournalRecord::Lease { unit: unit_id, attempt })?;
        let msg = CoordMsg::Lease {
            unit: units[&unit_id].clone(),
            state_dir: opts.state_dir.display().to_string(),
            corpus_dir: opts.corpus_dir.display().to_string(),
            heartbeat_ms: opts.heartbeat_interval.as_millis().max(1) as u64,
        };
        let sent = match &mut worker.stdin {
            Some(stdin) => write_frame(stdin, &msg.to_json()).is_ok(),
            None => false,
        };
        if sent {
            worker.current = Some(unit_id);
        } else {
            // The worker died before taking the lease: treat as a
            // normal death so the unit requeues with an attempt
            // consumed (a crash-looping worker command must converge
            // to quarantine, not spin forever).
            worker.alive = false;
            worker.stdin = None;
            let _ = worker.child.kill();
            let _ = worker.child.wait();
            for ev in lease.worker_died(wid, now, "worker died before lease") {
                journal_lease_event(queue, stats, &ev)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, SchedulerSpec};

    fn tiny_spec() -> ServiceSpec {
        ServiceSpec {
            system: vec![
                ("kind".into(), "campaign".into()),
                ("protocol".into(), "racing".into()),
            ],
            config: CampaignConfig {
                schedulers: vec![SchedulerSpec::RoundRobin],
                seed_start: 0,
                runs: 2,
                budget: 100,
                threads: 1,
            },
            unit_runs: 1,
        }
    }

    fn dirs(tag: &str) -> (PathBuf, PathBuf) {
        let base = std::env::temp_dir()
            .join(format!("rsim-coord-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        (base.join("state"), base.join("corpus"))
    }

    /// Workers that die instantly must drive every unit to quarantine
    /// — never hang, never spin forever — and the report must say so.
    #[test]
    fn crash_looping_workers_quarantine_all_units() {
        let (state, corpus) = dirs("quarantine");
        let mut opts = ServiceOptions::new(
            state.clone(),
            corpus,
            vec!["sh".into(), "-c".into(), "exit 1".into()],
        );
        opts.workers = 2;
        opts.max_lease_attempts = 2;
        opts.retry_backoff = Duration::from_millis(1);
        let outcome = run_service(&tiny_spec(), &opts).unwrap();
        assert_eq!(outcome.stats.quarantined_units, 2);
        assert_eq!(outcome.report.total_runs, 0);
        assert_eq!(outcome.report.skipped_runs, 2);
        let notice = outcome.report.truncation.as_deref().unwrap();
        assert!(notice.contains("quarantined"), "notice: {notice}");
        // Quarantine state is durable: a rerun does not retry poison
        // units, it converges immediately to the same report.
        let rerun = run_service(&tiny_spec(), &opts).unwrap();
        assert_eq!(rerun.report.to_json(), outcome.report.to_json());
        assert_eq!(rerun.stats.leases, 0, "poison units are not re-leased");
        let _ = std::fs::remove_dir_all(state.parent().unwrap());
    }

    /// A state directory from one campaign refuses a different one.
    #[test]
    fn mismatched_state_dir_fails_closed() {
        let (state, corpus) = dirs("mismatch");
        let mut opts = ServiceOptions::new(
            state.clone(),
            corpus,
            vec!["sh".into(), "-c".into(), "exit 1".into()],
        );
        opts.max_lease_attempts = 1;
        opts.retry_backoff = Duration::from_millis(1);
        run_service(&tiny_spec(), &opts).unwrap();
        let mut other = tiny_spec();
        other.config.runs = 3;
        match run_service(&other, &opts) {
            Err(ModelError::ResumeMismatch { checkpoint, requested }) => {
                assert!(checkpoint.contains("seeds=0+2"), "{checkpoint}");
                assert!(requested.contains("seeds=0+3"), "{requested}");
            }
            other => panic!("expected ResumeMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(state.parent().unwrap());
    }

    #[test]
    fn empty_worker_cmd_is_a_structured_error() {
        let (state, corpus) = dirs("emptycmd");
        let opts = ServiceOptions::new(state.clone(), corpus, Vec::new());
        assert!(matches!(
            run_service(&tiny_spec(), &opts),
            Err(ModelError::Service { .. })
        ));
        let _ = std::fs::remove_dir_all(state.parent().unwrap());
    }
}
