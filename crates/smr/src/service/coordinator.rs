//! The campaign-service coordinator: leases units to worker sessions
//! and converges on the merged report.
//!
//! The coordinator owns no execution — it feeds [`CoordMsg::Lease`]
//! frames to worker *sessions* and listens for heartbeats and results.
//! A session reaches the coordinator over a pluggable
//! [`Transport`]: spawned child processes on piped stdio (where a
//! closed pipe *is* worker death), or TCP, where connections are cheap
//! and lossy and the session outlives any one of them — a worker that
//! reconnects within its lease window presents its session token,
//! passes the versioned handshake again, and reclaims its unit without
//! burning a lease attempt. Everything that matters is journaled
//! through [`JobQueue`] *before* it is acted on, so a coordinator
//! crash recovers to the same place; worker death, lease expiry, and
//! severed connections are expected events (requeue with backoff,
//! quarantine after `max_lease_attempts`), not errors.
//!
//! Chaos injection runs inside this loop on purpose: [`ChaosPlan`]
//! SIGKILLs workers mid-unit and tears journal writes, and its
//! deterministic [`NetChaos`] proxy drops, delays, duplicates,
//! corrupts, and severs wire frames — all through exactly the code
//! paths real faults take. The merged report must come out
//! byte-identical regardless.

use crate::campaign::{CampaignReport, FaultCampaignReport};
use crate::error::ModelError;
use crate::service::chaos::{ChaosPlan, NetAction, NetChaos};
use crate::service::lease::{LeaseEvent, LeaseManager};
use crate::service::merge::{merge_fault_report, merge_report, ShardResult};
use crate::service::proto::{
    read_frame, read_frame_raw, verify_frame, write_frame, CoordMsg, WorkerMsg,
    PROTO_VERSION,
};
use crate::service::queue::{JobQueue, JournalRecord};
use crate::service::summary::{build_summary, ClaimSummary, ServiceSummary};
use crate::service::transport::{chaos_send, flip_last, Transport, IO_DEADLINE};
use crate::service::unit::{ServiceSpec, WorkUnit};
use std::collections::{BTreeMap, BTreeSet};
use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How the service runs: fleet size, durability locations, lease
/// timing, retry policy, and the chaos plan.
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Worker processes to keep alive (capped at the unsettled unit
    /// count — idle processes are not spawned). Under a TCP transport,
    /// `0` means externally managed workers: the coordinator spawns
    /// nothing and serves whoever connects.
    pub workers: usize,
    /// State directory: journal, snapshot, per-unit checkpoints.
    pub state_dir: PathBuf,
    /// Corpus directory for deduplicated violation bundles.
    pub corpus_dir: PathBuf,
    /// A lease whose worker stays silent this long is requeued (and
    /// its session's connection severed under TCP).
    pub lease_timeout: Duration,
    /// How often workers heartbeat while executing a unit.
    pub heartbeat_interval: Duration,
    /// Failed leases before a unit is quarantined as poison.
    pub max_lease_attempts: usize,
    /// Base retry backoff, doubled per failed lease.
    pub retry_backoff: Duration,
    /// Journal appends between snapshot compactions.
    pub compact_every: usize,
    /// Fault injections to run against this service run.
    pub chaos: ChaosPlan,
    /// The worker process command line (argv). Normally the CLI
    /// passes its own executable plus `campaign-worker`; tests
    /// substitute failing commands to exercise quarantine.
    pub worker_cmd: Vec<String>,
}

impl ServiceOptions {
    /// Options with production defaults for the given locations and
    /// worker command.
    pub fn new(state_dir: PathBuf, corpus_dir: PathBuf, worker_cmd: Vec<String>) -> ServiceOptions {
        ServiceOptions {
            workers: 2,
            state_dir,
            corpus_dir,
            lease_timeout: Duration::from_secs(30),
            heartbeat_interval: Duration::from_millis(200),
            max_lease_attempts: 3,
            retry_backoff: Duration::from_millis(50),
            compact_every: 32,
            chaos: ChaosPlan::default(),
            worker_cmd,
        }
    }
}

/// Operational counters for one service run. Diagnostics only — the
/// merged report never depends on them (that is the determinism
/// contract).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Units in the partition.
    pub units: usize,
    /// Units whose shards came from a previous run's journal.
    pub recovered_units: usize,
    /// Leases granted this run.
    pub leases: usize,
    /// Leases that ended in requeue (death, expiry, torn write,
    /// corrupt or severed connection).
    pub requeues: usize,
    /// Units quarantined as poison.
    pub quarantined_units: usize,
    /// Worker processes spawned.
    pub workers_spawned: usize,
    /// Worker sessions opened (TCP handshakes, or stdio spawns).
    pub sessions: usize,
    /// Sessions resumed by a reconnecting worker.
    pub resumed_sessions: usize,
    /// Corrupt frames rejected at the wire (checksum, prefix, or
    /// protocol parse failures) — each one severs the connection and
    /// costs the unit a lease attempt: a corrupting peer converges to
    /// quarantine, a merely slow peer only ever costs requeues.
    pub corrupt_frames: usize,
    /// Chaos: workers SIGKILLed.
    pub kills_injected: usize,
    /// Chaos: journal writes torn.
    pub torn_injected: usize,
    /// Chaos: wire frames dropped.
    pub net_dropped: usize,
    /// Chaos: wire frames delayed.
    pub net_delayed: usize,
    /// Chaos: wire frames duplicated.
    pub net_duplicated: usize,
    /// Chaos: wire frames corrupted.
    pub net_corrupted: usize,
    /// Chaos: connections severed.
    pub net_severed: usize,
    /// Corrupt/torn journal lines dropped during recovery.
    pub dropped_journal_lines: usize,
}

/// The merged outcome of a service run: an ordinary scheduler-matrix
/// campaign report, or a fault-matrix report when the spec carries
/// fault plans. Either way the bytes are what the corresponding
/// single-process run produces.
#[derive(Clone, Debug)]
pub enum MergedReport {
    /// A scheduler-matrix campaign ([`ServiceSpec::faults`] empty).
    Campaign(CampaignReport),
    /// A fault-plan matrix campaign.
    Faults(FaultCampaignReport),
}

impl MergedReport {
    /// Renders the report as JSON — the same bytes the single-process
    /// `campaign` / `campaign --faults` runner emits.
    pub fn to_json(&self) -> String {
        match self {
            MergedReport::Campaign(r) => r.to_json(),
            MergedReport::Faults(r) => r.to_json(),
        }
    }

    /// The scheduler-matrix report.
    ///
    /// # Panics
    ///
    /// Panics if this run was a fault-matrix campaign.
    pub fn campaign(&self) -> &CampaignReport {
        match self {
            MergedReport::Campaign(r) => r,
            MergedReport::Faults(_) => {
                panic!("fault-matrix outcome has no scheduler-campaign report")
            }
        }
    }

    /// The fault-matrix report.
    ///
    /// # Panics
    ///
    /// Panics if this run was an ordinary scheduler-matrix campaign.
    pub fn faults(&self) -> &FaultCampaignReport {
        match self {
            MergedReport::Faults(r) => r,
            MergedReport::Campaign(_) => {
                panic!("scheduler-campaign outcome has no fault-matrix report")
            }
        }
    }
}

/// A finished service run: the merged report plus operational stats
/// and the per-claim summary.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// The merged report — bit-for-bit what a single-process run of
    /// the same spec produces, regardless of the run's crash, retry,
    /// and network-chaos history.
    pub report: MergedReport,
    /// Operational counters (stderr material, never in the report).
    pub stats: ServiceStats,
    /// The per-claim summary (also stored as `summary.json` in the
    /// state directory).
    pub summary: ServiceSummary,
}

enum Event {
    /// A protocol message from session `sid`, read under `epoch`.
    Msg(usize, u64, WorkerMsg),
    /// Session `sid`'s connection (or process) ended under `epoch`.
    Gone(usize, u64),
    /// Session `sid` sent a frame that failed checksum/parse.
    Corrupt(usize, u64),
    /// A new connection completed a handshake read (TCP only).
    Hello(TcpStream, WorkerMsg),
}

enum Link {
    Stdio(ChildStdin),
    Tcp(TcpStream),
}

/// One worker session. Under stdio the session *is* the process; under
/// TCP it is the durable identity a worker resumes by token, and
/// `link`/`epoch` track the current connection (stale readers are
/// identified by their epoch).
struct Session {
    child: Option<Child>,
    link: Option<Link>,
    epoch: u64,
    current: Option<u64>,
    alive: bool,
}

fn service_err(context: &str, reason: impl ToString) -> ModelError {
    ModelError::Service {
        context: context.into(),
        reason: reason.to_string(),
    }
}

fn spawn_stdio_worker(
    opts: &ServiceOptions,
    sid: usize,
    tx: &mpsc::Sender<Event>,
) -> Result<Session, ModelError> {
    let mut child = Command::new(&opts.worker_cmd[0])
        .args(&opts.worker_cmd[1..])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| {
            service_err(&format!("spawning worker `{}`", opts.worker_cmd.join(" ")), e)
        })?;
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("piped stdout");
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        loop {
            match read_frame(&mut reader) {
                Ok(Some(payload)) => match WorkerMsg::parse(&payload) {
                    Ok(msg) => {
                        if tx.send(Event::Msg(sid, 0, msg)).is_err() {
                            return;
                        }
                    }
                    // A checksum-valid frame that is not protocol JSON
                    // is a corrupt peer, not a slow one.
                    Err(_) => {
                        let _ = tx.send(Event::Corrupt(sid, 0));
                        return;
                    }
                },
                Ok(None) => break,
                Err(e) if e.is_corrupt() => {
                    let _ = tx.send(Event::Corrupt(sid, 0));
                    return;
                }
                Err(_) => break,
            }
        }
        let _ = tx.send(Event::Gone(sid, 0));
    });
    Ok(Session {
        child: Some(child),
        link: stdin.map(Link::Stdio),
        epoch: 0,
        current: None,
        alive: true,
    })
}

fn spawn_tcp_child(opts: &ServiceOptions, tag: u64) -> Result<Child, ModelError> {
    Command::new(&opts.worker_cmd[0])
        .args(&opts.worker_cmd[1..])
        .arg("--tag")
        .arg(tag.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .map_err(|e| {
            service_err(&format!("spawning worker `{}`", opts.worker_cmd.join(" ")), e)
        })
}

/// Reads frames off a handshaken TCP connection, routing each through
/// the network-chaos proxy, and turns wire-level failures into typed
/// events: corrupt frames sever the connection and report
/// [`Event::Corrupt`]; EOF, timeouts, and severed links report
/// [`Event::Gone`].
fn spawn_tcp_reader(
    stream: TcpStream,
    sid: usize,
    epoch: u64,
    tx: mpsc::Sender<Event>,
    net: Option<Arc<Mutex<NetChaos>>>,
) {
    std::thread::spawn(move || {
        let Ok(clone) = stream.try_clone() else {
            let _ = tx.send(Event::Gone(sid, epoch));
            return;
        };
        let mut reader = BufReader::new(clone);
        loop {
            match read_frame_raw(&mut reader) {
                Ok(None) => break,
                Err(e) if e.is_corrupt() => {
                    let _ = stream.shutdown(Shutdown::Both);
                    let _ = tx.send(Event::Corrupt(sid, epoch));
                    return;
                }
                Err(_) => break,
                Ok(Some(mut body)) => {
                    let action = match &net {
                        Some(chaos) => chaos.lock().expect("chaos lock").next_frame(),
                        None => NetAction::Deliver,
                    };
                    let mut copies = 1;
                    match action {
                        NetAction::Deliver => {}
                        NetAction::Drop => continue,
                        NetAction::Delay(d) => std::thread::sleep(d),
                        NetAction::Dup => copies = 2,
                        NetAction::Corrupt => flip_last(&mut body),
                        NetAction::Sever => {
                            let _ = stream.shutdown(Shutdown::Both);
                            break;
                        }
                    }
                    let msg = verify_frame(&body)
                        .ok()
                        .and_then(|payload| WorkerMsg::parse(&payload).ok());
                    match msg {
                        Some(msg) => {
                            for _ in 0..copies {
                                if tx.send(Event::Msg(sid, epoch, msg.clone())).is_err() {
                                    return;
                                }
                            }
                        }
                        None => {
                            let _ = stream.shutdown(Shutdown::Both);
                            let _ = tx.send(Event::Corrupt(sid, epoch));
                            return;
                        }
                    }
                }
            }
        }
        let _ = tx.send(Event::Gone(sid, epoch));
    });
}

/// Runs the full service over the stdio transport: recover, lease,
/// supervise, merge. See [`run_service_with_transport`].
///
/// # Errors
///
/// Same contract as [`run_service_with_transport`].
pub fn run_service(spec: &ServiceSpec, opts: &ServiceOptions) -> Result<ServiceOutcome, ModelError> {
    run_service_with_transport(spec, opts, &Transport::Stdio)
}

/// Runs the full service: recover, lease, supervise over the given
/// transport, merge, summarise.
///
/// # Errors
///
/// [`ModelError::ResumeMismatch`] when the state directory belongs to
/// a different campaign; [`ModelError::Service`] for unrecoverable
/// infrastructure faults (unusable state dir, unjournalable disk,
/// unspawnable workers, a worker fleet that never completes a
/// handshake). Worker deaths, lease expiries, severed or corrupted
/// connections, torn journal writes, and poison units are *handled*,
/// not returned.
pub fn run_service_with_transport(
    spec: &ServiceSpec,
    opts: &ServiceOptions,
    transport: &Transport,
) -> Result<ServiceOutcome, ModelError> {
    let tcp = matches!(transport, Transport::Tcp(_));
    if opts.worker_cmd.is_empty() && !(tcp && opts.workers == 0) {
        return Err(service_err(
            "configuring workers",
            "worker_cmd must name an executable (or pass --workers 0 \
             with --listen for an externally managed fleet)",
        ));
    }
    let start = Instant::now();
    let (mut queue, recovered) = JobQueue::open(&opts.state_dir, opts.compact_every)?;
    match &recovered.spec {
        Some(prev) if prev.identity() != spec.identity() => {
            return Err(ModelError::ResumeMismatch {
                checkpoint: prev.identity(),
                requested: spec.identity(),
            });
        }
        Some(_) => {}
        None => queue.append(&JournalRecord::Init { spec: spec.clone() })?,
    }
    std::fs::create_dir_all(&opts.corpus_dir)
        .map_err(|e| service_err("creating corpus directory", e))?;

    let units: BTreeMap<u64, WorkUnit> =
        spec.partition().into_iter().map(|u| (u.id, u)).collect();
    let mut lease = LeaseManager::new(
        units.keys().copied(),
        opts.max_lease_attempts,
        opts.retry_backoff,
    );
    let mut shards: Vec<ShardResult> = Vec::new();
    let mut stats = ServiceStats {
        units: units.len(),
        recovered_units: recovered.shards.len(),
        dropped_journal_lines: recovered.dropped_lines,
        ..ServiceStats::default()
    };
    let mut unit_attempts: BTreeMap<u64, usize> = BTreeMap::new();
    for shard in recovered.shards {
        // Shards for units outside the partition would mean a spec
        // mismatch, which was rejected above.
        if units.contains_key(&shard.unit) {
            lease.mark_done(shard.unit);
            shards.push(shard);
        }
    }
    for (unit, attempts) in &recovered.attempts {
        lease.restore_attempts(*unit, *attempts);
        unit_attempts.insert(*unit, *attempts);
    }
    for (unit, reason) in &recovered.quarantined {
        lease.mark_quarantined(*unit, reason);
    }

    let mut chaos = opts.chaos.clone();
    let net = if tcp && chaos.has_net() {
        Some(Arc::new(Mutex::new(chaos.net_chaos())))
    } else {
        None
    };
    if !lease.all_settled() {
        supervise(
            spec,
            opts,
            &units,
            &mut lease,
            &mut queue,
            &mut shards,
            &mut chaos,
            &mut stats,
            &mut unit_attempts,
            net.clone(),
            transport,
        )?;
    }
    stats.kills_injected = chaos.kills_fired();
    stats.torn_injected = chaos.torn_fired();
    if let Some(net) = &net {
        let (dropped, delayed, duplicated, corrupted, severed) =
            net.lock().expect("chaos lock").counts();
        stats.net_dropped = dropped;
        stats.net_delayed = delayed;
        stats.net_duplicated = duplicated;
        stats.net_corrupted = corrupted;
        stats.net_severed = severed;
    }

    let quarantined = lease.quarantined();
    stats.quarantined_units = quarantined.len();
    let quarantined_runs: usize = quarantined
        .iter()
        .filter_map(|(id, _)| units.get(id).map(|u| u.runs))
        .sum();
    queue.compact(spec, &shards, &lease.pending_attempts(), &quarantined)?;
    let report = if spec.faults.is_empty() {
        MergedReport::Campaign(merge_report(&spec.config, &shards, quarantined_runs))
    } else {
        MergedReport::Faults(merge_fault_report(
            &spec.config.schedulers[0].to_string(),
            spec.faults.len(),
            spec.config.runs,
            &shards,
        ))
    };
    let coverage = match &report {
        MergedReport::Campaign(r) => r.distinct_configs,
        // Fault runs do not fingerprint configurations.
        MergedReport::Faults(_) => 0,
    };
    let rows = claim_rows(spec, &units, &shards, &unit_attempts, &quarantined, &report);
    let summary = build_summary(
        &spec.identity(),
        if tcp { "tcp" } else { "stdio" },
        start.elapsed().as_millis() as u64,
        &stats,
        opts.workers,
        coverage,
        rows,
    );
    summary.store(&opts.state_dir)?;
    Ok(ServiceOutcome { report, stats, summary })
}

/// Builds the per-claim summary rows: one per scheduler (ordinary
/// campaign) or per fault plan, folding merged sample counts, shard
/// counts, retry/quarantine attrition, and failure counts.
fn claim_rows(
    spec: &ServiceSpec,
    units: &BTreeMap<u64, WorkUnit>,
    shards: &[ShardResult],
    unit_attempts: &BTreeMap<u64, usize>,
    quarantined: &[(u64, String)],
    report: &MergedReport,
) -> Vec<ClaimSummary> {
    let runs = spec.config.runs.max(1);
    let labels: Vec<String> = if spec.faults.is_empty() {
        spec.config.schedulers.iter().map(ToString::to_string).collect()
    } else {
        spec.faults.clone()
    };
    let mut rows: Vec<ClaimSummary> = labels
        .iter()
        .map(|label| ClaimSummary {
            claim: label.clone(),
            samples: 0,
            shards: 0,
            retried_units: 0,
            quarantined_units: 0,
            failures: 0,
            visited: 0,
            pruned: 0,
            prefilter_hits: 0,
        })
        .collect();
    let claim_of = |id: &u64| units.get(id).map(|u| u.index_base / runs);
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for shard in shards {
        for index in shard
            .records
            .iter()
            .map(|(i, _)| *i)
            .chain(shard.fault_records.iter().map(|(i, _)| *i))
        {
            if seen.insert(index) {
                if let Some(row) = rows.get_mut(index / runs) {
                    row.samples += 1;
                }
            }
        }
        if let Some(c) = claim_of(&shard.unit) {
            if let Some(row) = rows.get_mut(c) {
                row.shards += 1;
            }
        }
    }
    for (id, attempts) in unit_attempts {
        if *attempts > 1 {
            if let Some(row) = claim_of(id).and_then(|c| rows.get_mut(c)) {
                row.retried_units += 1;
            }
        }
    }
    for (id, _) in quarantined {
        if let Some(row) = claim_of(id).and_then(|c| rows.get_mut(c)) {
            row.quarantined_units += 1;
        }
    }
    match report {
        MergedReport::Campaign(r) => {
            for (i, tally) in r.per_scheduler.iter().enumerate() {
                if let Some(row) = rows.get_mut(i) {
                    row.failures = tally.failures;
                    // The reduction tallies come from the merged
                    // report's per-scheduler sums, which the merge gate
                    // certifies byte-identical to a single-process run.
                    row.visited = tally.total_steps;
                    row.pruned = tally.pruned;
                    row.prefilter_hits = tally.prefilter_hits;
                }
            }
        }
        MergedReport::Faults(r) => {
            for failure in &r.failures {
                if let Some(row) = labels
                    .iter()
                    .position(|label| *label == failure.plan)
                    .and_then(|c| rows.get_mut(c))
                {
                    row.failures += 1;
                }
            }
        }
    }
    rows
}

/// The live supervision loop: accept/spawn, assign, heartbeat, reap,
/// retry — over either transport.
#[allow(clippy::too_many_arguments)]
fn supervise(
    spec: &ServiceSpec,
    opts: &ServiceOptions,
    units: &BTreeMap<u64, WorkUnit>,
    lease: &mut LeaseManager,
    queue: &mut JobQueue,
    shards: &mut Vec<ShardResult>,
    chaos: &mut ChaosPlan,
    stats: &mut ServiceStats,
    unit_attempts: &mut BTreeMap<u64, usize>,
    net: Option<Arc<Mutex<NetChaos>>>,
    transport: &Transport,
) -> Result<(), ModelError> {
    let (tx, rx) = mpsc::channel::<Event>();
    let tick = Duration::from_millis(25);
    let accept_done = Arc::new(AtomicBool::new(false));
    let mut local_addr = None;
    if let Transport::Tcp(listener) = transport {
        let addr = listener
            .local_addr()
            .map_err(|e| service_err("tcp listener", e))?;
        let listener = listener
            .try_clone()
            .map_err(|e| service_err("tcp listener", e))?;
        local_addr = Some(addr);
        let tx = tx.clone();
        let done = accept_done.clone();
        std::thread::spawn(move || {
            // Each accepted connection gets its own handshake thread:
            // a peer that never sends a hello times out and is dropped
            // without ever stalling the accept loop.
            for stream in listener.incoming() {
                if done.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let _ = stream.set_read_timeout(Some(IO_DEADLINE));
                    let _ = stream.set_write_timeout(Some(IO_DEADLINE));
                    let Ok(clone) = stream.try_clone() else { return };
                    // One-byte buffer: this reader is dropped after the
                    // hello, and anything it over-read would be lost to
                    // the session reader that takes over the stream.
                    let mut reader = BufReader::with_capacity(1, clone);
                    if let Ok(Some(payload)) = read_frame(&mut reader) {
                        if let Ok(msg @ WorkerMsg::Hello { .. }) = WorkerMsg::parse(&payload) {
                            let _ = tx.send(Event::Hello(stream, msg));
                            return;
                        }
                    }
                    let _ = stream.shutdown(Shutdown::Both);
                });
            }
        });
    }

    let mut sup = Supervisor {
        spec,
        opts,
        units,
        lease,
        queue,
        shards,
        chaos,
        stats,
        unit_attempts,
        net,
        tx,
        sessions: Vec::new(),
        pending: Vec::new(),
        next_tag: 0,
        prehandshake_deaths: 0,
        tcp: matches!(transport, Transport::Tcp(_)),
        identity: spec.identity(),
    };
    let result = (|| {
        while !sup.lease.all_settled() {
            sup.keep_fleet()?;
            sup.assign_idle()?;
            match rx.recv_timeout(tick) {
                Ok(event) => sup.handle(event)?,
                Err(mpsc::RecvTimeoutError::Timeout) => sup.expire()?,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(service_err(
                        "supervision loop",
                        "event channel disconnected",
                    ));
                }
            }
        }
        Ok(())
    })();
    sup.finish();
    accept_done.store(true, Ordering::SeqCst);
    if let Some(addr) = local_addr {
        // Unblock the accept loop so its thread exits.
        let _ = TcpStream::connect(addr);
    }
    result
}

struct Supervisor<'a> {
    spec: &'a ServiceSpec,
    opts: &'a ServiceOptions,
    units: &'a BTreeMap<u64, WorkUnit>,
    lease: &'a mut LeaseManager,
    queue: &'a mut JobQueue,
    shards: &'a mut Vec<ShardResult>,
    chaos: &'a mut ChaosPlan,
    stats: &'a mut ServiceStats,
    unit_attempts: &'a mut BTreeMap<u64, usize>,
    net: Option<Arc<Mutex<NetChaos>>>,
    tx: mpsc::Sender<Event>,
    sessions: Vec<Session>,
    /// TCP children spawned but not yet bound to a session, keyed by
    /// the `--tag` they will echo in their hello.
    pending: Vec<(u64, Child)>,
    next_tag: u64,
    prehandshake_deaths: usize,
    tcp: bool,
    identity: String,
}

impl Supervisor<'_> {
    fn unsettled(&self) -> usize {
        self.units
            .keys()
            .filter(|id| {
                !matches!(
                    self.lease.state(**id),
                    Some(
                        crate::service::lease::UnitState::Done
                            | crate::service::lease::UnitState::Quarantined { .. }
                    )
                )
            })
            .count()
    }

    /// Keeps the fleet at strength. Stdio spawns sessions directly;
    /// TCP spawns tagged children and waits for their handshakes,
    /// failing closed if the fleet keeps dying before ever completing
    /// one.
    fn keep_fleet(&mut self) -> Result<(), ModelError> {
        if self.tcp {
            let mut i = 0;
            while i < self.pending.len() {
                if matches!(self.pending[i].1.try_wait(), Ok(Some(_))) {
                    self.pending.remove(i);
                    self.prehandshake_deaths += 1;
                } else {
                    i += 1;
                }
            }
            if self.prehandshake_deaths > 50
                && self.sessions.iter().all(|s| !s.alive)
            {
                return Err(service_err(
                    "tcp worker fleet",
                    "workers keep dying before completing the handshake",
                ));
            }
            let desired = self.opts.workers.min(self.unsettled());
            while self.pending.len()
                + self
                    .sessions
                    .iter()
                    .filter(|s| s.alive && s.child.is_some())
                    .count()
                < desired
            {
                let tag = self.next_tag;
                self.next_tag += 1;
                self.pending.push((tag, spawn_tcp_child(self.opts, tag)?));
                self.stats.workers_spawned += 1;
            }
        } else {
            // One spawn round per loop pass bounds the respawn rate
            // for crash-looping worker commands.
            let desired = self.opts.workers.max(1).min(self.unsettled());
            while self.sessions.iter().filter(|s| s.alive).count() < desired {
                let sid = self.sessions.len();
                self.sessions.push(spawn_stdio_worker(self.opts, sid, &self.tx)?);
                self.stats.workers_spawned += 1;
                self.stats.sessions += 1;
            }
        }
        Ok(())
    }

    /// Hands the next available units to idle linked sessions.
    fn assign_idle(&mut self) -> Result<(), ModelError> {
        let now = Instant::now();
        for sid in 0..self.sessions.len() {
            {
                let sess = &self.sessions[sid];
                if !sess.alive || sess.current.is_some() || sess.link.is_none() {
                    continue;
                }
            }
            let Some(unit_id) = self.lease.next_available(now) else {
                break;
            };
            let attempt = self.lease.lease(unit_id, sid, now);
            self.stats.leases += 1;
            let slot = self.unit_attempts.entry(unit_id).or_insert(0);
            *slot = (*slot).max(attempt);
            self.queue.append(&JournalRecord::Lease { unit: unit_id, attempt })?;
            let payload = CoordMsg::Lease {
                unit: self.units[&unit_id].clone(),
                state_dir: self.opts.state_dir.display().to_string(),
                corpus_dir: self.opts.corpus_dir.display().to_string(),
                heartbeat_ms: self.opts.heartbeat_interval.as_millis().max(1) as u64,
            }
            .to_json();
            let sess = &mut self.sessions[sid];
            match &mut sess.link {
                Some(Link::Stdio(stdin)) => {
                    if write_frame(stdin, &payload).is_ok() {
                        sess.current = Some(unit_id);
                    } else {
                        // The worker died before taking the lease:
                        // treat as a normal death so the unit requeues
                        // with an attempt consumed (a crash-looping
                        // worker command must converge to quarantine,
                        // not spin forever).
                        sess.alive = false;
                        sess.link = None;
                        if let Some(child) = &mut sess.child {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                        for ev in
                            self.lease.worker_died(sid, now, "worker died before lease")
                        {
                            journal_lease_event(self.queue, self.stats, &ev)?;
                        }
                    }
                }
                Some(Link::Tcp(stream)) => {
                    // The lease stands even if the frame is lost
                    // (chaos drop, dead link): expiry requeues it.
                    sess.current = Some(unit_id);
                    if chaos_send(stream, &payload, self.net.as_deref()).is_err() {
                        let _ = stream.shutdown(Shutdown::Both);
                        sess.link = None;
                    }
                }
                None => unreachable!("idle sessions are filtered for a link"),
            }
        }
        Ok(())
    }

    fn handle(&mut self, event: Event) -> Result<(), ModelError> {
        match event {
            Event::Msg(sid, _epoch, WorkerMsg::Heartbeat { unit }) => {
                self.lease.heartbeat(unit, Instant::now());
                if self.chaos.take_kill(unit) {
                    self.chaos_kill(sid, unit)?;
                }
                Ok(())
            }
            Event::Msg(sid, _epoch, WorkerMsg::Result { unit, shard }) => {
                self.handle_result(sid, unit, shard)
            }
            // A hello on an established link is not a protocol state
            // we recognise; drop it (handshakes arrive as Event::Hello).
            Event::Msg(_, _, WorkerMsg::Hello { .. }) => Ok(()),
            Event::Gone(sid, epoch) => self.handle_gone(sid, epoch),
            Event::Corrupt(sid, epoch) => self.handle_corrupt(sid, epoch),
            Event::Hello(stream, msg) => self.handle_hello(stream, msg),
        }
    }

    /// A chaos `kill@unit` fired on this heartbeat: SIGKILL the
    /// worker's process, or for an externally managed TCP worker sever
    /// the connection and charge the lease attempt directly.
    fn chaos_kill(&mut self, sid: usize, unit: u64) -> Result<(), ModelError> {
        let Some(sess) = self.sessions.get_mut(sid) else { return Ok(()) };
        if let Some(child) = &mut sess.child {
            let _ = child.kill();
            if self.tcp {
                // Reap now so the reader's Gone sees a dead process
                // and requeues immediately instead of via expiry.
                let _ = child.wait();
            }
            return Ok(());
        }
        if self.tcp {
            if let Some(Link::Tcp(stream)) = sess.link.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            sess.epoch += 1;
            sess.current = None;
            if let Some(ev) = self.lease.fail_lease(unit, Instant::now(), "killed by chaos")
            {
                journal_lease_event(self.queue, self.stats, &ev)?;
            }
        }
        Ok(())
    }

    fn handle_result(
        &mut self,
        sid: usize,
        unit: u64,
        shard: ShardResult,
    ) -> Result<(), ModelError> {
        let now = Instant::now();
        if let Some(sess) = self.sessions.get_mut(sid) {
            if sess.current == Some(unit) {
                sess.current = None;
            }
        }
        if self.chaos.take_torn(unit) {
            // Injected power loss mid-append: persist a torn prefix,
            // drop the in-memory result, and requeue — the unit must
            // be re-earned through recovery-real paths.
            let record = JournalRecord::Result { shard };
            let keep = record.to_json().len() / 2;
            self.queue.torn_append(&record, keep)?;
            if let Some(ev) = self.lease.fail_lease(unit, now, "journal write torn") {
                journal_lease_event(self.queue, self.stats, &ev)?;
            }
        } else if self.lease.complete(unit) {
            self.queue.append(&JournalRecord::Result { shard: shard.clone() })?;
            self.shards.push(shard);
            self.queue.maybe_compact(
                self.spec,
                self.shards,
                &self.lease.pending_attempts(),
                &self.lease.quarantined(),
            )?;
        }
        // A duplicate result (crash/retry race, chaos dup) falls
        // through silently: determinism makes it identical to the one
        // already journaled.
        Ok(())
    }

    fn handle_gone(&mut self, sid: usize, epoch: u64) -> Result<(), ModelError> {
        let now = Instant::now();
        let Some(sess) = self.sessions.get_mut(sid) else { return Ok(()) };
        if sess.epoch != epoch || !sess.alive {
            return Ok(());
        }
        if self.tcp {
            // A dropped connection is not a dead session: the worker
            // may reconnect and resume within its lease window. Only a
            // dead *process* (for coordinator-spawned workers) ends
            // the session here; external sessions end via lease expiry.
            sess.link = None;
            let exited = match &mut sess.child {
                Some(child) => !matches!(child.try_wait(), Ok(None)),
                None => false,
            };
            if !exited {
                return Ok(());
            }
            if let Some(child) = &mut sess.child {
                let _ = child.wait();
            }
        } else if let Some(child) = &mut sess.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        sess.alive = false;
        sess.current = None;
        sess.link = None;
        for ev in self.lease.worker_died(sid, now, "worker process died") {
            journal_lease_event(self.queue, self.stats, &ev)?;
        }
        Ok(())
    }

    /// A corrupt frame severs the connection and consumes a lease
    /// attempt — the "corrupt peer" path, distinct from the "slow
    /// peer" path (expiry/requeue): a peer that keeps corrupting
    /// converges to quarantine.
    fn handle_corrupt(&mut self, sid: usize, epoch: u64) -> Result<(), ModelError> {
        let now = Instant::now();
        let Some(sess) = self.sessions.get_mut(sid) else { return Ok(()) };
        if sess.epoch != epoch || !sess.alive {
            return Ok(());
        }
        self.stats.corrupt_frames += 1;
        sess.link = None;
        if self.tcp {
            // The session survives (the worker may reconnect with a
            // clean link), but the unit pays an attempt.
            sess.epoch += 1;
            if let Some(unit) = sess.current.take() {
                if let Some(ev) =
                    self.lease.fail_lease(unit, now, "corrupt frame from worker")
                {
                    journal_lease_event(self.queue, self.stats, &ev)?;
                }
            }
        } else {
            sess.alive = false;
            sess.current = None;
            if let Some(child) = &mut sess.child {
                let _ = child.kill();
                let _ = child.wait();
            }
            for ev in self.lease.worker_died(sid, now, "corrupt frame from worker") {
                journal_lease_event(self.queue, self.stats, &ev)?;
            }
        }
        Ok(())
    }

    /// Validates a TCP handshake: version and spec-id mismatches are
    /// rejected fatally (fail closed), an unknown or expired session
    /// token is rejected non-fatally (the worker retries fresh), and a
    /// valid token resumes the session — reclaiming its leased unit
    /// without burning an attempt.
    fn handle_hello(&mut self, stream: TcpStream, msg: WorkerMsg) -> Result<(), ModelError> {
        let WorkerMsg::Hello { version, session, spec_id, tag } = msg else {
            let _ = stream.shutdown(Shutdown::Both);
            return Ok(());
        };
        let reject = |stream: &TcpStream, reason: String, fatal: bool| {
            if let Ok(mut w) = stream.try_clone() {
                let _ = write_frame(&mut w, &CoordMsg::Reject { reason, fatal }.to_json());
            }
            let _ = stream.shutdown(Shutdown::Both);
        };
        if version != PROTO_VERSION {
            reject(
                &stream,
                format!("protocol version {version} != {PROTO_VERSION}"),
                true,
            );
            return Ok(());
        }
        if let Some(id) = &spec_id {
            if *id != self.identity {
                reject(&stream, format!("campaign spec mismatch: worker ran `{id}`"), true);
                return Ok(());
            }
        }
        match session {
            Some(token) => {
                let sid = usize::try_from(token).unwrap_or(usize::MAX);
                if !self.sessions.get(sid).is_some_and(|s| s.alive) {
                    reject(&stream, "unknown or expired session".into(), false);
                    return Ok(());
                }
                let sess = &mut self.sessions[sid];
                if let Some(Link::Tcp(old)) = sess.link.take() {
                    let _ = old.shutdown(Shutdown::Both);
                }
                // New epoch first: anything the old reader still sends
                // is stale by construction.
                sess.epoch += 1;
                if self.welcome_and_link(sid, stream) {
                    self.stats.resumed_sessions += 1;
                }
            }
            None => {
                let sid = self.sessions.len();
                self.sessions.push(Session {
                    child: None,
                    link: None,
                    epoch: 0,
                    current: None,
                    alive: true,
                });
                if self.welcome_and_link(sid, stream) {
                    self.stats.sessions += 1;
                    self.prehandshake_deaths = 0;
                    if let Some(tag) = tag {
                        if let Some(pos) =
                            self.pending.iter().position(|(t, _)| *t == tag)
                        {
                            self.sessions[sid].child = Some(self.pending.remove(pos).1);
                        }
                    }
                } else {
                    // The welcome never reached the worker: the
                    // session was never established on their side.
                    self.sessions[sid].alive = false;
                }
            }
        }
        Ok(())
    }

    /// Sends the welcome (bypassing chaos: handshakes are control
    /// plane) and installs the connection as the session's link.
    /// Returns false if the welcome could not be delivered.
    fn welcome_and_link(&mut self, sid: usize, stream: TcpStream) -> bool {
        let payload = CoordMsg::Welcome {
            version: PROTO_VERSION,
            spec_id: self.identity.clone(),
            session: sid as u64,
            lease_timeout_ms: self.opts.lease_timeout.as_millis().max(1) as u64,
        }
        .to_json();
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(IO_DEADLINE));
        // Workers are silent while idle (no lease, no heartbeats), so
        // the read deadline is generous; it only catches links whose
        // peer vanished without a FIN.
        let read_deadline = (self.opts.lease_timeout * 2).max(Duration::from_secs(60));
        let _ = stream.set_read_timeout(Some(read_deadline));
        let sent = stream
            .try_clone()
            .ok()
            .and_then(|mut w| write_frame(&mut w, &payload).ok())
            .is_some();
        if !sent {
            let _ = stream.shutdown(Shutdown::Both);
            return false;
        }
        let sess = &mut self.sessions[sid];
        let epoch = sess.epoch;
        let reader = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return false;
            }
        };
        sess.link = Some(Link::Tcp(stream));
        spawn_tcp_reader(reader, sid, epoch, self.tx.clone(), self.net.clone());
        true
    }

    /// Lease expiry. Stdio kills the silent worker and lets the
    /// reader's EOF path requeue; TCP severs the connection (closing
    /// the resumption window) and requeues directly — an external
    /// session may later reconnect fresh, but the lease attempt is
    /// spent.
    fn expire(&mut self) -> Result<(), ModelError> {
        let now = Instant::now();
        for (unit, sid) in self.lease.expired(now, self.opts.lease_timeout) {
            let Some(sess) = self.sessions.get_mut(sid) else { continue };
            if self.tcp {
                if let Some(Link::Tcp(stream)) = sess.link.take() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                sess.epoch += 1;
                if sess.current == Some(unit) {
                    sess.current = None;
                }
                if let Some(child) = &mut sess.child {
                    let _ = child.kill();
                    let _ = child.wait();
                    sess.alive = false;
                }
                if let Some(ev) = self.lease.fail_lease(unit, now, "lease expired") {
                    journal_lease_event(self.queue, self.stats, &ev)?;
                }
            } else if sess.alive {
                if let Some(child) = &mut sess.child {
                    let _ = child.kill();
                }
            }
        }
        Ok(())
    }

    /// All settled: release the fleet. Shutdown frames bypass chaos —
    /// tearing the run down must always converge.
    fn finish(&mut self) {
        for sess in &mut self.sessions {
            if !sess.alive {
                if let Some(child) = &mut sess.child {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                continue;
            }
            let sent = match &mut sess.link {
                Some(Link::Stdio(stdin)) => {
                    write_frame(stdin, &CoordMsg::Shutdown.to_json()).is_ok()
                }
                Some(Link::Tcp(stream)) => {
                    write_frame(stream, &CoordMsg::Shutdown.to_json()).is_ok()
                }
                None => false,
            };
            sess.link = None;
            if let Some(child) = &mut sess.child {
                if !sent {
                    let _ = child.kill();
                }
                let _ = child.wait();
            }
        }
        for (_tag, child) in &mut self.pending {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn journal_lease_event(
    queue: &mut JobQueue,
    stats: &mut ServiceStats,
    event: &LeaseEvent,
) -> Result<(), ModelError> {
    match event {
        LeaseEvent::Requeued { unit, attempt, reason } => {
            stats.requeues += 1;
            queue.append(&JournalRecord::Requeue {
                unit: *unit,
                attempt: *attempt,
                reason: reason.clone(),
            })
        }
        LeaseEvent::Quarantined { unit, reason } => {
            queue.append(&JournalRecord::Quarantine {
                unit: *unit,
                reason: reason.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, SchedulerSpec};

    fn tiny_spec() -> ServiceSpec {
        ServiceSpec {
            system: vec![
                ("kind".into(), "campaign".into()),
                ("protocol".into(), "racing".into()),
            ],
            config: CampaignConfig {
                schedulers: vec![SchedulerSpec::RoundRobin],
                seed_start: 0,
                runs: 2,
                budget: 100,
                threads: 1,
            },
            unit_runs: 1,
            faults: Vec::new(),
        }
    }

    fn dirs(tag: &str) -> (PathBuf, PathBuf) {
        let base = std::env::temp_dir()
            .join(format!("rsim-coord-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        (base.join("state"), base.join("corpus"))
    }

    /// Workers that die instantly must drive every unit to quarantine
    /// — never hang, never spin forever — and the report must say so.
    #[test]
    fn crash_looping_workers_quarantine_all_units() {
        let (state, corpus) = dirs("quarantine");
        let mut opts = ServiceOptions::new(
            state.clone(),
            corpus,
            vec!["sh".into(), "-c".into(), "exit 1".into()],
        );
        opts.workers = 2;
        opts.max_lease_attempts = 2;
        opts.retry_backoff = Duration::from_millis(1);
        let outcome = run_service(&tiny_spec(), &opts).unwrap();
        assert_eq!(outcome.stats.quarantined_units, 2);
        assert_eq!(outcome.report.campaign().total_runs, 0);
        assert_eq!(outcome.report.campaign().skipped_runs, 2);
        let report = outcome.report.campaign();
        let notice = report.truncation.as_deref().unwrap();
        assert!(notice.contains("quarantined"), "notice: {notice}");
        // The summary mirrors the attrition.
        assert_eq!(outcome.summary.transport, "stdio");
        assert_eq!(outcome.summary.claims.len(), 1);
        assert_eq!(outcome.summary.claims[0].quarantined_units, 2);
        assert_eq!(outcome.summary.claims[0].samples, 0);
        // Quarantine state is durable: a rerun does not retry poison
        // units, it converges immediately to the same report.
        let rerun = run_service(&tiny_spec(), &opts).unwrap();
        assert_eq!(rerun.report.to_json(), outcome.report.to_json());
        assert_eq!(rerun.stats.leases, 0, "poison units are not re-leased");
        let _ = std::fs::remove_dir_all(state.parent().unwrap());
    }

    /// A state directory from one campaign refuses a different one.
    #[test]
    fn mismatched_state_dir_fails_closed() {
        let (state, corpus) = dirs("mismatch");
        let mut opts = ServiceOptions::new(
            state.clone(),
            corpus,
            vec!["sh".into(), "-c".into(), "exit 1".into()],
        );
        opts.max_lease_attempts = 1;
        opts.retry_backoff = Duration::from_millis(1);
        run_service(&tiny_spec(), &opts).unwrap();
        let mut other = tiny_spec();
        other.config.runs = 3;
        match run_service(&other, &opts) {
            Err(ModelError::ResumeMismatch { checkpoint, requested }) => {
                assert!(checkpoint.contains("seeds=0+2"), "{checkpoint}");
                assert!(requested.contains("seeds=0+3"), "{requested}");
            }
            other => panic!("expected ResumeMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(state.parent().unwrap());
    }

    #[test]
    fn empty_worker_cmd_is_a_structured_error() {
        let (state, corpus) = dirs("emptycmd");
        let opts = ServiceOptions::new(state.clone(), corpus, Vec::new());
        assert!(matches!(
            run_service(&tiny_spec(), &opts),
            Err(ModelError::Service { .. })
        ));
        let _ = std::fs::remove_dir_all(state.parent().unwrap());
    }

    /// `--workers 0` is only meaningful with a TCP listener (external
    /// fleet); over stdio it still requires a worker command.
    #[test]
    fn tcp_with_zero_workers_needs_no_worker_cmd() {
        let (state, corpus) = dirs("external");
        // All units already settled is the trivial case: no listener
        // traffic needed, the run merges what recovery found (nothing)
        // and quarantines nothing — but with zero workers and no
        // external connections the supervision loop would wait
        // forever, so use a spec with zero units.
        let mut spec = tiny_spec();
        spec.config.runs = 0;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let opts = ServiceOptions {
            workers: 0,
            ..ServiceOptions::new(state.clone(), corpus, Vec::new())
        };
        let outcome =
            run_service_with_transport(&spec, &opts, &Transport::Tcp(listener)).unwrap();
        assert_eq!(outcome.report.campaign().total_runs, 0);
        assert_eq!(outcome.summary.transport, "tcp");
        let _ = std::fs::remove_dir_all(state.parent().unwrap());
    }
}
