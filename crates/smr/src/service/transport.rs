//! The pluggable coordinator ⇄ worker transport.
//!
//! Two implementations share one wire protocol ([`super::proto`]):
//!
//! * **Stdio** — the original framing: the coordinator spawns workers
//!   with piped stdin/stdout and owns their lifetime. A closed pipe
//!   *is* worker death, so there is no handshake and no resumption —
//!   the process model already gives exactly-one-connection semantics.
//! * **TCP** — `campaign-service --listen ADDR` accepts connections
//!   from `campaign-worker --connect ADDR` anywhere on the network.
//!   Connections are cheap and lossy, so everything the process model
//!   gave for free is rebuilt explicitly: a versioned handshake that
//!   fails closed on protocol or spec mismatch, checksummed frames,
//!   per-connection read/write deadlines, and session resumption — a
//!   worker that reconnects within its lease window presents its
//!   session token and reclaims its unit instead of burning a lease
//!   attempt.
//!
//! This module also houses the worker-side [`Remote`] client (connect,
//! handshake, bounded-backoff reconnect, thread-safe frame sends) and
//! the coordinator-side chaos-aware send path used to inject outbound
//! network faults.

use crate::service::chaos::{NetAction, NetChaos};
use crate::service::proto::{
    encode_frame, read_frame, write_frame, CoordMsg, WorkerMsg, PROTO_VERSION,
};
use std::io::{self, BufReader, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Deadline for handshake reads and all coordinator-side frame writes:
/// a peer that cannot move one small frame in this long is treated as
/// gone, not waited on.
pub const IO_DEADLINE: Duration = Duration::from_secs(10);

/// How the coordinator talks to workers.
#[derive(Debug)]
pub enum Transport {
    /// Spawned child processes over piped stdin/stdout.
    Stdio,
    /// A bound listener accepting worker connections.
    Tcp(TcpListener),
}

/// Flips the last byte of an encoded frame or frame body — the
/// canonical chaos corruption, guaranteed to land in the payload (the
/// checksum must catch it).
pub(crate) fn flip_last(bytes: &mut [u8]) {
    if let Some(b) = bytes.last_mut() {
        *b ^= 0x01;
    }
}

/// Writes one frame through the network-chaos proxy. `Drop` pretends
/// success (the lease machinery recovers via expiry); `Sever` tears the
/// connection down; `Corrupt` sends damaged bytes the peer must reject.
pub(crate) fn chaos_send(
    stream: &mut TcpStream,
    payload: &str,
    chaos: Option<&Mutex<NetChaos>>,
) -> io::Result<()> {
    let action = match chaos {
        Some(chaos) => chaos.lock().expect("chaos lock").next_frame(),
        None => NetAction::Deliver,
    };
    match action {
        NetAction::Deliver => write_frame(stream, payload),
        NetAction::Drop => Ok(()),
        NetAction::Delay(d) => {
            std::thread::sleep(d);
            write_frame(stream, payload)
        }
        NetAction::Dup => {
            write_frame(stream, payload)?;
            write_frame(stream, payload)
        }
        NetAction::Corrupt => {
            let mut bytes = encode_frame(payload).into_bytes();
            flip_last(&mut bytes);
            stream.write_all(&bytes)?;
            stream.flush()
        }
        NetAction::Sever => {
            let _ = stream.shutdown(Shutdown::Both);
            Ok(())
        }
    }
}

/// Why the worker gave up on its coordinator.
#[derive(Debug)]
pub enum RemoteError {
    /// The coordinator rejected the handshake permanently (version or
    /// spec-id mismatch): retrying can never succeed.
    Fatal(String),
    /// The coordinator stayed unreachable past the reconnect budget.
    Unreachable(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Fatal(reason) => {
                write!(f, "coordinator rejected handshake: {reason}")
            }
            RemoteError::Unreachable(reason) => {
                write!(f, "coordinator unreachable: {reason}")
            }
        }
    }
}

#[derive(Debug, Default)]
struct RemoteState {
    stream: Option<TcpStream>,
    generation: u64,
    session: Option<u64>,
    spec_id: Option<String>,
    lease_timeout_ms: u64,
}

/// The worker's self-healing connection to the coordinator. All frame
/// sends go through [`Remote::send`], which transparently reconnects
/// (re-handshaking with the stored session token, so the lease
/// survives) with exponential backoff bounded by roughly twice the
/// lease window — past that the lease is lost anyway and the worker
/// should exit rather than retry forever.
#[derive(Debug)]
pub struct Remote {
    addr: String,
    tag: Option<u64>,
    idle_read_timeout: Duration,
    state: Mutex<RemoteState>,
}

impl Remote {
    /// A client for the coordinator at `addr` (no I/O yet). `tag` is
    /// the coordinator-assigned spawn ordinal, echoed in the handshake
    /// so the coordinator can bind this worker's process handle to the
    /// session.
    pub fn new(addr: &str, tag: Option<u64>) -> Remote {
        Remote {
            addr: addr.to_string(),
            tag,
            idle_read_timeout: Duration::from_secs(120),
            state: Mutex::new(RemoteState::default()),
        }
    }

    /// The session token granted by the coordinator, if connected yet.
    pub fn session(&self) -> Option<u64> {
        self.state.lock().expect("remote lock").session
    }

    /// Returns a cloned handle to the live connection (connecting and
    /// handshaking first if necessary) plus its generation number for
    /// [`Remote::disconnect`].
    ///
    /// # Errors
    ///
    /// [`RemoteError::Fatal`] on a permanent handshake rejection,
    /// [`RemoteError::Unreachable`] once the bounded reconnect budget
    /// is spent.
    pub fn ensure(&self) -> Result<(TcpStream, u64), RemoteError> {
        let mut st = self.state.lock().expect("remote lock");
        if let Some(stream) = &st.stream {
            if let Ok(clone) = stream.try_clone() {
                return Ok((clone, st.generation));
            }
            st.stream = None;
        }
        // Reconnect budget: twice the lease window (floor 10 s) —
        // beyond that the coordinator has already requeued our unit.
        let budget =
            Duration::from_millis(st.lease_timeout_ms.saturating_mul(2)).max(
                Duration::from_secs(10),
            );
        let start = Instant::now();
        let mut backoff = Duration::from_millis(50);
        loop {
            let last = match self.connect_once(&mut st) {
                Ok(()) => {
                    match st.stream.as_ref().expect("connected stream").try_clone() {
                        Ok(clone) => return Ok((clone, st.generation)),
                        Err(e) => {
                            st.stream = None;
                            e.to_string()
                        }
                    }
                }
                Err(HandshakeError::Fatal(reason)) => {
                    return Err(RemoteError::Fatal(reason));
                }
                Err(HandshakeError::StaleSession) => {
                    // The coordinator no longer knows our session
                    // (restart, or the lease window closed). Retry
                    // immediately with a fresh hello.
                    st.session = None;
                    if start.elapsed() >= budget {
                        return Err(RemoteError::Unreachable(
                            "session expired".into(),
                        ));
                    }
                    continue;
                }
                Err(HandshakeError::Io(e)) => e,
            };
            if start.elapsed() >= budget {
                return Err(RemoteError::Unreachable(last));
            }
            std::thread::sleep(backoff.min(Duration::from_secs(2)));
            backoff *= 2;
        }
    }

    fn connect_once(
        &self,
        st: &mut RemoteState,
    ) -> Result<(), HandshakeError> {
        let io = |e: io::Error| HandshakeError::Io(e.to_string());
        let stream = TcpStream::connect(&self.addr).map_err(io)?;
        stream.set_nodelay(true).map_err(io)?;
        stream.set_write_timeout(Some(IO_DEADLINE)).map_err(io)?;
        stream.set_read_timeout(Some(IO_DEADLINE)).map_err(io)?;
        let hello = WorkerMsg::Hello {
            version: PROTO_VERSION,
            session: st.session,
            spec_id: st.spec_id.clone(),
            tag: self.tag,
        };
        let mut w = stream.try_clone().map_err(io)?;
        write_frame(&mut w, &hello.to_json()).map_err(io)?;
        // The handshake reply is read through a ONE-byte buffer: this
        // reader dies with this function, and a bigger buffer could
        // swallow the head of an eagerly-sent first Lease frame — which
        // must stay in the socket for the caller's own reader.
        let mut reader =
            BufReader::with_capacity(1, stream.try_clone().map_err(io)?);
        let payload = read_frame(&mut reader)
            .map_err(|e| HandshakeError::Io(e.to_string()))?
            .ok_or_else(|| HandshakeError::Io("connection closed".into()))?;
        match CoordMsg::parse(&payload)
            .map_err(|e| HandshakeError::Io(e.to_string()))?
        {
            CoordMsg::Welcome { session, spec_id, lease_timeout_ms, .. } => {
                st.session = Some(session);
                st.spec_id = Some(spec_id);
                st.lease_timeout_ms = lease_timeout_ms;
                // Post-handshake: reads may idle while waiting for a
                // lease, so the deadline is generous; a timeout simply
                // triggers a clean reconnect.
                stream
                    .set_read_timeout(Some(self.idle_read_timeout))
                    .map_err(io)?;
                st.stream = Some(stream);
                st.generation += 1;
                Ok(())
            }
            CoordMsg::Reject { reason, fatal: true } => {
                Err(HandshakeError::Fatal(reason))
            }
            CoordMsg::Reject { fatal: false, .. } => {
                Err(HandshakeError::StaleSession)
            }
            _ => Err(HandshakeError::Io("expected welcome or reject".into())),
        }
    }

    /// Drops the connection of `generation` (no-op if a newer one has
    /// already replaced it). Callers pass the generation they were
    /// using so a racing reconnect is never torn down.
    pub fn disconnect(&self, generation: u64) {
        let mut st = self.state.lock().expect("remote lock");
        if st.generation == generation {
            if let Some(stream) = st.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// Sends one frame, reconnecting once if the live connection turns
    /// out to be dead.
    ///
    /// # Errors
    ///
    /// Propagates [`Remote::ensure`]'s errors; an I/O failure after a
    /// successful reconnect surfaces as [`RemoteError::Unreachable`].
    pub fn send(&self, payload: &str) -> Result<(), RemoteError> {
        for attempt in 0..2 {
            let (mut stream, generation) = self.ensure()?;
            match write_frame(&mut stream, payload) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.disconnect(generation);
                    if attempt == 1 {
                        return Err(RemoteError::Unreachable(e.to_string()));
                    }
                }
            }
        }
        unreachable!("send loop returns within two attempts");
    }
}

enum HandshakeError {
    Fatal(String),
    StaleSession,
    Io(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::proto::FrameError;

    #[test]
    fn flip_last_always_breaks_the_checksum() {
        let mut bytes = encode_frame("{\"type\": \"shutdown\"}").into_bytes();
        flip_last(&mut bytes);
        let mut reader = BufReader::new(bytes.as_slice());
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameError::BadChecksum)
        ));
    }

    #[test]
    fn unreachable_coordinator_exhausts_the_budget() {
        // Port 1 on localhost refuses immediately; the budget floor is
        // 10 s but refused connections surface fast and the backoff is
        // capped, so this errors rather than hangs.
        let remote = Remote::new("127.0.0.1:1", None);
        {
            let mut st = remote.state.lock().unwrap();
            st.lease_timeout_ms = 1; // shrink the budget via the floor
        }
        // Shrink further for the test: budget = max(2ms, 10s) would be
        // 10s, so instead verify the error type via a one-shot connect.
        let mut st = remote.state.lock().unwrap();
        match remote.connect_once(&mut st) {
            Err(HandshakeError::Io(_)) => {}
            other => panic!(
                "expected an I/O handshake error, got {:?}",
                match other {
                    Ok(()) => "connected".to_string(),
                    Err(HandshakeError::Fatal(r)) => format!("fatal: {r}"),
                    Err(HandshakeError::StaleSession) => "stale".to_string(),
                    Err(HandshakeError::Io(r)) => format!("io: {r}"),
                }
            ),
        }
    }
}
