//! Shard results and the determinism-preserving merge.
//!
//! A [`ShardResult`] is what one worker produced for one unit: run
//! records in *global* matrix coordinates plus the fingerprint set its
//! runs visited. [`merge_report`] reassembles any collection of shards
//! into a [`CampaignReport`] through the exact aggregation routine the
//! single-process runner uses ([`crate::campaign`]'s `assemble_report`)
//! — records are keyed by matrix index (duplicates from crash/retry
//! history are identical by determinism and collapse), fingerprints
//! are a set union (order- and sharding-independent), so the merged
//! report is byte-for-byte the single-process report no matter how the
//! matrix was cut, how many workers ran, how many died, or in what
//! order shards arrived.

use crate::campaign::{
    assemble_fault_report, assemble_report, fault_record_entry_json,
    parse_fault_record_entry, parse_record_entry, record_entry_json, CampaignConfig,
    CampaignReport, FaultCampaignReport, FaultRunRecord, RunRecord,
};
use crate::error::ModelError;
use crate::json::Json;
use std::collections::{BTreeMap, BTreeSet};

/// One worker's completed output for one unit.
#[derive(Clone, PartialEq, Debug)]
pub struct ShardResult {
    /// The unit this shard completed.
    pub unit: u64,
    /// Run records, keyed by *global* matrix index.
    pub records: Vec<(usize, RunRecord)>,
    /// Fault run records, keyed by *global* matrix index (fault-matrix
    /// units only; empty for ordinary campaign units).
    pub fault_records: Vec<(usize, FaultRunRecord)>,
    /// Sorted fingerprint set visited by the shard's runs.
    pub fingerprints: Vec<u64>,
    /// Runs the shard executed at degraded budget (0 for service
    /// workers, which run without a wall limit; kept so shard payloads
    /// subsume everything a single-process report aggregates).
    pub degraded_runs: usize,
    /// The shard's fingerprint cache hit its budget.
    pub cache_truncated: bool,
}

impl ShardResult {
    /// Serialises the shard as JSON. Record entries use the same
    /// encoding as campaign checkpoints ([`record_entry_json`]); the
    /// `fault_records` field is emitted only when non-empty so ordinary
    /// shard payloads (and pre-fault journals) keep their exact bytes.
    pub fn to_json(&self) -> String {
        let faults = if self.fault_records.is_empty() {
            String::new()
        } else {
            format!(
                ", \"fault_records\": [{}]",
                self.fault_records
                    .iter()
                    .map(|(i, r)| format!(
                        "{{\"index\": {i}, \"record\": {}}}",
                        fault_record_entry_json(r)
                    ))
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        };
        format!(
            "{{\"unit\": {}, \"records\": [{}]{faults}, \"fingerprints\": [{}], \
             \"degraded_runs\": {}, \"cache_truncated\": {}}}",
            self.unit,
            self.records
                .iter()
                .map(|(i, r)| record_entry_json(*i, r))
                .collect::<Vec<_>>()
                .join(", "),
            self.fingerprints
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            self.degraded_runs,
            self.cache_truncated,
        )
    }

    /// Parses a shard from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on missing or mistyped fields.
    pub fn parse(doc: &Json) -> Result<ShardResult, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "shard result".into(),
            reason: reason.into(),
        };
        let mut records = Vec::new();
        for entry in doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `records` array"))?
        {
            records.push(parse_record_entry(entry)?);
        }
        let mut fault_records = Vec::new();
        if let Some(entries) = doc.get("fault_records") {
            for entry in
                entries.as_arr().ok_or_else(|| bad("`fault_records` must be an array"))?
            {
                fault_records.push((
                    entry
                        .get("index")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| bad("fault record missing `index`"))?,
                    parse_fault_record_entry(
                        entry
                            .get("record")
                            .ok_or_else(|| bad("fault record missing `record`"))?,
                    )?,
                ));
            }
        }
        let mut fingerprints = Vec::new();
        for fp in doc
            .get("fingerprints")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `fingerprints` array"))?
        {
            fingerprints.push(fp.as_u64().ok_or_else(|| bad("bad fingerprint"))?);
        }
        Ok(ShardResult {
            unit: doc
                .get("unit")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `unit`"))?,
            records,
            fault_records,
            fingerprints,
            degraded_runs: doc
                .get("degraded_runs")
                .and_then(Json::as_usize)
                .unwrap_or(0),
            cache_truncated: doc
                .get("cache_truncated")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// Parses a shard from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on malformed JSON or fields.
    pub fn parse_str(text: &str) -> Result<ShardResult, ModelError> {
        ShardResult::parse(&Json::parse(text)?)
    }
}

/// Merges shard results into the campaign report. `quarantined_runs`
/// is how many matrix runs were lost to quarantined units; when it is
/// non-zero the report carries an explicit truncation notice (a
/// degraded campaign is never silent about it).
pub fn merge_report(
    config: &CampaignConfig,
    shards: &[ShardResult],
    quarantined_runs: usize,
) -> CampaignReport {
    // Records dedup by matrix index: a unit retried after a worker
    // death can surface twice, but every run is a deterministic
    // function of (spec, seed), so the copies are identical and the
    // first wins. BTreeMap restores matrix order regardless of shard
    // arrival order.
    let mut by_index: BTreeMap<usize, RunRecord> = BTreeMap::new();
    let mut fingerprints: BTreeSet<u64> = BTreeSet::new();
    let mut degraded_runs = 0;
    let mut cache_truncated = false;
    for shard in shards {
        for (index, record) in &shard.records {
            by_index.entry(*index).or_insert_with(|| record.clone());
        }
        fingerprints.extend(shard.fingerprints.iter().copied());
        degraded_runs += shard.degraded_runs;
        cache_truncated |= shard.cache_truncated;
    }
    let total = config.schedulers.len() * config.runs;
    let merged: Vec<(usize, RunRecord)> = by_index.into_iter().collect();
    let truncation = if quarantined_runs > 0 {
        Some(format!(
            "{quarantined_runs} of {total} runs lost to quarantined work units"
        ))
    } else if merged.len() < total {
        Some(format!("{} of {total} runs missing from shards", total - merged.len()))
    } else {
        None
    };
    assemble_report(
        config,
        merged,
        fingerprints.len(),
        cache_truncated,
        truncation,
        degraded_runs,
    )
}

/// Merges fault-matrix shards into the fault-campaign report, with the
/// same contract as [`merge_report`]: first-wins dedup by global matrix
/// index (every run is a deterministic function of `(plan, scheduler,
/// seed)`, so duplicates from crash/retry history are identical), then
/// the single shared aggregation routine. Runs lost to quarantined
/// units surface as `missing_runs` and veto certification.
pub fn merge_fault_report(
    base: &str,
    plans: usize,
    runs: usize,
    shards: &[ShardResult],
) -> FaultCampaignReport {
    let mut by_index: BTreeMap<usize, FaultRunRecord> = BTreeMap::new();
    for shard in shards {
        for (index, record) in &shard.fault_records {
            by_index.entry(*index).or_insert_with(|| record.clone());
        }
    }
    assemble_fault_report(base, plans, plans * runs, by_index.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SchedulerSpec;

    fn record(scheduler: &str, seed: u64, steps: usize) -> RunRecord {
        RunRecord {
            scheduler: scheduler.into(),
            seed,
            steps,
            terminated: true,
            violation: None,
            error: None,
            attempts: 1,
            pruned: 0,
            prefilter_hits: 0,
            static_indep_pairs: 0,
        }
    }

    fn config() -> CampaignConfig {
        CampaignConfig {
            schedulers: vec![SchedulerSpec::RoundRobin, SchedulerSpec::Random],
            seed_start: 0,
            runs: 2,
            budget: 100,
            threads: 1,
        }
    }

    fn shards() -> Vec<ShardResult> {
        vec![
            ShardResult {
                unit: 0,
                records: vec![(0, record("rr", 0, 7)), (1, record("rr", 1, 9))],
                fault_records: Vec::new(),
                fingerprints: vec![10, 20],
                degraded_runs: 0,
                cache_truncated: false,
            },
            ShardResult {
                unit: 1,
                records: vec![
                    (2, record("random", 0, 5)),
                    (3, record("random", 1, 6)),
                ],
                fault_records: Vec::new(),
                fingerprints: vec![20, 30],
                degraded_runs: 0,
                cache_truncated: false,
            },
        ]
    }

    fn fault_record(plan: &str, seed: u64, steps: usize) -> FaultRunRecord {
        FaultRunRecord {
            plan: plan.into(),
            scheduler: "rr".into(),
            seed,
            steps,
            crashed: 1,
            survivors_terminated: true,
            violation: None,
            error: None,
            attempts: 1,
        }
    }

    fn fault_shards() -> Vec<ShardResult> {
        vec![
            ShardResult {
                unit: 0,
                records: Vec::new(),
                fault_records: vec![
                    (0, fault_record("crash@0:1", 0, 4)),
                    (1, fault_record("crash@0:1", 1, 5)),
                ],
                fingerprints: Vec::new(),
                degraded_runs: 0,
                cache_truncated: false,
            },
            ShardResult {
                unit: 1,
                records: Vec::new(),
                fault_records: vec![
                    (2, fault_record("crash@1:1", 0, 6)),
                    (3, fault_record("crash@1:1", 1, 7)),
                ],
                fingerprints: Vec::new(),
                degraded_runs: 0,
                cache_truncated: false,
            },
        ]
    }

    #[test]
    fn shard_round_trips_through_json() {
        for shard in shards().into_iter().chain(fault_shards()) {
            assert_eq!(ShardResult::parse_str(&shard.to_json()).unwrap(), shard);
        }
    }

    #[test]
    fn faultless_shard_json_has_no_fault_records_field() {
        assert!(
            !shards()[0].to_json().contains("fault_records"),
            "pre-fault journal byte-compatibility requires omitting the field"
        );
    }

    #[test]
    fn fault_merge_is_order_and_duplicate_independent() {
        let mut forward = fault_shards();
        let baseline = merge_fault_report("rr", 2, 2, &forward).to_json();
        forward.reverse();
        assert_eq!(merge_fault_report("rr", 2, 2, &forward).to_json(), baseline);
        let mut with_dup = fault_shards();
        with_dup.push(fault_shards()[0].clone());
        assert_eq!(merge_fault_report("rr", 2, 2, &with_dup).to_json(), baseline);
        let merged = merge_fault_report("rr", 2, 2, &fault_shards());
        assert_eq!(merged.total_runs, 4);
        assert_eq!(merged.certified_runs, 4);
        assert_eq!(merged.total_steps, 4 + 5 + 6 + 7);
        assert!(merged.is_certified());
    }

    #[test]
    fn missing_fault_runs_veto_certification() {
        let partial = vec![fault_shards().remove(0)];
        let merged = merge_fault_report("rr", 2, 2, &partial);
        assert_eq!(merged.missing_runs, 2);
        assert!(!merged.is_certified());
        assert!(merged.to_json().contains("\"missing_runs\": 2"));
    }

    #[test]
    fn merge_is_order_and_duplicate_independent() {
        let config = config();
        let mut forward = shards();
        let baseline = merge_report(&config, &forward, 0).to_json();
        forward.reverse();
        assert_eq!(merge_report(&config, &forward, 0).to_json(), baseline);
        // A crash/retry history surfaces the same unit twice; the
        // duplicate must collapse without perturbing any aggregate.
        let mut with_dup = shards();
        with_dup.push(shards()[0].clone());
        assert_eq!(merge_report(&config, &with_dup, 0).to_json(), baseline);
    }

    #[test]
    fn merge_unions_fingerprints() {
        let report = merge_report(&config(), &shards(), 0);
        assert_eq!(report.distinct_configs, 3);
        assert_eq!(report.total_runs, 4);
        assert_eq!(report.total_steps, 7 + 9 + 5 + 6);
        assert!(report.truncation.is_none());
    }

    #[test]
    fn quarantined_runs_are_loud() {
        let partial = vec![shards().remove(0)];
        let report = merge_report(&config(), &partial, 2);
        assert_eq!(report.skipped_runs, 2);
        let notice = report.truncation.as_deref().unwrap();
        assert!(notice.contains("quarantined"), "notice: {notice}");
        assert!(!report.is_clean());
    }

    #[test]
    fn missing_shards_are_loud_even_without_quarantine() {
        let partial = vec![shards().remove(1)];
        let report = merge_report(&config(), &partial, 0);
        let notice = report.truncation.as_deref().unwrap();
        assert!(notice.contains("missing"), "notice: {notice}");
    }
}
